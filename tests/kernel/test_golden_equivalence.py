"""Bit-identity gate for the optimized simulation kernel.

``tools/golden_result.py`` replays the committed fixture grid (all four
catalog devices across read/write patterns) and flattens every
``ExperimentResult`` to a canonical form where floats are compared by
``float.hex()``.  Any kernel "optimization" that changes a single bit of any
result -- a reordered float sum, a skipped event, a shifted RNG draw --
fails here, not in a downstream study.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import golden_result  # noqa: E402


class TestGoldenEquivalence:
    def test_all_fixtures_bit_identical(self):
        """Every committed golden fixture must replay bit-identically."""
        assert golden_result.main([]) == 0

    def test_fixture_set_is_nonempty(self):
        """An empty fixture directory must never silently pass the gate."""
        fixtures = sorted(golden_result.GOLDEN_DIR.glob("*.json"))
        assert len(fixtures) >= 13

    def test_covers_every_catalog_device(self):
        """The grid must exercise each catalog device class at least once."""
        names = {p.stem.split("_")[0] for p in golden_result.GOLDEN_DIR.glob("*.json")}
        assert {"ssd1", "ssd2", "ssd3", "hdd"} <= names

    def test_covers_policy_runtime_and_fleet(self):
        """The composite paths -- online policy decisions and the fleet
        epoch loop -- must be pinned alongside the single-device grid."""
        stems = {p.stem for p in golden_result.GOLDEN_DIR.glob("*.json")}
        assert "ssd2_policy_feedback" in stems
        assert "ssd2_policy_ladder" in stems
        assert "fleet_tiny" in stems

    def test_every_named_case_has_a_fixture(self):
        """golden_names() and the committed fixture set must agree, so a
        new case cannot be added to the tool without committing its
        fixture (and vice versa)."""
        stems = {p.stem for p in golden_result.GOLDEN_DIR.glob("*.json")}
        assert stems == set(golden_result.golden_names())
