"""Tests for wear accounting."""

import pytest

from repro.ftl.wear import WearTracker


class TestWearTracker:
    def test_erase_counts(self):
        wear = WearTracker(4)
        wear.record_erase(1)
        wear.record_erase(1)
        wear.record_erase(2)
        assert wear.erase_count(1) == 2
        assert wear.erase_count(0) == 0
        stats = wear.stats()
        assert stats.total_erases == 3
        assert stats.max_erases == 2

    def test_write_amplification(self):
        wear = WearTracker(4)
        wear.record_host_write(1000)
        wear.record_nand_write(1500)
        assert wear.write_amplification == pytest.approx(1.5)

    def test_write_amplification_zero_before_writes(self):
        assert WearTracker(4).write_amplification == 0.0

    def test_skew_even_wear(self):
        wear = WearTracker(4)
        for block in range(4):
            wear.record_erase(block)
        assert wear.stats().skew == pytest.approx(1.0)

    def test_skew_uneven_wear(self):
        wear = WearTracker(4)
        for _ in range(4):
            wear.record_erase(0)
        assert wear.stats().skew == pytest.approx(4.0)

    def test_unworn_skew_is_zero(self):
        assert WearTracker(4).stats().skew == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WearTracker(0)
