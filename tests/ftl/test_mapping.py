"""Tests for the logical-to-physical page map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.mapping import PageMap


class TestPageMap:
    def test_unmapped_lookup_is_none(self):
        page_map = PageMap(16)
        assert page_map.lookup(3) is None

    def test_bind_and_lookup(self):
        page_map = PageMap(16)
        assert page_map.bind(3, 100) is None
        assert page_map.lookup(3) == 100
        assert page_map.lpn_of(100) == 3

    def test_rebind_returns_stale_ppn(self):
        page_map = PageMap(16)
        page_map.bind(3, 100)
        stale = page_map.bind(3, 200)
        assert stale == 100
        assert page_map.lookup(3) == 200
        assert page_map.lpn_of(100) is None

    def test_double_mapping_physical_page_rejected(self):
        page_map = PageMap(16)
        page_map.bind(1, 100)
        with pytest.raises(ValueError):
            page_map.bind(2, 100)

    def test_unbind_trim(self):
        page_map = PageMap(16)
        page_map.bind(5, 50)
        assert page_map.unbind(5) == 50
        assert page_map.lookup(5) is None
        assert page_map.lpn_of(50) is None

    def test_unbind_unmapped_is_none(self):
        page_map = PageMap(16)
        assert page_map.unbind(7) is None

    def test_out_of_range_lpn_rejected(self):
        page_map = PageMap(16)
        with pytest.raises(ValueError):
            page_map.lookup(16)
        with pytest.raises(ValueError):
            page_map.bind(-1, 0)

    def test_len_counts_mapped(self):
        page_map = PageMap(16)
        page_map.bind(0, 10)
        page_map.bind(1, 11)
        page_map.bind(0, 12)  # rebind, not a new entry
        assert len(page_map) == 2

    def test_mapped_lpns_iterates(self):
        page_map = PageMap(16)
        page_map.bind(2, 20)
        page_map.bind(9, 21)
        assert sorted(page_map.mapped_lpns()) == [2, 9]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=0, max_value=10_000),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_forward_reverse_consistency(self, operations):
        """Property: forward and reverse maps stay exact inverses."""
        page_map = PageMap(32)
        used_ppns = set()
        for lpn, ppn in operations:
            if ppn in used_ppns and page_map.lpn_of(ppn) != lpn:
                continue  # would double-map; skip
            if page_map.lpn_of(ppn) == lpn:
                continue
            stale = page_map.bind(lpn, ppn)
            used_ppns.add(ppn)
            if stale is not None:
                used_ppns.discard(stale)
        for lpn in page_map.mapped_lpns():
            ppn = page_map.lookup(lpn)
            assert page_map.lpn_of(ppn) == lpn
