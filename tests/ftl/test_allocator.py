"""Tests for log-structured write allocation."""

import pytest

from repro.ftl.allocator import BlockState, WriteAllocator
from repro.nand.geometry import NandGeometry

GEOMETRY = NandGeometry(
    channels=2,
    dies_per_channel=1,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=4,
    page_size=4096,
)


class TestAllocation:
    def test_initial_pool_all_free(self):
        allocator = WriteAllocator(GEOMETRY)
        assert allocator.free_blocks == GEOMETRY.total_blocks

    def test_allocations_rotate_across_dies(self):
        allocator = WriteAllocator(GEOMETRY)
        dies = [allocator.allocate()[1].die_index(GEOMETRY) for _ in range(4)]
        assert dies == [0, 1, 0, 1]

    def test_pinned_die_allocation(self):
        allocator = WriteAllocator(GEOMETRY)
        for _ in range(3):
            __, ppa = allocator.allocate(die_index=1)
            assert ppa.die_index(GEOMETRY) == 1

    def test_block_fills_then_moves_on(self):
        allocator = WriteAllocator(GEOMETRY)
        ppns = [allocator.allocate(die_index=0)[0] for _ in range(5)]
        first_block = allocator.block_of_ppn(ppns[0])
        assert first_block.state is BlockState.FULL
        assert allocator.block_of_ppn(ppns[4]).block_id != first_block.block_id

    def test_exhaustion_raises(self):
        allocator = WriteAllocator(GEOMETRY, gc_reserve_blocks=0)
        for _ in range(GEOMETRY.total_pages):
            allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_allocated_pages_unique(self):
        allocator = WriteAllocator(GEOMETRY, gc_reserve_blocks=0)
        ppns = {allocator.allocate()[0] for _ in range(GEOMETRY.total_pages)}
        assert len(ppns) == GEOMETRY.total_pages

    def test_host_allocation_stops_at_gc_reserve(self):
        allocator = WriteAllocator(GEOMETRY, gc_reserve_blocks=2)
        with pytest.raises(RuntimeError):
            for _ in range(GEOMETRY.total_pages):
                allocator.allocate()
        assert allocator.free_blocks == 2

    def test_gc_allocation_may_use_reserve(self):
        allocator = WriteAllocator(GEOMETRY, gc_reserve_blocks=2)
        try:
            for _ in range(GEOMETRY.total_pages):
                allocator.allocate()
        except RuntimeError:
            pass
        # The reserve is still available to relocations.
        ppn, __ = allocator.allocate(for_gc=True)
        assert allocator.block_of_ppn(ppn).valid_count == 1

    def test_invalid_reserve_rejected(self):
        with pytest.raises(ValueError):
            WriteAllocator(GEOMETRY, gc_reserve_blocks=-1)
        with pytest.raises(ValueError):
            WriteAllocator(GEOMETRY, gc_reserve_blocks=GEOMETRY.total_blocks)


class TestValidityAndErase:
    def test_new_page_valid(self):
        allocator = WriteAllocator(GEOMETRY)
        ppn, __ = allocator.allocate()
        assert allocator.block_of_ppn(ppn).valid_count == 1

    def test_mark_invalid(self):
        allocator = WriteAllocator(GEOMETRY)
        ppn, __ = allocator.allocate()
        allocator.mark_invalid(ppn)
        assert allocator.block_of_ppn(ppn).valid_count == 0

    def test_erase_returns_block_to_pool(self):
        allocator = WriteAllocator(GEOMETRY)
        ppns = [allocator.allocate(die_index=0)[0] for _ in range(4)]
        for ppn in ppns:
            allocator.mark_invalid(ppn)
        block = allocator.block_of_ppn(ppns[0])
        before = allocator.free_blocks
        allocator.erase(block.block_id)
        assert allocator.free_blocks == before + 1
        assert block.state is BlockState.FREE

    def test_erase_open_block_rejected(self):
        allocator = WriteAllocator(GEOMETRY)
        ppn, __ = allocator.allocate()
        block = allocator.block_of_ppn(ppn)
        with pytest.raises(ValueError):
            allocator.erase(block.block_id)

    def test_erase_with_valid_pages_rejected(self):
        allocator = WriteAllocator(GEOMETRY)
        ppns = [allocator.allocate(die_index=0)[0] for _ in range(4)]
        block = allocator.block_of_ppn(ppns[0])
        with pytest.raises(ValueError):
            allocator.erase(block.block_id)

    def test_victims_sorted_by_valid_count(self):
        allocator = WriteAllocator(GEOMETRY)
        ppns = [allocator.allocate(die_index=0)[0] for _ in range(8)]
        # First block: invalidate 3 of 4; second block: invalidate 1 of 4.
        for ppn in ppns[:3]:
            allocator.mark_invalid(ppn)
        allocator.mark_invalid(ppns[4])
        victims = allocator.victim_candidates()
        assert victims[0].valid_count <= victims[-1].valid_count
        assert victims[0].valid_count == 1

    def test_erased_block_is_reusable(self):
        allocator = WriteAllocator(GEOMETRY)
        ppns = [allocator.allocate(die_index=0)[0] for _ in range(4)]
        block_id = allocator.block_of_ppn(ppns[0]).block_id
        for ppn in ppns:
            allocator.mark_invalid(ppn)
        allocator.erase(block_id)
        # Drain the die; eventually the erased block is allocated again.
        seen_blocks = set()
        while allocator.free_blocks_on_die(0) > 0 or True:
            try:
                ppn, __ = allocator.allocate(die_index=0)
            except RuntimeError:
                break
            seen_blocks.add(allocator.block_of_ppn(ppn).block_id)
        assert block_id in seen_blocks
