"""Tests for garbage collection against a real NAND array."""

import pytest

from repro.ftl.allocator import WriteAllocator
from repro.ftl.gc import GarbageCollector, GcConfig
from repro.ftl.mapping import PageMap
from repro.ftl.wear import WearTracker
from repro.nand.die import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.ops import NandPower, NandTimings, OpKind
from repro.power.rail import PowerRail
from tests.conftest import drive

GEOMETRY = NandGeometry(
    channels=1,
    dies_per_channel=2,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=4,
    page_size=4096,
)


def make_setup(engine, low=2, high=3):
    array = NandArray(
        engine,
        PowerRail(engine),
        GEOMETRY,
        NandTimings(t_read=10e-6, t_program=50e-6, t_erase=200e-6),
        NandPower(),
        channel_bandwidth=1e9,
        channel_transfer_power_w=0.0,
    )
    allocator = WriteAllocator(GEOMETRY)
    page_map = PageMap(GEOMETRY.total_pages)
    wear = WearTracker(GEOMETRY.total_blocks)
    gc = GarbageCollector(
        array,
        allocator,
        page_map,
        config=GcConfig(low_watermark=low, high_watermark=high),
        wear=wear,
    )
    return array, allocator, page_map, wear, gc


def fill_with_overwrites(allocator, page_map, n_writes, lpn_space=8):
    """Simulate host writes: bind LPNs round-robin, invalidating overwrites."""
    for i in range(n_writes):
        ppn, __ = allocator.allocate()
        stale = page_map.bind(i % lpn_space, ppn)
        if stale is not None:
            allocator.mark_invalid(stale)


class TestGcConfig:
    def test_watermarks_validated(self):
        with pytest.raises(ValueError):
            GcConfig(low_watermark=0)
        with pytest.raises(ValueError):
            GcConfig(low_watermark=4, high_watermark=4)


class TestGarbageCollection:
    def test_no_pressure_is_noop(self, engine):
        __, allocator, __, __, gc = make_setup(engine)
        assert not gc.pressure
        drive(engine, engine.process(gc.maybe_collect()))
        assert gc.blocks_erased == 0

    def test_collects_under_pressure(self, engine):
        __, allocator, page_map, __, gc = make_setup(engine)
        # Overwrite heavily within a small LPN space: most pages stale.
        fill_with_overwrites(allocator, page_map, n_writes=24, lpn_space=4)
        assert gc.pressure
        drive(engine, engine.process(gc.maybe_collect()))
        assert gc.blocks_erased > 0
        assert allocator.free_blocks >= gc.config.high_watermark

    def test_relocation_preserves_mapping(self, engine):
        __, allocator, page_map, __, gc = make_setup(engine)
        fill_with_overwrites(allocator, page_map, n_writes=24, lpn_space=6)
        before = {lpn: page_map.lookup(lpn) for lpn in page_map.mapped_lpns()}
        drive(engine, engine.process(gc.maybe_collect()))
        # Every LPN still mapped; relocated pages moved but stayed bound.
        for lpn in before:
            assert page_map.lookup(lpn) is not None

    def test_relocated_pages_remain_unique(self, engine):
        __, allocator, page_map, __, gc = make_setup(engine)
        fill_with_overwrites(allocator, page_map, n_writes=24, lpn_space=6)
        drive(engine, engine.process(gc.maybe_collect()))
        ppns = [page_map.lookup(lpn) for lpn in page_map.mapped_lpns()]
        assert len(ppns) == len(set(ppns))

    def test_wear_recorded(self, engine):
        __, allocator, page_map, wear, gc = make_setup(engine)
        fill_with_overwrites(allocator, page_map, n_writes=24, lpn_space=4)
        drive(engine, engine.process(gc.maybe_collect()))
        assert wear.stats().total_erases == gc.blocks_erased

    def test_gc_costs_nand_operations(self, engine):
        array, allocator, page_map, __, gc = make_setup(engine)
        fill_with_overwrites(allocator, page_map, n_writes=24, lpn_space=6)
        counts_before = array.op_counts()
        drive(engine, engine.process(gc.maybe_collect()))
        counts_after = array.op_counts()
        assert counts_after[OpKind.ERASE] > counts_before[OpKind.ERASE]
        # Valid pages were relocated: reads and programs happened too.
        assert counts_after[OpKind.READ] >= gc.pages_relocated
        assert counts_after[OpKind.PROGRAM] >= gc.pages_relocated

    def test_gc_stops_when_nothing_reclaimable(self, engine):
        """All-valid blocks: GC must not loop forever."""
        __, allocator, page_map, __, gc = make_setup(engine)
        # Unique LPNs: nothing is ever stale.
        for i in range(24):
            ppn, __ = allocator.allocate()
            page_map.bind(i, ppn)
        drive(engine, engine.process(gc.maybe_collect()))
        assert gc.blocks_erased == 0
