"""Tests for the APST feature command (FID 0x0C)."""

import pytest

from repro._units import KiB
from repro.devices.base import IOKind, IORequest
from repro.devices.catalog import build_device
from repro.nvme.features import FEATURE_APST, set_apst
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


class TestSetApst:
    def test_feature_id_is_spec_value(self):
        assert FEATURE_APST == 0x0C

    def test_arms_idle_transition(self):
        engine = Engine()
        device = build_device(engine, "pm1743", rng=RngStreams(0))
        device = set_apst(device, idle_timeout_s=0.02)
        engine.run(until=0.2)
        assert not device.current_power_state.operational

    def test_disabled_device_stays_operational(self):
        engine = Engine()
        device = build_device(engine, "pm1743", rng=RngStreams(0))
        device = set_apst(device, idle_timeout_s=None)
        engine.run(until=0.2)
        assert device.current_power_state.operational

    def test_armed_device_wakes_for_io(self):
        engine = Engine()
        device = build_device(engine, "pm1743", rng=RngStreams(0))
        device = set_apst(device, idle_timeout_s=0.02)
        engine.run(until=0.2)
        event = device.submit(IORequest(IOKind.READ, 0, 16 * KiB))
        while not event.processed:
            engine.step()
        assert event.value.latency > 1e-3  # paid the exit latency
        assert device.current_power_state.operational

    def test_device_without_non_op_states_rejected(self):
        engine = Engine()
        device = build_device(engine, "ssd2", rng=RngStreams(0))
        with pytest.raises(ValueError):
            set_apst(device, idle_timeout_s=0.02)

    def test_invalid_timeout_rejected(self):
        engine = Engine()
        device = build_device(engine, "pm1743", rng=RngStreams(0))
        with pytest.raises(ValueError):
            set_apst(device, idle_timeout_s=0.0)
