"""Tests for the NVMe host interface (identify / features / cli)."""

import pytest

from repro.devices.catalog import build_device
from repro.nvme.cli import NvmeCli
from repro.nvme.features import get_power_state, set_power_state
from repro.nvme.identify import identify_controller
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import drive


@pytest.fixture
def ssd2(engine):
    return build_device(engine, "ssd2", rng=RngStreams(0))


class TestIdentify:
    def test_psd_table_matches_config(self, ssd2):
        identity = identify_controller(ssd2)
        assert identity.model_number == "ssd2"
        assert identity.npss == len(ssd2.config.power_states) - 1
        assert identity.descriptor(1).max_power_w == pytest.approx(12.0)
        assert identity.descriptor(2).max_power_w == pytest.approx(10.0)

    def test_operational_states_filter(self, engine):
        device = build_device(engine, "pm1743", rng=RngStreams(0))
        identity = identify_controller(device)
        operational = identity.operational_states()
        assert all(not psd.non_operational for psd in operational)
        assert len(operational) == 3

    def test_unknown_ps_rejected(self, ssd2):
        identity = identify_controller(ssd2)
        with pytest.raises(ValueError):
            identity.descriptor(9)

    def test_sata_device_rejected(self, engine):
        device = build_device(engine, "ssd3", rng=RngStreams(0))
        with pytest.raises(ValueError):
            identify_controller(device)

    def test_render_includes_all_states(self, ssd2):
        text = identify_controller(ssd2).render()
        assert "mn : ssd2" in text
        for ps in range(3):
            assert f"ps    {ps}" in text


class TestFeatures:
    def test_get_power_state_default(self, ssd2):
        assert get_power_state(ssd2) == 0

    def test_set_power_state(self, engine, ssd2):
        drive(engine, engine.process(set_power_state(ssd2, 2)))
        assert get_power_state(ssd2) == 2
        assert ssd2.governor.cap_w == pytest.approx(10.0)

    def test_invalid_state_rejected(self, engine, ssd2):
        with pytest.raises(ValueError):
            drive(engine, engine.process(set_power_state(ssd2, 7)))

    def test_sata_device_rejected(self, engine):
        device = build_device(engine, "ssd3", rng=RngStreams(0))
        with pytest.raises(ValueError):
            get_power_state(device)


class TestCli:
    def test_register_assigns_paths(self, engine, ssd2):
        cli = NvmeCli(engine)
        assert cli.register(ssd2) == "/dev/nvme0n1"
        other = build_device(engine, "ssd1", rng=RngStreams(1))
        assert cli.register(other) == "/dev/nvme1n1"

    def test_id_ctrl_command(self, engine, ssd2):
        cli = NvmeCli(engine)
        path = cli.register(ssd2)
        output = cli.run(f"id-ctrl {path}")
        assert output.startswith("mn : ssd2")

    def test_get_and_set_feature_roundtrip(self, engine, ssd2):
        cli = NvmeCli(engine)
        path = cli.register(ssd2)
        assert "Current value:0" in cli.run(f"get-feature {path} -f 2")
        cli.run(f"set-feature {path} -f 2 -v 1")
        assert "Current value:1" in cli.run(f"get-feature {path} -f 2")

    def test_unknown_device_rejected(self, engine):
        cli = NvmeCli(engine)
        with pytest.raises(ValueError):
            cli.run("id-ctrl /dev/nvme9n1")

    def test_unknown_command_rejected(self, engine, ssd2):
        cli = NvmeCli(engine)
        path = cli.register(ssd2)
        with pytest.raises(ValueError):
            cli.run(f"format {path}")

    def test_unsupported_feature_rejected(self, engine, ssd2):
        cli = NvmeCli(engine)
        path = cli.register(ssd2)
        with pytest.raises(ValueError):
            cli.run(f"get-feature {path} -f 5")
