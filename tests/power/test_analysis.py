"""Tests for power trace analysis (summaries, violins)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.analysis import (
    summarize_samples,
    summarize_trace,
    violin_profile,
)
from repro.power.logger import PowerTrace
from repro.sim.trace import StepTrace


def _trace(watts):
    watts = np.asarray(watts, float)
    return PowerTrace(
        np.arange(len(watts)) * 1e-3, watts, rail_voltage=12.0, sample_rate_hz=1000.0
    )


class TestSummarizeSamples:
    def test_basic_statistics(self):
        summary = summarize_samples(_trace([1, 2, 3, 4, 5]))
        assert summary.mean_w == pytest.approx(3.0)
        assert summary.median_w == pytest.approx(3.0)
        assert summary.min_w == 1.0
        assert summary.max_w == 5.0
        assert summary.n_samples == 5

    def test_quantiles_monotone(self):
        rng = np.random.default_rng(0)
        summary = summarize_samples(_trace(rng.uniform(3, 9, size=1000)))
        qs = sorted(summary.quantiles)
        values = [summary.quantiles[q] for q in qs]
        assert values == sorted(values)

    def test_peak_to_mean(self):
        summary = summarize_samples(_trace([1.0, 1.0, 4.0]))
        assert summary.peak_to_mean == pytest.approx(2.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples(_trace([]))

    def test_single_sample_has_zero_std(self):
        summary = summarize_samples(_trace([5.0]))
        assert summary.std_w == 0.0


class TestSummarizeTrace:
    def test_time_weighted_median(self):
        trace = StepTrace(initial=1.0)
        trace.set(9.0, 100.0)  # 100 W only in the last 10%
        summary = summarize_trace(trace, 0.0, 10.0)
        assert summary.median_w == pytest.approx(1.0)
        assert summary.mean_w == pytest.approx(0.9 * 1.0 + 0.1 * 100.0)

    def test_energy_matches_integral(self):
        trace = StepTrace(initial=2.0)
        trace.set(5.0, 4.0)
        summary = summarize_trace(trace, 0.0, 10.0)
        assert summary.energy_j == pytest.approx(2.0 * 5 + 4.0 * 5)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=10)
    )
    @settings(max_examples=50, deadline=None)
    def test_mean_within_bounds(self, values):
        trace = StepTrace(initial=values[0])
        for i, v in enumerate(values[1:], start=1):
            trace.set(float(i), v)
        summary = summarize_trace(trace, 0.0, float(len(values)))
        assert summary.min_w - 1e-9 <= summary.mean_w <= summary.max_w + 1e-9


class TestViolinProfile:
    def test_density_peaks_at_mode(self):
        watts = np.concatenate([np.full(900, 5.0), np.full(100, 9.0)])
        centers, density = violin_profile(_trace(watts), n_bins=10)
        assert density.max() == pytest.approx(1.0)
        mode_center = centers[np.argmax(density)]
        assert abs(mode_center - 5.0) < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            violin_profile(_trace([]))
