"""Tests for the data logger and the end-to-end power meter."""

import numpy as np
import pytest

from repro.power.logger import DataLogger, PowerTrace
from repro.power.meter import MeterConfig, PowerMeter
from repro.power.rail import PowerRail
from repro.sim.engine import Engine


class TestPowerTrace:
    def _trace(self, watts):
        watts = np.asarray(watts, float)
        times = np.arange(len(watts)) * 1e-3
        return PowerTrace(times, watts, rail_voltage=12.0, sample_rate_hz=1000.0)

    def test_statistics(self):
        trace = self._trace([1.0, 2.0, 3.0, 4.0])
        assert trace.mean() == pytest.approx(2.5)
        assert trace.median() == pytest.approx(2.5)
        assert trace.min() == 1.0
        assert trace.max() == 4.0

    def test_energy_is_mean_times_duration(self):
        trace = self._trace([2.0] * 1000)
        assert trace.energy_joules() == pytest.approx(2.0, rel=1e-3)

    def test_window_filters_samples(self):
        trace = self._trace(np.arange(10.0))
        window = trace.window(0.002, 0.005)
        assert list(window.watts) == [2.0, 3.0, 4.0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(np.zeros(3), np.zeros(4), 12.0, 1000.0)


class TestDataLogger:
    def test_reconstruction_inverts_chain(self):
        logger = DataLogger(nominal_shunt_ohm=0.1, nominal_gain=10.0, rail_voltage=12.0)
        # 6 W at 12 V -> 0.5 A -> 50 mV across shunt -> 0.5 V amplified.
        trace = logger.reconstruct(
            np.array([0.0]), np.array([0.5]), sample_rate_hz=1000.0
        )
        assert trace.watts[0] == pytest.approx(6.0)

    def test_negative_noise_clamped_to_zero(self):
        logger = DataLogger(0.1, 10.0, 12.0)
        trace = logger.reconstruct(
            np.array([0.0]), np.array([-0.001]), sample_rate_hz=1000.0
        )
        assert trace.watts[0] == 0.0

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            DataLogger(0.0, 10.0, 12.0)


class TestPowerMeter:
    def _rail_with_load(self, watts=8.0, duration=1.0):
        engine = Engine()
        rail = PowerRail(engine, voltage=12.0)
        rail.set_draw("load", watts)
        engine.timeout(duration)
        engine.run()
        return engine, rail

    def test_ideal_meter_is_exact(self):
        __, rail = self._rail_with_load(8.0)
        meter = PowerMeter(rail, MeterConfig(ideal=True))
        trace = meter.measure(0.0, 1.0)
        assert trace.mean() == pytest.approx(8.0)

    def test_realistic_meter_within_one_percent(self):
        """The paper's headline accuracy claim for the rig."""
        __, rail = self._rail_with_load(8.0)
        for seed in range(10):
            meter = PowerMeter(rail, rng=np.random.default_rng(seed))
            assert meter.relative_error(0.0, 1.0) < 0.01

    def test_accuracy_holds_at_low_power(self):
        """Sub-watt devices (the 860 EVO) still measure within a percent."""
        __, rail = self._rail_with_load(0.35)
        meter = PowerMeter(rail, rng=np.random.default_rng(3))
        assert meter.relative_error(0.0, 1.0) < 0.01

    def test_sample_rate_respected(self):
        __, rail = self._rail_with_load()
        meter = PowerMeter(rail)
        trace = meter.measure(0.0, 0.5)
        assert len(trace) == 500

    def test_tracks_step_changes(self):
        engine = Engine()
        rail = PowerRail(engine, voltage=12.0)
        rail.set_draw("load", 2.0)
        engine.timeout(0.5).add_callback(lambda e: rail.set_draw("load", 10.0))
        engine.timeout(1.0)
        engine.run()
        meter = PowerMeter(rail, MeterConfig(ideal=True))
        trace = meter.measure(0.0, 1.0)
        assert trace.window(0.0, 0.5).mean() == pytest.approx(2.0)
        assert trace.window(0.5, 1.0).mean() == pytest.approx(10.0)

    def test_empty_window_rejected(self):
        __, rail = self._rail_with_load()
        meter = PowerMeter(rail)
        with pytest.raises(ValueError):
            meter.measure(1.0, 1.0)

    def test_part_tolerances_fixed_per_instance(self):
        """Two measurements by the same rig share its bias."""
        __, rail = self._rail_with_load(8.0)
        meter = PowerMeter(rail, rng=np.random.default_rng(5))
        a = meter.measure(0.0, 0.5).mean()
        b = meter.measure(0.5, 1.0).mean()
        # Same as-built parts: the systematic part of the error matches.
        assert a == pytest.approx(b, rel=2e-3)
