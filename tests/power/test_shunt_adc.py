"""Tests for the analog front end: shunt, amplifier, ADC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.adc import ADS1256, AdcConfig, FULL_SCALE_CODE
from repro.power.shunt import DifferentialAmplifier, ShuntResistor


class TestShuntResistor:
    def test_sense_voltage_is_ohms_law(self):
        shunt = ShuntResistor(resistance_ohm=0.1)
        volts = shunt.sense_voltage(np.array([1.0, 2.0]), actual_resistance=0.1)
        assert volts == pytest.approx([0.1, 0.2])

    def test_actual_resistance_within_tolerance(self):
        shunt = ShuntResistor(resistance_ohm=0.1, tolerance=0.01)
        rng = np.random.default_rng(0)
        for _ in range(50):
            actual = shunt.actual_resistance(rng)
            assert 0.099 <= actual <= 0.101

    def test_invalid_resistance(self):
        with pytest.raises(ValueError):
            ShuntResistor(resistance_ohm=0.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            ShuntResistor(tolerance=0.5)


class TestAmplifier:
    def test_gain_applied(self):
        amp = DifferentialAmplifier(gain=10.0, offset_uv=0.0, noise_uv_rms=0.0)
        rng = np.random.default_rng(0)
        out = amp.amplify(np.array([0.1]), actual_gain=10.0, rng=rng)
        assert out[0] == pytest.approx(1.0)

    def test_offset_is_input_referred(self):
        amp = DifferentialAmplifier(gain=10.0, offset_uv=100.0, noise_uv_rms=0.0)
        rng = np.random.default_rng(0)
        out = amp.amplify(np.array([0.0]), actual_gain=10.0, rng=rng)
        assert out[0] == pytest.approx(100e-6 * 10.0)

    def test_noise_has_expected_scale(self):
        amp = DifferentialAmplifier(gain=1.0, offset_uv=0.0, noise_uv_rms=5.0)
        rng = np.random.default_rng(0)
        out = amp.amplify(np.zeros(20000), actual_gain=1.0, rng=rng)
        assert out.std() == pytest.approx(5e-6, rel=0.1)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            DifferentialAmplifier(gain=0.0)


class TestAdc:
    def test_roundtrip_accuracy(self):
        adc = ADS1256(AdcConfig(noise_uv_rms=0.0))
        rng = np.random.default_rng(0)
        volts = np.array([0.0, 0.5, 1.25, -2.0])
        recovered = adc.to_volts(adc.convert(volts, rng))
        assert recovered == pytest.approx(volts, abs=2 * adc.config.lsb_volts)

    def test_saturation_clips(self):
        adc = ADS1256(AdcConfig(noise_uv_rms=0.0))
        rng = np.random.default_rng(0)
        codes = adc.convert(np.array([100.0, -100.0]), rng)
        assert codes[0] == FULL_SCALE_CODE
        assert codes[1] == -FULL_SCALE_CODE

    def test_saturates_at_predicate(self):
        adc = ADS1256(AdcConfig())
        assert adc.saturates_at(10.0)
        assert not adc.saturates_at(1.0)

    def test_sample_times_rate_and_span(self):
        adc = ADS1256(AdcConfig(sample_rate_hz=1000.0))
        times = adc.sample_times(0.0, 0.1)
        assert len(times) == 100
        assert times[1] - times[0] == pytest.approx(1e-3)

    def test_pga_shrinks_full_scale(self):
        wide = AdcConfig(pga_gain=1)
        narrow = AdcConfig(pga_gain=8)
        assert narrow.full_scale_volts == pytest.approx(wide.full_scale_volts / 8)

    def test_invalid_pga(self):
        with pytest.raises(ValueError):
            AdcConfig(pga_gain=3)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            AdcConfig(sample_rate_hz=0.0)

    @given(
        st.lists(
            st.floats(min_value=-4.9, max_value=4.9),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_error_bounded(self, volts):
        """Property: noiseless conversion error never exceeds one LSB."""
        adc = ADS1256(AdcConfig(noise_uv_rms=0.0))
        rng = np.random.default_rng(1)
        arr = np.asarray(volts)
        recovered = adc.to_volts(adc.convert(arr, rng))
        assert np.abs(recovered - arr).max() <= adc.config.lsb_volts
