"""Unit tests for the power rail."""

import pytest

from repro.power.rail import PowerRail


class TestPowerRail:
    def test_total_sums_components(self, engine):
        rail = PowerRail(engine)
        rail.set_draw("a", 2.0)
        rail.set_draw("b", 3.0)
        assert rail.total_watts == pytest.approx(5.0)

    def test_set_draw_is_absolute(self, engine):
        rail = PowerRail(engine)
        rail.set_draw("a", 2.0)
        rail.set_draw("a", 1.0)
        assert rail.total_watts == pytest.approx(1.0)

    def test_add_draw_is_relative(self, engine):
        rail = PowerRail(engine)
        rail.add_draw("a", 2.0)
        rail.add_draw("a", 0.5)
        assert rail.draw_of("a") == pytest.approx(2.5)

    def test_negative_draw_rejected(self, engine):
        rail = PowerRail(engine)
        with pytest.raises(ValueError):
            rail.set_draw("a", -1.0)

    def test_negative_via_add_rejected(self, engine):
        rail = PowerRail(engine)
        rail.add_draw("a", 1.0)
        with pytest.raises(ValueError):
            rail.add_draw("a", -2.0)

    def test_invalid_voltage_rejected(self, engine):
        with pytest.raises(ValueError):
            PowerRail(engine, voltage=0.0)

    def test_current_follows_ohms_law(self, engine):
        rail = PowerRail(engine, voltage=12.0)
        rail.set_draw("a", 6.0)
        assert rail.current_amps == pytest.approx(0.5)

    def test_trace_records_changes_at_sim_time(self, engine):
        rail = PowerRail(engine)
        rail.set_draw("a", 1.0)
        engine.timeout(2.0).add_callback(lambda e: rail.set_draw("a", 3.0))
        engine.run()
        assert rail.trace.value_at(1.0) == pytest.approx(1.0)
        assert rail.trace.value_at(2.5) == pytest.approx(3.0)

    def test_mean_power_window(self, engine):
        rail = PowerRail(engine)
        rail.set_draw("a", 2.0)
        engine.timeout(1.0).add_callback(lambda e: rail.set_draw("a", 4.0))
        engine.timeout(2.0)
        engine.run()
        assert rail.mean_power(0.0, 2.0) == pytest.approx(3.0)

    def test_draw_of_prefix(self, engine):
        rail = PowerRail(engine)
        rail.set_draw("die0", 1.0)
        rail.set_draw("die1", 2.0)
        rail.set_draw("ctrl", 4.0)
        assert rail.draw_of_prefix("die") == pytest.approx(3.0)

    def test_components_snapshot_is_copy(self, engine):
        rail = PowerRail(engine)
        rail.set_draw("a", 1.0)
        snapshot = rail.components()
        snapshot["a"] = 99.0
        assert rail.draw_of("a") == pytest.approx(1.0)

    def test_unknown_component_draws_zero(self, engine):
        rail = PowerRail(engine)
        assert rail.draw_of("ghost") == 0.0
