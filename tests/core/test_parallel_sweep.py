"""Tests for the parallel sweep execution subsystem."""

import pytest

from repro._units import KiB, MiB
from repro.core import parallel
from repro.core.parallel import (
    PointFailure,
    ResultCache,
    SweepExecutionError,
    config_content_hash,
    resolve_workers,
    run_configs,
)
from repro.core.sweep import SweepGrid, run_sweep, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec
from tests.conftest import tiny_ssd_config


def quick_job():
    return JobSpec(
        IoPattern.RANDREAD,
        block_size=16 * KiB,
        iodepth=4,
        runtime_s=0.01,
        size_limit_bytes=4 * MiB,
    )


def small_grid(**overrides):
    defaults = dict(
        device=tiny_ssd_config(),
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(16 * KiB, 64 * KiB),
        iodepths=(1, 8),
        power_states=(0,),
        base_job=quick_job(),
    )
    defaults.update(overrides)
    return SweepGrid(**defaults)


class TestParallelEquivalence:
    def test_parallel_matches_sequential_exactly(self):
        grid = small_grid()
        sequential = run_sweep(grid, n_workers=1)
        parallel_results = run_sweep(grid, n_workers=4)
        assert list(parallel_results) == list(sequential)
        for point, result in sequential.items():
            other = parallel_results[point]
            assert other.mean_power_w == result.mean_power_w
            assert other.throughput_bps == result.throughput_bps
            assert other.true_mean_power_w == result.true_mean_power_w
            assert other.config.seed == result.config.seed

    def test_results_in_grid_order(self):
        grid = small_grid()
        results = run_sweep(grid, n_workers=2)
        assert list(results) == list(grid.points())

    def test_pool_failure_falls_back_in_process(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores on this platform")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        grid = small_grid()
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = run_sweep(grid, n_workers=4)
        assert len(results) == 4
        for result in results.values():
            assert result.mean_power_w > 0

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        # Zero and negatives are rejected with a clear message -- a silent
        # "0 means all cores" once turned an unset shell variable into a
        # machine-wide fan-out.
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(0)
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(-2)


class TestFailureCapture:
    def test_failing_point_does_not_kill_sweep(self):
        # Power state 99 does not exist on the tiny SSD: those points must
        # fail individually while the valid ps0 points still complete.
        grid = small_grid(power_states=(0, 99))
        outcome = sweep_outcome(grid, n_workers=2)
        assert len(outcome.results) == 4
        assert len(outcome.failures) == 4
        assert not outcome.ok
        for point, failure in outcome.failures.items():
            assert point.power_state == 99
            assert failure.error_type == "ValueError"
            assert "power state" in failure.message
            assert failure.config.power_state == 99
            assert "ValueError" in failure.traceback

    def test_run_sweep_raises_with_context(self):
        grid = small_grid(power_states=(99,))
        with pytest.raises(SweepExecutionError) as excinfo:
            run_sweep(grid)
        assert len(excinfo.value.failures) == 4
        assert "power state" in str(excinfo.value)


class TestFailureRendering:
    def _failure(self, index=0, attempts=1):
        grid = small_grid(power_states=(99,))
        config = grid.config_for(list(grid.points())[index])
        return PointFailure(
            config=config,
            error_type="ValueError",
            message=f"boom {index}",
            traceback="",
            attempts=attempts,
        )

    def test_describe_without_retries(self):
        failure = self._failure()
        text = failure.describe()
        assert "ValueError: boom 0" in text
        assert "attempts" not in text

    def test_describe_with_retries(self):
        assert "(after 3 attempts)" in self._failure(attempts=3).describe()

    def test_sweep_error_renders_all_when_few(self):
        error = SweepExecutionError([self._failure(i) for i in range(3)])
        message = str(error)
        assert "3 sweep point(s) failed" in message
        assert "more" not in message
        for i in range(3):
            assert f"boom {i}" in message

    def test_sweep_error_truncates_long_failure_lists(self):
        failures = [self._failure(i % 4) for i in range(12)]
        error = SweepExecutionError(failures)
        message = str(error)
        assert "12 sweep point(s) failed" in message
        assert message.count("ValueError") == parallel.MAX_RENDERED_FAILURES
        assert "...and 7 more" in message
        # The full list is still available programmatically.
        assert len(error.failures) == 12


class TestResultCache:
    def test_second_run_skips_execution(self, tmp_path, monkeypatch):
        grid = small_grid()
        first = run_sweep(grid, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.pkl"))) == 4

        def boom(config):
            raise AssertionError("cached point was re-executed")

        monkeypatch.setattr(parallel, "run_experiment", boom)
        second = run_sweep(grid, cache_dir=tmp_path)
        assert list(second) == list(first)
        for point, result in first.items():
            assert second[point].mean_power_w == result.mean_power_w
            assert second[point].throughput_bps == result.throughput_bps

    def test_overlapping_grid_only_runs_new_points(self, tmp_path):
        run_sweep(small_grid(block_sizes=(16 * KiB,)), cache_dir=tmp_path)
        calls = []
        original = parallel.run_experiment

        def counting(config):
            calls.append(config)
            return original(config)

        import unittest.mock

        with unittest.mock.patch.object(parallel, "run_experiment", counting):
            results = run_sweep(small_grid(), n_workers=1, cache_dir=tmp_path)
        assert len(results) == 4
        # Only the two 64 KiB points were new.
        assert len(calls) == 2
        assert all(c.job.block_size == 64 * KiB for c in calls)

    def test_corrupt_entry_recomputed(self, tmp_path):
        grid = small_grid(block_sizes=(16 * KiB,), iodepths=(1,))
        first = run_sweep(grid, cache_dir=tmp_path)
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        cache = ResultCache(tmp_path)
        second = run_sweep(grid, cache_dir=cache)
        point = next(iter(first))
        assert second[point].mean_power_w == first[point].mean_power_w
        # The unreadable entry was counted as corrupt, recomputed, and
        # written back -- degradation, not failure.
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0
        assert cache.stats.puts == 1

    def test_wrong_type_entry_counts_corrupt(self, tmp_path):
        grid = small_grid(block_sizes=(16 * KiB,), iodepths=(1,))
        config = grid.config_for(next(iter(grid.points())))
        cache = ResultCache(tmp_path)
        import pickle

        # A well-formed pickle of the wrong type must not be served.
        cache.path_for(config).write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(config) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_stats_track_hits_misses_puts(self, tmp_path):
        grid = small_grid()
        cache = ResultCache(tmp_path)
        run_sweep(grid, cache_dir=cache)
        assert cache.stats.snapshot() == {
            "hits": 0,
            "misses": 4,
            "corrupt": 0,
            "puts": 4,
            "hit_rate": 0.0,
        }
        rerun_cache = ResultCache(tmp_path)
        run_sweep(grid, cache_dir=rerun_cache)
        snap = rerun_cache.stats.snapshot()
        assert snap["hits"] == 4
        assert snap["misses"] == 0
        assert snap["puts"] == 0
        assert snap["hit_rate"] == 1.0

    def test_failures_not_cached(self, tmp_path):
        grid = small_grid(power_states=(99,), block_sizes=(16 * KiB,), iodepths=(1,))
        outcome = sweep_outcome(grid, cache_dir=tmp_path)
        assert not outcome.ok
        assert list(tmp_path.glob("*.pkl")) == []

    def test_interrupted_put_leaves_no_litter(self, tmp_path, monkeypatch):
        """A crash mid-write must not leave .tmp files or half an entry."""
        import pickle

        grid = small_grid(block_sizes=(16 * KiB,), iodepths=(1,))
        config = grid.config_for(next(iter(grid.points())))
        result = parallel.run_experiment(config)
        cache = ResultCache(tmp_path)

        def exploding_dump(obj, fh):
            fh.write(b"partial garbage")
            raise KeyboardInterrupt  # simulates Ctrl-C mid-pickle

        monkeypatch.setattr(pickle, "dump", exploding_dump)
        with pytest.raises(KeyboardInterrupt):
            cache.put(config, result)
        monkeypatch.undo()
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get(config) is None  # nothing half-committed
        # The cache remains fully usable after the failed write.
        cache.put(config, result)
        assert cache.get(config).mean_power_w == result.mean_power_w

    def test_put_overwrite_failure_keeps_old_entry(self, tmp_path, monkeypatch):
        import pickle

        grid = small_grid(block_sizes=(16 * KiB,), iodepths=(1,))
        config = grid.config_for(next(iter(grid.points())))
        result = parallel.run_experiment(config)
        cache = ResultCache(tmp_path)
        cache.put(config, result)

        def boom(obj, fh):
            raise OSError("disk full")

        monkeypatch.setattr(pickle, "dump", boom)
        with pytest.raises(OSError):
            cache.put(config, result)
        monkeypatch.undo()
        # The original committed entry survived the failed overwrite.
        assert cache.get(config).mean_power_w == result.mean_power_w
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_entry_recomputed_under_retry_policy(self, tmp_path):
        """Cache corruption plus a retry policy: the point recomputes on
        the resilient pool and the rewritten entry is valid."""
        from repro.core.parallel import RetryPolicy

        grid = small_grid(block_sizes=(16 * KiB,), iodepths=(1,))
        first = run_sweep(grid, cache_dir=tmp_path)
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(b"definitely not a pickle")
        cache = ResultCache(tmp_path)
        second = run_sweep(
            grid, n_workers=2, cache_dir=cache, timeout_s=120.0, retries=2
        )
        point = next(iter(first))
        assert second[point].mean_power_w == first[point].mean_power_w
        assert cache.stats.corrupt == 1
        assert cache.stats.puts == 1
        # The rewritten entry is readable again.
        rerun = ResultCache(tmp_path)
        third = run_sweep(grid, cache_dir=rerun)
        assert rerun.stats.hits == 1
        assert third[point].mean_power_w == first[point].mean_power_w

    def test_cache_roundtrip_api(self, tmp_path):
        grid = small_grid()
        config = grid.config_for(next(iter(grid.points())))
        cache = ResultCache(tmp_path)
        assert cache.get(config) is None
        result = parallel.run_experiment(config)
        cache.put(config, result)
        loaded = cache.get(config)
        assert loaded is not None
        assert loaded.mean_power_w == result.mean_power_w


class TestContentHash:
    def test_stable_for_equal_configs(self):
        grid = small_grid()
        point = next(iter(grid.points()))
        assert config_content_hash(grid.config_for(point)) == config_content_hash(
            grid.config_for(point)
        )

    def test_sensitive_to_seed_and_job(self):
        grid_a = small_grid()
        grid_b = small_grid(seed=1)
        point = next(iter(grid_a.points()))
        hash_a = config_content_hash(grid_a.config_for(point))
        assert hash_a != config_content_hash(grid_b.config_for(point))
        other = [p for p in grid_a.points() if p != point][0]
        assert hash_a != config_content_hash(grid_a.config_for(other))

    def test_preset_string_vs_config_differ(self):
        job = quick_job()
        from repro.core.experiment import ExperimentConfig

        by_label = ExperimentConfig(device="ssd3", job=job)
        by_config = ExperimentConfig(device=tiny_ssd_config(), job=job)
        assert config_content_hash(by_label) != config_content_hash(by_config)


class TestRunConfigs:
    def test_order_preserved_and_index_aligned(self):
        grid = small_grid()
        configs = [grid.config_for(p) for p in grid.points()]
        outcomes = run_configs(configs, n_workers=2)
        assert len(outcomes) == len(configs)
        for config, outcome in zip(configs, outcomes):
            assert outcome.config == config

    def test_mixed_failures_index_aligned(self):
        grid = small_grid(power_states=(0, 99), iodepths=(1,))
        configs = [grid.config_for(p) for p in grid.points()]
        outcomes = run_configs(configs, n_workers=2)
        for config, outcome in zip(configs, outcomes):
            if config.power_state == 99:
                assert isinstance(outcome, PointFailure)
            else:
                assert outcome.mean_power_w > 0


class TestPooledProfiler:
    """The profiler works *across* the process pool: per-worker point
    profiles ship back over the pipe and merge into the parent profiler
    in submission order (it used to silently force in-process)."""

    def test_pooled_profiles_merge_in_submission_order(self):
        import warnings

        from repro.core.options import ExecutionOptions
        from repro.obs.profile import RunProfiler

        grid = small_grid()
        configs = [grid.config_for(p) for p in grid.points()]
        profiler = RunProfiler()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any fallback warning fails
            outcomes = run_configs(
                configs,
                ExecutionOptions(n_workers=2, profiler=profiler),
            )
        assert len(outcomes) == len(configs)
        assert [p.label for p in profiler.points] == [
            c.describe() for c in configs
        ]
        assert all(p.wall_s > 0 for p in profiler.points)
        assert all(p.sim_events > 0 for p in profiler.points)

    def test_pooled_profiler_is_passive(self):
        from repro.core.options import ExecutionOptions
        from repro.obs.profile import RunProfiler

        grid = small_grid()
        configs = [grid.config_for(p) for p in grid.points()]
        plain = run_configs(configs, ExecutionOptions(n_workers=2))
        profiled = run_configs(
            configs, ExecutionOptions(n_workers=2, profiler=RunProfiler())
        )
        for a, b in zip(plain, profiled):
            assert a.mean_power_w == b.mean_power_w
            assert a.throughput_bps == b.throughput_bps
