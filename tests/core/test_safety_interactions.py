"""Tests for rollout safety planning and cross-component interactions."""

import pytest

from repro.core.interactions import CpuThrottleInteraction
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.redirection import StandbyProfile
from repro.core.safety import DeviceGroup, PowerDomain, RolloutPlanner
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern


def _domain(name, limit, count=8, max_w=15.0, adaptive_w=8.0, adaptive=0):
    return PowerDomain(
        name,
        breaker_limit_w=limit,
        groups=(
            DeviceGroup(
                count=count,
                max_power_w=max_w,
                adaptive_power_w=adaptive_w,
                adaptive_count=adaptive,
            ),
        ),
    )


class TestPowerDomain:
    def test_expected_power_mixes_adaptive(self):
        domain = _domain("d", limit=200.0, adaptive=4)
        # 4 adaptive at 8 W + 4 at 15 W.
        assert domain.expected_power_w() == pytest.approx(4 * 8 + 4 * 15)

    def test_worst_case_reverts_failed_controllers(self):
        domain = _domain("d", limit=200.0, adaptive=4)
        assert domain.worst_case_power_w(1.0) == pytest.approx(8 * 15)
        assert domain.worst_case_power_w(0.0) == pytest.approx(
            domain.expected_power_w()
        )

    def test_partial_failure_interpolates(self):
        domain = _domain("d", limit=200.0, adaptive=4)
        half = domain.worst_case_power_w(0.5)
        assert domain.expected_power_w() < half < domain.worst_case_power_w(1.0)

    def test_breaker_safety(self):
        safe = _domain("safe", limit=130.0, adaptive=8)  # all-max 120 W
        risky = _domain("risky", limit=100.0, adaptive=8)
        assert safe.breaker_safe(1.0)
        assert not risky.breaker_safe(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerDomain("d", breaker_limit_w=0.0)
        with pytest.raises(ValueError):
            DeviceGroup(count=2, max_power_w=10.0, adaptive_power_w=11.0)
        with pytest.raises(ValueError):
            DeviceGroup(count=2, max_power_w=10.0, adaptive_power_w=5.0, adaptive_count=3)


class TestRolloutPlanner:
    def test_distributes_across_domains(self):
        domains = [_domain(f"d{i}", limit=130.0) for i in range(4)]
        planner = RolloutPlanner(domains)
        stages = planner.plan(target_adaptive=8, stages=2)
        final = stages[-1]
        counts = [d.adaptive_count for d in final.domains]
        assert sum(counts) == 8
        assert max(counts) - min(counts) <= 1  # balanced
        assert final.all_breakers_safe

    def test_stages_grow_monotonically(self):
        domains = [_domain(f"d{i}", limit=130.0) for i in range(2)]
        stages = RolloutPlanner(domains).plan(target_adaptive=12, stages=3)
        totals = [s.total_adaptive for s in stages]
        assert totals == sorted(totals)
        assert totals[-1] == 12

    def test_refuses_oversubscribed_domains(self):
        """A domain whose breaker cannot take all-max draw offers no safe
        capacity under the correlated-failure criterion."""
        domains = [_domain("over", limit=100.0)]  # all-max 120 W
        planner = RolloutPlanner(domains)
        with pytest.raises(ValueError):
            planner.plan(target_adaptive=1)

    def test_concentrated_alternative_is_unsafe(self):
        """What the paper warns against: the whole deployment in one
        oversubscribed domain trips its breaker on correlated failure."""
        over = _domain("over", limit=100.0)
        concentrated = RolloutPlanner.concentrated(over, n_adaptive=8)
        assert concentrated.expected_power_w() <= 100.0  # looks fine...
        assert not concentrated.breaker_safe(1.0)  # ...until control fails

    def test_empty_domains_rejected(self):
        with pytest.raises(ValueError):
            RolloutPlanner([])


def _model():
    def mk(power, tput):
        return ModelPoint(
            SweepPoint(IoPattern.RANDWRITE, 4096, 1, None), power, tput, 1e-3
        )

    return PowerThroughputModel(
        "dev", [mk(5.0, 50e6), mk(8.0, 600e6), mk(12.0, 1000e6)]
    )


class TestCpuThrottleInteraction:
    def _interaction(self):
        return CpuThrottleInteraction(
            _model(),
            StandbyProfile(standby_power_w=1.0, wake_latency_s=5e-3, idle_power_w=5.0),
            n_devices=8,
            full_load_bps=6e9,
        )

    def test_redirection_advantage_grows_with_throttle(self):
        points = self._interaction().evaluate((0.0, 0.4, 0.8))
        savings = [p.savings_w for p in points]
        assert savings[-1] > savings[0]

    def test_deep_throttle_prefers_redirection(self):
        points = self._interaction().evaluate((0.8,))
        assert points[0].redirection_preferred
        assert points[0].standby_devices > 0

    def test_load_scales_with_throttle(self):
        points = self._interaction().evaluate((0.0, 0.5))
        assert points[1].load_bps == pytest.approx(points[0].load_bps * 0.5)

    def test_render_produces_table(self):
        points = self._interaction().evaluate((0.0, 0.4))
        text = CpuThrottleInteraction.render(points)
        assert "Preferred" in text

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            self._interaction().evaluate((1.0,))
