"""Tests for the text reporting helpers."""

import pytest

from repro.core.reporting import ascii_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "w"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [0.1234], [3.5]])
        assert "1235" in text
        assert "0.123" in text
        assert "3.5" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestAsciiScatter:
    def test_points_land_in_grid(self):
        from repro.core.reporting import ascii_scatter

        text = ascii_scatter({"a": [(0.0, 0.0), (1.0, 1.0)]}, width=10, height=5)
        lines = text.splitlines()
        assert lines[1].rstrip().endswith("o")  # top-right: (1,1)
        assert lines[5].strip("| ").startswith("o")  # bottom-left: (0,0)

    def test_distinct_markers_per_series(self):
        from repro.core.reporting import ascii_scatter

        text = ascii_scatter(
            {"first": [(0.2, 0.2)], "second": [(0.8, 0.8)]},
            width=20,
            height=8,
        )
        assert "o=first" in text and "x=second" in text

    def test_out_of_range_clamped(self):
        from repro.core.reporting import ascii_scatter

        text = ascii_scatter({"a": [(5.0, -3.0)]}, width=10, height=5)
        assert "o" in text  # still drawn, at the clamped corner

    def test_too_small_rejected(self):
        from repro.core.reporting import ascii_scatter

        with pytest.raises(ValueError):
            ascii_scatter({}, width=2, height=2)


class TestAsciiSeries:
    def test_bars_scale_to_peak(self):
        text = ascii_series([1, 2], [5.0, 10.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_label_emitted(self):
        text = ascii_series([1], [1.0], label="series:")
        assert text.splitlines()[0] == "series:"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], [1.0])

    def test_empty_ok(self):
        assert ascii_series([], [], label="x") == "x"
