"""Tests for the run ledger (repro.core.ledger) and report builder."""

import json

import pytest

from repro.core.ledger import RunLedger, point_record, run_record
from repro.core.report import build_report, render_markdown


class TestRunLedger:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "ledger.jsonl"  # parent auto-created
        ledger = RunLedger(path)
        ledger.append({"rec": "point", "key": "abc"})
        ledger.append({"rec": "run", "kind": "sweep", "failures": 0})
        records = RunLedger.load(path)
        assert [r["rec"] for r in records] == ["point", "run"]
        assert all(r["v"] == 1 for r in records)  # version stamped

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunLedger.load(tmp_path / "absent.jsonl") == []

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).append({"rec": "point", "key": "ok"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"rec": "point", "key": "tor')  # crash mid-write
        records = RunLedger.load(path)
        assert len(records) == 1
        assert records[0]["key"] == "ok"

    def test_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            '\n[1, 2, 3]\n{"no_rec_field": true}\n'
            '{"rec": "run", "kind": "sweep"}\n'
        )
        records = RunLedger.load(path)
        assert len(records) == 1
        assert records[0]["kind"] == "sweep"

    def test_appends_interleave_not_rewrite(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append({"rec": "point", "key": "a"})
        first = path.read_text()
        ledger.append({"rec": "point", "key": "b"})
        assert path.read_text().startswith(first)  # append-only

    def test_lines_are_sorted_json(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).append({"rec": "point", "zeta": 1, "alpha": 2})
        line = path.read_text().strip()
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)


@pytest.fixture(scope="module")
def quick_result():
    from repro.core.experiment import run_experiment
    from repro.iogen.spec import IoPattern
    from repro.studies.common import QUICK, point_config

    config = point_config("ssd2", IoPattern.RANDREAD, 64 * 1024, 4,
                          scale=QUICK)
    return config, run_experiment(config)


class TestPointRecord:
    def test_from_result(self, quick_result):
        config, result = quick_result
        record = point_record(config, result)
        assert record["rec"] == "point"
        assert record["status"] == "done"
        assert record["device"] == "ssd2"
        assert record["seed"] == config.seed
        assert record["result"]["mean_power_w"] == result.mean_power_w
        assert record["result"]["p99_us"] == pytest.approx(
            result.latency().p99 * 1e6
        )
        json.dumps(record)  # must be JSON-serializable as-is

    def test_span_supplies_execution_fields(self, quick_result):
        from repro.core.telemetry import PointSpan

        config, result = quick_result
        span = PointSpan(index=0, key="k", label=config.describe(),
                         status="done", attempts=2, run_s=0.5,
                         sim_events=1000)
        record = point_record(config, result, span=span)
        assert record["key"] == "k"
        assert record["attempts"] == 2
        assert record["wall_s"] == 0.5
        assert record["events_per_s"] == pytest.approx(2000.0)

    def test_from_failure(self, quick_result):
        from repro.core.parallel import PointFailure

        config, _ = quick_result
        failure = PointFailure(
            config=config, error_type="PointTimeoutError",
            message="exceeded 1.0s", traceback="", attempts=2,
        )
        record = point_record(config, failure)
        assert record["status"] == "failed"
        assert record["error_type"] == "PointTimeoutError"
        assert record["attempts"] == 2
        assert "result" not in record


class TestRunRecord:
    def test_minimal(self):
        record = run_record("sweep", points=4)
        assert record == {
            "rec": "run", "kind": "sweep", "failures": 0, "points": 4,
        }

    def test_cache_stats_without_telemetry(self):
        from repro.core.parallel import CacheStats

        record = run_record(
            "policy", points=2, cache=CacheStats(hits=1, misses=1, puts=1)
        )
        assert record["telemetry"]["cache"]["hits"] == 1

    def test_validation_rollup(self, quick_result):
        from repro.validate.checkers import RESULT_INVARIANTS, check_result
        from repro.validate.report import ValidationReport

        _, result = quick_result
        report = ValidationReport(
            violations=tuple(check_result(result)),
            checked=1,
            invariants=RESULT_INVARIANTS,
        )
        record = run_record("sweep", validation=report, points=1)
        assert record["validation"]["ok"] is True
        assert record["validation"]["checked"] == 1


def _points(n, status="done", device="ssd2", **result_extra):
    records = []
    for i in range(n):
        record = {
            "rec": "point", "key": f"k{i}", "label": f"pt{i}",
            "device": device, "power_state": None, "status": status,
            "attempts": 1, "wall_s": 0.1 * (i + 1),
            "events_per_s": 1000.0, "sim_events": int(100 * (i + 1)),
        }
        if status == "done":
            record["result"] = {
                "mean_power_w": 10.0, "throughput_mib_s": 100.0,
                "p99_us": 300.0 * (i + 1), **result_extra,
            }
        records.append(record)
    return records


class TestBuildReport:
    def test_sections_present(self):
        records = _points(8) + [
            run_record("sweep", points=8),
        ]
        report = build_report(records)
        assert report["ok"] is True
        assert report["overview"]["points"] == 8
        assert report["executor"]["executed"] == 8
        assert len(report["executor"]["events_per_s_trend"]) == 4
        assert len(report["executor"]["slowest"]) == 5
        assert report["rollup"]["ssd2"]["points"] == 8
        assert "policy" not in report

    def test_incidents_and_failures_flip_verdict(self):
        records = _points(2) + _points(1, status="timeout") + [
            {"rec": "run", "kind": "sweep", "failures": 1, "points": 3},
        ]
        report = build_report(records)
        assert report["ok"] is False
        assert len(report["executor"]["incidents"]) == 1
        assert report["executor"]["incidents"][0]["status"] == "timeout"

    def test_failed_validation_flips_verdict(self):
        records = _points(2) + [
            {
                "rec": "run", "kind": "sweep", "failures": 0, "points": 2,
                "validation": {
                    "ok": False, "checked": 2,
                    "violations": {"energy_conservation": 1},
                },
            },
        ]
        report = build_report(records)
        assert report["ok"] is False
        assert report["validation"]["violations"] == {
            "energy_conservation": 1
        }

    def test_only_latest_run_judges_the_verdict(self):
        """A failed run earlier in the ledger's history must not taint a
        later clean re-run: ok is judged on the latest run record."""
        records = (
            _points(1, status="failed")
            + [{"rec": "run", "kind": "sweep", "failures": 1, "points": 1}]
            + _points(1)
            + [{"rec": "run", "kind": "sweep", "failures": 0, "points": 1}]
        )
        assert build_report(records)["ok"] is True

    def test_no_run_records_judges_point_statuses(self):
        assert build_report(_points(2))["ok"] is True
        assert build_report(_points(1, status="crashed"))["ok"] is False

    def test_cache_falls_back_to_point_census(self):
        records = _points(3) + _points(1, status="cached")
        cache = build_report(records)["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 3
        assert cache["hit_rate"] == pytest.approx(0.25)

    def test_policy_rollup(self):
        records = _points(
            2, policy={"kind": "feedback", "decisions": 10,
                       "set_point_changes": 3, "mean_abs_error_w": 0.5,
                       "max_overshoot_w": 1.0},
        )
        policy = build_report(records)["policy"]
        assert policy["ssd2/feedback"]["points"] == 2
        assert policy["ssd2/feedback"]["set_point_changes"] == 6
        assert policy["ssd2/feedback"]["mean_tracking_error_w"] == 0.5

    def test_rollup_p99_is_honest_upper_bound(self):
        report = build_report(_points(4))
        worst = report["rollup"]["ssd2"]["p99_us_worst"]
        assert worst == pytest.approx(1200.0)  # max of 300*(i+1)
        assert report["rollup"]["ssd2"]["p99_us_p99"] <= worst * (1 + 1e-9)


class TestRenderMarkdown:
    def test_sections_render(self):
        records = _points(8) + [run_record("sweep", points=8)]
        text = render_markdown(build_report(records))
        assert "# Sweep health report" in text
        assert "## Executor" in text
        assert "## Cache" in text
        assert "## Metrics rollup" in text
        assert "## Validation" in text
        assert "### Slowest points" in text
        assert "**OK**" in text

    def test_not_ok_and_incidents_render(self):
        records = _points(1, status="timeout") + [
            {"rec": "run", "kind": "sweep", "failures": 1, "points": 1},
        ]
        text = render_markdown(build_report(records))
        assert "**NOT OK**" in text
        assert "### Incidents" in text
        assert "timeout" in text

    def test_empty_ledger_renders(self):
        text = render_markdown(build_report([]))
        assert "no points" in text
