"""Tests for the adaptive planner and the fleet allocator.

The shared four-state device model is the session-scoped
``adaptive_model`` fixture in ``tests/core/conftest.py``; the local
``mk`` helper stays for the ad hoc models built inside tests.
"""

import pytest

from repro.core.adaptive import PowerAdaptivePlanner
from repro.fleet.model import FleetModel
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern


def mk(power, tput, latency=1e-3):
    return ModelPoint(
        SweepPoint(IoPattern.RANDWRITE, 4096, 1, None),
        power_w=power,
        throughput_bps=tput,
        latency_p99_s=latency,
    )


class TestPlanner:
    def test_plan_power_cut(self, adaptive_model):
        planner = PowerAdaptivePlanner(adaptive_model)
        plan = planner.plan_power_cut(0.20)  # budget 9.6 W -> 8 W point
        assert plan.power_w == 8.0
        assert plan.throughput_bps == 600e6
        assert plan.curtailed_bps == pytest.approx(400e6)
        assert plan.power_saving_fraction == pytest.approx(1 - 8 / 12)

    def test_plan_budget_with_slo(self):
        points = [mk(5.0, 100e6, 1e-3), mk(8.0, 900e6, 100e-3)]
        planner = PowerAdaptivePlanner(PowerThroughputModel("d", points))
        plan = planner.plan_power_budget(10.0, max_latency_p99_s=10e-3)
        assert plan.throughput_bps == 100e6

    def test_impossible_budget_raises(self, adaptive_model):
        planner = PowerAdaptivePlanner(adaptive_model)
        with pytest.raises(ValueError):
            planner.plan_power_budget(1.0)

    def test_required_power_for_load(self, adaptive_model):
        planner = PowerAdaptivePlanner(adaptive_model)
        plan = planner.required_power_for_load(700e6)
        assert plan.power_w == 10.0

    def test_unservable_load_raises(self, adaptive_model):
        planner = PowerAdaptivePlanner(adaptive_model)
        with pytest.raises(ValueError):
            planner.required_power_for_load(5e9)

    def test_describe_mentions_curtailment(self, adaptive_model):
        planner = PowerAdaptivePlanner(adaptive_model)
        plan = planner.plan_power_cut(0.20)
        assert "curtail" in plan.describe()


class TestFleet:
    def test_floor_and_ceiling(self, adaptive_model):
        fleet = FleetModel([adaptive_model, adaptive_model])
        assert fleet.min_power_w == 10.0
        assert fleet.max_power_w == 24.0
        assert fleet.max_throughput_bps == 2000e6

    def test_budget_below_floor_raises(self, adaptive_model):
        fleet = FleetModel([adaptive_model, adaptive_model])
        with pytest.raises(ValueError):
            fleet.allocate(8.0)

    def test_full_budget_reaches_peak(self, adaptive_model):
        fleet = FleetModel([adaptive_model, adaptive_model])
        allocation = fleet.allocate(24.0)
        assert allocation.total_throughput_bps == pytest.approx(2000e6)

    def test_allocation_respects_budget(self, adaptive_model):
        fleet = FleetModel([adaptive_model] * 4)
        for budget in (21.0, 26.0, 35.0, 48.0):
            allocation = fleet.allocate(budget)
            assert allocation.total_power_w <= budget + 1e-9

    def test_greedy_prefers_efficient_upgrades(self):
        # Device B's upgrade path is much more watt-efficient.
        model_a = PowerThroughputModel("a", [mk(5.0, 100e6), mk(10.0, 200e6)])
        model_b = PowerThroughputModel("b", [mk(5.0, 100e6), mk(7.0, 800e6)])
        fleet = FleetModel([model_a, model_b])
        allocation = fleet.allocate(12.0)
        assert allocation.assignments[1].power_w == 7.0  # b upgraded first
        assert allocation.assignments[0].power_w == 5.0

    def test_monotone_throughput_in_budget(self, adaptive_model):
        fleet = FleetModel([adaptive_model] * 3)
        samples = fleet.fleet_frontier(steps=8)
        throughputs = [t for __, t in samples]
        assert throughputs == sorted(throughputs)

    def test_heterogeneous_fleet(self, adaptive_model):
        hdd_like = PowerThroughputModel(
            "hdd", [mk(3.8, 2e6), mk(4.5, 100e6)]
        )
        fleet = FleetModel([adaptive_model, hdd_like])
        allocation = fleet.allocate(16.5)
        assert allocation.total_power_w <= 16.5
        assert len(allocation.assignments) == 2

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetModel([])
