"""Tests for redirection, asymmetric-IO and tiering policies."""

import pytest

from repro.core.asymmetric import AsymmetricPlanner
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.redirection import RedirectionPolicy, StandbyProfile
from repro.core.sweep import SweepPoint
from repro.core.tiering import WriteAbsorptionScenario
from repro.iogen.spec import IoPattern


def mk(power, tput, latency=1e-3):
    return ModelPoint(
        SweepPoint(IoPattern.RANDWRITE, 4096, 1, None),
        power_w=power,
        throughput_bps=tput,
        latency_p99_s=latency,
    )


WRITE_MODEL = PowerThroughputModel(
    "w", [mk(5.0, 100e6), mk(10.0, 800e6), mk(15.0, 1000e6)]
)
READ_MODEL = PowerThroughputModel(
    "r", [mk(5.0, 200e6), mk(7.0, 2000e6), mk(9.0, 3000e6)]
)

SSD_STANDBY = StandbyProfile(standby_power_w=0.8, wake_latency_s=5e-3, idle_power_w=5.0)
HDD_STANDBY = StandbyProfile(standby_power_w=1.1, wake_latency_s=8.0, idle_power_w=3.76)


class TestStandbyProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            StandbyProfile(standby_power_w=5.0, wake_latency_s=0.0, idle_power_w=1.0)
        with pytest.raises(ValueError):
            StandbyProfile(standby_power_w=-1.0, wake_latency_s=0.0, idle_power_w=1.0)


class TestRedirection:
    def test_consolidates_light_load(self):
        policy = RedirectionPolicy(WRITE_MODEL, SSD_STANDBY, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=0.1)
        assert decision.active_devices == 1
        assert decision.standby_devices == 7
        assert decision.slo_safe

    def test_saves_power_vs_spreading(self):
        policy = RedirectionPolicy(WRITE_MODEL, SSD_STANDBY, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=0.1)
        assert decision.power_vs_all_active_w > 0

    def test_hdd_wake_violates_tight_slo(self):
        policy = RedirectionPolicy(WRITE_MODEL, HDD_STANDBY, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=0.1)
        assert not decision.slo_safe
        assert decision.active_devices == 8  # falls back to all-active

    def test_hdd_ok_with_loose_slo(self):
        policy = RedirectionPolicy(WRITE_MODEL, HDD_STANDBY, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=30.0)
        assert decision.slo_safe
        assert decision.standby_devices > 0

    def test_heavy_load_activates_more_devices(self):
        policy = RedirectionPolicy(WRITE_MODEL, SSD_STANDBY, n_devices=8)
        light = policy.decide(200e6, wake_slo_s=1.0)
        heavy = policy.decide(3000e6, wake_slo_s=1.0)
        assert heavy.active_devices > light.active_devices

    def test_load_beyond_fleet_rejected(self):
        policy = RedirectionPolicy(WRITE_MODEL, SSD_STANDBY, n_devices=2)
        with pytest.raises(ValueError):
            policy.decide(10e9, wake_slo_s=1.0)

    def test_standby_savings(self):
        policy = RedirectionPolicy(WRITE_MODEL, SSD_STANDBY, n_devices=2)
        assert policy.standby_savings_w() == pytest.approx(4.2)


class TestAsymmetric:
    def test_plan_sizes_write_set(self):
        planner = AsymmetricPlanner(READ_MODEL, WRITE_MODEL, n_devices=8, cap_power_w=7.0)
        plan = planner.plan(read_load_bps=8000e6, write_load_bps=1500e6)
        assert plan.write_devices == 2
        assert plan.read_devices == 6

    def test_segregation_beats_uniform(self):
        planner = AsymmetricPlanner(READ_MODEL, WRITE_MODEL, n_devices=8, cap_power_w=7.0)
        plan = planner.plan(read_load_bps=8000e6, write_load_bps=1500e6)
        assert plan.savings_w > 0

    def test_write_load_too_big_rejected(self):
        planner = AsymmetricPlanner(READ_MODEL, WRITE_MODEL, n_devices=2, cap_power_w=7.0)
        with pytest.raises(ValueError):
            planner.plan(read_load_bps=100e6, write_load_bps=5e9)

    def test_read_load_exceeding_capped_set_rejected(self):
        planner = AsymmetricPlanner(READ_MODEL, WRITE_MODEL, n_devices=3, cap_power_w=7.0)
        with pytest.raises(ValueError):
            planner.plan(read_load_bps=5e9, write_load_bps=900e6)

    def test_needs_two_devices(self):
        with pytest.raises(ValueError):
            AsymmetricPlanner(READ_MODEL, WRITE_MODEL, n_devices=1, cap_power_w=7.0)


class TestTiering:
    @pytest.fixture(scope="class")
    def results(self):
        scenario = WriteAbsorptionScenario(
            burst_bytes=2 << 20, chunk_bytes=256 << 10
        )
        return scenario.compare()

    def test_direct_writes_stall_behind_spinup(self, results):
        direct, __ = results
        assert direct.burst_latency.max >= 1.0  # seconds-scale stall

    def test_absorption_masks_spinup(self, results):
        __, absorbed = results
        assert absorbed.burst_latency.max < 0.05
        assert absorbed.hdd_spinups == 1

    def test_absorption_destages_afterwards(self, results):
        __, absorbed = results
        assert absorbed.destage_duration_s > 0

    def test_burst_much_faster_with_absorption(self, results):
        direct, absorbed = results
        assert absorbed.burst_duration_s < direct.burst_duration_s / 10

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            WriteAbsorptionScenario(burst_bytes=100, chunk_bytes=4096)
