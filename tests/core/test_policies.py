"""Tests for redirection, asymmetric-IO and tiering policies.

The shared write/read models and standby profiles are session-scoped
fixtures in ``tests/core/conftest.py``.
"""

import pytest

from repro.core.asymmetric import AsymmetricPlanner
from repro.core.redirection import RedirectionPolicy, StandbyProfile
from repro.core.tiering import WriteAbsorptionScenario


class TestStandbyProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            StandbyProfile(standby_power_w=5.0, wake_latency_s=0.0, idle_power_w=1.0)
        with pytest.raises(ValueError):
            StandbyProfile(standby_power_w=-1.0, wake_latency_s=0.0, idle_power_w=1.0)


class TestRedirection:
    def test_consolidates_light_load(self, write_model, ssd_standby):
        policy = RedirectionPolicy(write_model, ssd_standby, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=0.1)
        assert decision.active_devices == 1
        assert decision.standby_devices == 7
        assert decision.slo_safe

    def test_saves_power_vs_spreading(self, write_model, ssd_standby):
        policy = RedirectionPolicy(write_model, ssd_standby, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=0.1)
        assert decision.power_vs_all_active_w > 0

    def test_hdd_wake_violates_tight_slo(self, write_model, hdd_standby):
        policy = RedirectionPolicy(write_model, hdd_standby, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=0.1)
        assert not decision.slo_safe
        assert decision.active_devices == 8  # falls back to all-active

    def test_hdd_ok_with_loose_slo(self, write_model, hdd_standby):
        policy = RedirectionPolicy(write_model, hdd_standby, n_devices=8)
        decision = policy.decide(offered_load_bps=500e6, wake_slo_s=30.0)
        assert decision.slo_safe
        assert decision.standby_devices > 0

    def test_heavy_load_activates_more_devices(self, write_model, ssd_standby):
        policy = RedirectionPolicy(write_model, ssd_standby, n_devices=8)
        light = policy.decide(200e6, wake_slo_s=1.0)
        heavy = policy.decide(3000e6, wake_slo_s=1.0)
        assert heavy.active_devices > light.active_devices

    def test_load_beyond_fleet_rejected(self, write_model, ssd_standby):
        policy = RedirectionPolicy(write_model, ssd_standby, n_devices=2)
        with pytest.raises(ValueError):
            policy.decide(10e9, wake_slo_s=1.0)

    def test_standby_savings(self, write_model, ssd_standby):
        policy = RedirectionPolicy(write_model, ssd_standby, n_devices=2)
        assert policy.standby_savings_w() == pytest.approx(4.2)


class TestAsymmetric:
    def test_plan_sizes_write_set(self, read_model, write_model):
        planner = AsymmetricPlanner(read_model, write_model, n_devices=8, cap_power_w=7.0)
        plan = planner.plan(read_load_bps=8000e6, write_load_bps=1500e6)
        assert plan.write_devices == 2
        assert plan.read_devices == 6

    def test_segregation_beats_uniform(self, read_model, write_model):
        planner = AsymmetricPlanner(read_model, write_model, n_devices=8, cap_power_w=7.0)
        plan = planner.plan(read_load_bps=8000e6, write_load_bps=1500e6)
        assert plan.savings_w > 0

    def test_write_load_too_big_rejected(self, read_model, write_model):
        planner = AsymmetricPlanner(read_model, write_model, n_devices=2, cap_power_w=7.0)
        with pytest.raises(ValueError):
            planner.plan(read_load_bps=100e6, write_load_bps=5e9)

    def test_read_load_exceeding_capped_set_rejected(self, read_model, write_model):
        planner = AsymmetricPlanner(read_model, write_model, n_devices=3, cap_power_w=7.0)
        with pytest.raises(ValueError):
            planner.plan(read_load_bps=5e9, write_load_bps=900e6)

    def test_needs_two_devices(self, read_model, write_model):
        with pytest.raises(ValueError):
            AsymmetricPlanner(read_model, write_model, n_devices=1, cap_power_w=7.0)


class TestTiering:
    @pytest.fixture(scope="class")
    def results(self):
        scenario = WriteAbsorptionScenario(
            burst_bytes=2 << 20, chunk_bytes=256 << 10
        )
        return scenario.compare()

    def test_direct_writes_stall_behind_spinup(self, results):
        direct, __ = results
        assert direct.burst_latency.max >= 1.0  # seconds-scale stall

    def test_absorption_masks_spinup(self, results):
        __, absorbed = results
        assert absorbed.burst_latency.max < 0.05
        assert absorbed.hdd_spinups == 1

    def test_absorption_destages_afterwards(self, results):
        __, absorbed = results
        assert absorbed.destage_duration_s > 0

    def test_burst_much_faster_with_absorption(self, results):
        direct, absorbed = results
        assert absorbed.burst_duration_s < direct.burst_duration_s / 10

    def test_invalid_burst_rejected(self):
        with pytest.raises(ValueError):
            WriteAbsorptionScenario(burst_bytes=100, chunk_bytes=4096)
