"""Durability of the append-only logs under concurrent writers and torn
tails.

Both ``RunLedger`` and ``CheckpointJournal`` promise that (a) multiple
processes appending to one file interleave whole lines and lose nothing
(O_APPEND semantics), and (b) a torn final line -- the signature of a
crashed writer -- is skipped on load, never raised.  These tests drive
two real subprocess appenders against one file and then mutilate the
tail by hand.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.core.checkpoint import CheckpointJournal, PointState
from repro.core.ledger import RunLedger

SRC = str(Path(__file__).resolve().parents[2] / "src")

_LEDGER_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.core.ledger import RunLedger

ledger = RunLedger({path!r})
for i in range({count}):
    ledger.append({{"rec": "point", "writer": {writer}, "i": i}})
"""

_JOURNAL_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.core.checkpoint import CheckpointJournal, PointState

journal = CheckpointJournal({path!r})
journal.open()
for i in range({count}):
    journal.record("w{writer}-" + str(i), PointState.IN_FLIGHT)
    journal.record("w{writer}-" + str(i), PointState.DONE)
journal.close()
"""


def _run_writers(tmp_path, template, path, count=50):
    scripts = []
    for writer in (1, 2):
        script = tmp_path / f"writer{writer}.py"
        script.write_text(
            template.format(
                src=SRC, path=str(path), count=count, writer=writer
            )
        )
        scripts.append(script)
    procs = [
        subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for script in scripts
    ]
    for proc in procs:
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, stderr


class TestConcurrentLedgerAppenders:
    def test_two_writers_lose_no_records(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        _run_writers(tmp_path, _LEDGER_WRITER, path)
        records = RunLedger.load(path)
        assert len(records) == 100
        for writer in (1, 2):
            mine = [r["i"] for r in records if r["writer"] == writer]
            # Per-writer order is preserved even under interleaving.
            assert mine == list(range(50))

    def test_no_line_is_torn(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        _run_writers(tmp_path, _LEDGER_WRITER, path)
        for line in path.read_text().splitlines():
            assert json.loads(line)["rec"] == "point"

    def test_torn_tail_is_skipped_on_load(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append({"rec": "run", "points": 3})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"rec": "point", "i": 99, "trun')
        records = RunLedger.load(path)
        assert [r["rec"] for r in records] == ["run"]


class TestConcurrentJournalAppenders:
    def test_two_writers_lose_no_entries(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        _run_writers(tmp_path, _JOURNAL_WRITER, path)
        entries = CheckpointJournal.load(path)
        assert len(entries) == 100
        assert all(
            entry.state is PointState.DONE for entry in entries.values()
        )

    def test_torn_tail_keeps_prior_entries(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        journal = CheckpointJournal(path)
        journal.open()
        journal.record("alpha", PointState.DONE)
        journal.record("beta", PointState.IN_FLIGHT)
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "beta", "state": "do')
        entries = CheckpointJournal.load(path)
        assert entries["alpha"].state is PointState.DONE
        # The torn update is dropped; beta keeps its last intact state.
        assert entries["beta"].state is PointState.IN_FLIGHT

    def test_garbage_line_mid_file_is_skipped(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        journal = CheckpointJournal(path)
        journal.open()
        journal.record("alpha", PointState.DONE)
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"key": "gamma", "state": "unknown-state"}\n')
        journal = CheckpointJournal(path)
        journal.open()
        journal.record("delta", PointState.DONE)
        journal.close()
        entries = CheckpointJournal.load(path)
        assert set(entries) == {"alpha", "delta"}
