"""Tests for sweep-scale executor telemetry (repro.core.telemetry)."""

import pytest

from repro.core.options import ExecutionOptions
from repro.core.parallel import CacheStats
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.core.telemetry import (
    PointSpan,
    ProgressUpdate,
    SweepTelemetry,
    TelemetryRecorder,
    WorkerStats,
    point_status,
)
from repro.iogen.spec import IoPattern, JobSpec


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float) -> float:
        self.now += dt
        return self.now


class _Outcome:
    def __init__(self, error_type=None, attempts=None):
        if error_type is not None:
            self.error_type = error_type
        if attempts is not None:
            self.attempts = attempts


class TestPointStatus:
    def test_result_maps_to_done(self):
        assert point_status(object()) == "done"

    def test_failure_kinds_stay_distinguishable(self):
        assert point_status(_Outcome("PointTimeoutError")) == "timeout"
        assert point_status(_Outcome("WorkerCrashError")) == "crashed"
        assert point_status(_Outcome("ValueError")) == "failed"


class TestRecorderLifecycle:
    def test_span_captures_queue_wait_and_total(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        recorder.point_enqueued(0, "abc123", "pt A")
        clock.tick(0.5)  # queued for half a second
        recorder.point_dispatched(0, worker=2)
        clock.tick(2.0)  # ran for two
        recorder.point_finished(0, _Outcome())
        span = recorder.span(0)
        assert span.status == "done"
        assert span.attempts == 1
        assert span.worker == 2
        assert span.queue_wait_s == pytest.approx(0.5)
        assert span.total_s == pytest.approx(2.5)
        assert span.key == "abc123"

    def test_retries_accumulate_attempts(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        recorder.point_enqueued(0, "k", "pt")
        recorder.point_dispatched(0, worker=0)
        clock.tick(1.0)
        recorder.point_dispatched(0, worker=1)  # retry on a new slot
        clock.tick(1.0)
        recorder.point_finished(0, _Outcome())
        span = recorder.span(0)
        assert span.attempts == 2
        assert span.worker == 1

    def test_failure_attempts_override_dispatch_count(self):
        """A PointFailure knows its true attempt count (the recorder may
        have seen fewer dispatches, e.g. after a worker replacement)."""
        recorder = TelemetryRecorder(clock=FakeClock())
        recorder.point_enqueued(0, "k", "pt")
        recorder.point_dispatched(0)
        recorder.point_finished(0, _Outcome("PointTimeoutError", attempts=3))
        assert recorder.span(0).attempts == 3
        assert recorder.span(0).status == "timeout"

    def test_cached_points_skip_dispatch(self):
        recorder = TelemetryRecorder(clock=FakeClock())
        recorder.point_cached(0, "k", "pt")
        span = recorder.span(0)
        assert span.status == "cached"
        assert span.attempts == 1
        assert span.run_s == 0.0

    def test_unfinished_point_has_no_span(self):
        recorder = TelemetryRecorder(clock=FakeClock())
        recorder.point_enqueued(0, "k", "pt")
        assert recorder.span(0) is None
        assert recorder.span(99) is None

    def test_worker_utilization(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        recorder.worker_spawned(0)
        recorder.worker_attempt(0, busy_s=3.0)
        clock.tick(4.0)
        recorder.worker_retired(0)
        telemetry = recorder.finalize()
        (worker,) = telemetry.workers
        assert worker.attempts == 1
        assert worker.alive_s == pytest.approx(4.0)
        assert worker.utilization == pytest.approx(0.75)

    def test_finalize_folds_cache_stats(self):
        recorder = TelemetryRecorder(clock=FakeClock())
        recorder.point_cached(0, "k", "pt")
        stats = CacheStats(hits=1, misses=2, puts=2)
        telemetry = recorder.finalize(cache=stats)
        assert telemetry.cache["hits"] == 1
        assert telemetry.cache["hit_rate"] == pytest.approx(1 / 3)


class TestProgress:
    def test_callback_fires_on_every_terminal_event(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        recorder.total = 3
        seen = []
        recorder.on_progress = seen.append
        recorder.point_cached(0, "k0", "pt0")
        recorder.point_enqueued(1, "k1", "pt1")
        recorder.point_dispatched(1)
        clock.tick(2.0)
        recorder.point_finished(1, _Outcome())
        assert [u.done for u in seen] == [1, 2]
        assert seen[-1].total == 3
        assert seen[-1].cached == 1

    def test_eta_extrapolates_over_executed_points_only(self):
        # 2 done of which 1 cached, elapsed 2 s -> 2 s per executed
        # point; 2 remaining -> eta 4 s.
        update = ProgressUpdate(done=2, total=4, cached=1, failed=0,
                                elapsed_s=2.0)
        assert update.remaining == 2
        assert update.eta_s == pytest.approx(4.0)

    def test_eta_unknown_before_any_executed_sample(self):
        update = ProgressUpdate(done=2, total=4, cached=2, failed=0,
                                elapsed_s=1.0)
        assert update.eta_s is None
        assert "eta" not in update.describe()

    def test_describe_mentions_failures_and_cached(self):
        update = ProgressUpdate(done=3, total=4, cached=1, failed=1,
                                elapsed_s=2.0)
        text = update.describe()
        assert "3/4 points" in text
        assert "1 cached" in text
        assert "1 failed" in text


def _span(index, status="done", attempts=1, run_s=1.0, sim_events=100,
          worker=None):
    return PointSpan(
        index=index, key=f"k{index}", label=f"pt{index}", status=status,
        attempts=attempts, run_s=run_s, total_s=run_s,
        sim_events=sim_events, worker=worker,
    )


class TestSweepTelemetry:
    def test_tallies(self):
        telemetry = SweepTelemetry(
            spans=(
                _span(0),
                _span(1, status="cached", run_s=0.0, sim_events=0),
                _span(2, status="timeout", attempts=3),
            ),
            wall_s=5.0,
        )
        assert telemetry.points == 3
        assert telemetry.count("done") == 1
        assert telemetry.count("cached") == 1
        assert telemetry.retries == 2
        assert telemetry.sim_events == 200
        assert telemetry.events_per_second == pytest.approx(100.0)
        assert [s.index for s in telemetry.incidents()] == [2]

    def test_slowest_excludes_cache_hits(self):
        telemetry = SweepTelemetry(
            spans=(
                _span(0, run_s=1.0),
                _span(1, status="cached", run_s=0.0),
                _span(2, run_s=3.0),
            )
        )
        assert [s.index for s in telemetry.slowest(2)] == [2, 0]

    def test_merge_shifts_indices_and_workers(self):
        a = SweepTelemetry(
            spans=(_span(0, worker=0),),
            workers=(WorkerStats(worker=0, attempts=1, busy_s=1.0,
                                 alive_s=2.0),),
            wall_s=2.0,
            cache={"hits": 1, "misses": 0, "corrupt": 0, "puts": 0,
                   "hit_rate": 1.0},
        )
        b = SweepTelemetry(
            spans=(_span(0, worker=0),),
            workers=(WorkerStats(worker=0, attempts=1, busy_s=2.0,
                                 alive_s=2.0),),
            wall_s=3.0,
            cache={"hits": 0, "misses": 1, "corrupt": 0, "puts": 1,
                   "hit_rate": 0.0},
        )
        merged = a.merge(b)
        assert [s.index for s in merged.spans] == [0, 1]
        assert [w.worker for w in merged.workers] == [0, 1]
        assert merged.wall_s == pytest.approx(5.0)
        assert merged.cache["hits"] == 1
        assert merged.cache["hit_rate"] == pytest.approx(0.5)

    def test_merge_is_associative(self):
        shards = [
            SweepTelemetry(spans=(_span(0, run_s=float(i + 1)),),
                           wall_s=float(i))
            for i in range(3)
        ]
        left = shards[0].merge(shards[1]).merge(shards[2])
        right = shards[0].merge(shards[1].merge(shards[2]))
        assert left.snapshot() == right.snapshot()

    def test_snapshot_is_json_shaped(self):
        telemetry = SweepTelemetry(spans=(_span(0),), wall_s=1.0)
        snap = telemetry.snapshot()
        assert snap["points"] == 1
        assert snap["by_status"] == {"done": 1}
        assert snap["workers"] == []
        assert snap["cache"] is None


def _tiny_grid():
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(64 * 1024,),
        iodepths=(4, 8),
        base_job=JobSpec(
            pattern=IoPattern.RANDREAD,
            block_size=4096,
            iodepth=1,
            runtime_s=0.01,
            size_limit_bytes=4 * 1024 * 1024,
        ),
    )


class TestSweepIntegration:
    def test_outcome_telemetry_none_by_default(self):
        outcome = sweep_outcome(_tiny_grid(), ExecutionOptions())
        assert outcome.telemetry is None

    def test_inprocess_spans_and_passivity(self):
        plain = sweep_outcome(_tiny_grid(), ExecutionOptions())
        telemetered = sweep_outcome(
            _tiny_grid(), ExecutionOptions(telemetry=True)
        )
        telemetry = telemetered.telemetry
        assert telemetry.points == 2
        assert telemetry.count("done") == 2
        assert telemetry.sim_events > 0
        assert all(s.run_s > 0 for s in telemetry.spans)
        for point, result in plain.results.items():
            other = telemetered.results[point]
            assert other.mean_power_w == result.mean_power_w
            assert other.throughput_bps == result.throughput_bps

    def test_cache_hits_become_cached_spans(self, tmp_path):
        opts = ExecutionOptions(cache_dir=tmp_path, telemetry=True)
        first = sweep_outcome(_tiny_grid(), opts)
        assert first.telemetry.count("cached") == 0
        assert first.telemetry.cache["puts"] == 2
        second = sweep_outcome(_tiny_grid(), opts)
        assert second.telemetry.count("cached") == 2
        assert second.telemetry.cache["hits"] == 2
        assert second.telemetry.executed_wall_s == 0.0

    def test_progress_callback_via_options(self):
        updates = []
        outcome = sweep_outcome(
            _tiny_grid(),
            ExecutionOptions(telemetry=True, progress=updates.append),
        )
        assert len(outcome.results) == 2
        assert [u.done for u in updates] == [1, 2]
        assert updates[-1].total == 2
