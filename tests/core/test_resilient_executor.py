"""Tests for resilient sweep execution: timeouts, retries, crash survival.

The resilient pool owns its worker processes (fork start method), so a
``monkeypatch``-ed ``parallel.run_experiment`` is inherited by the
children -- the tests stand in hung/crashing experiments for real ones.
"""

import os
import time

import pytest

from repro._units import KiB, MiB
from repro.core import parallel
from repro.core.parallel import (
    PointFailure,
    RetryPolicy,
    backoff_delay,
    run_configs,
)
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec
from tests.conftest import tiny_ssd_config


def quick_config(iodepth=4):
    return ExperimentConfig(
        device=tiny_ssd_config(),
        job=JobSpec(
            IoPattern.RANDREAD,
            block_size=16 * KiB,
            iodepth=iodepth,
            runtime_s=0.01,
            size_limit_bytes=4 * MiB,
        ),
        seed=9,
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=-0.5)

    def test_resilient_property(self):
        assert not RetryPolicy().resilient
        assert RetryPolicy(timeout_s=5.0).resilient
        assert RetryPolicy(retries=1).resilient


class TestBackoffDelay:
    POLICY = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=1.0, jitter=0.25)

    def test_deterministic_per_key_and_attempt(self):
        assert backoff_delay("abc", 1, self.POLICY) == backoff_delay(
            "abc", 1, self.POLICY
        )
        assert backoff_delay("abc", 1, self.POLICY) != backoff_delay(
            "abc", 2, self.POLICY
        )
        assert backoff_delay("abc", 1, self.POLICY) != backoff_delay(
            "xyz", 1, self.POLICY
        )

    def test_exponential_growth_with_cap(self):
        no_jitter = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.35, jitter=0.0)
        assert backoff_delay("k", 1, no_jitter) == pytest.approx(0.1)
        assert backoff_delay("k", 2, no_jitter) == pytest.approx(0.2)
        assert backoff_delay("k", 3, no_jitter) == pytest.approx(0.35)  # capped
        assert backoff_delay("k", 9, no_jitter) == pytest.approx(0.35)

    def test_jitter_bounded(self):
        for attempt in (1, 2, 3):
            delay = backoff_delay("key", attempt, self.POLICY)
            base = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            backoff_delay("k", 0, self.POLICY)


class TestHungWorker:
    def test_timeout_kills_and_reports(self, monkeypatch):
        def hang(config):
            time.sleep(60)

        monkeypatch.setattr(parallel, "run_experiment", hang)
        policy = RetryPolicy(timeout_s=0.5, retries=1, backoff_base_s=0.01)
        start = time.monotonic()
        (outcome,) = run_configs([quick_config()], n_workers=2, policy=policy)
        elapsed = time.monotonic() - start
        assert isinstance(outcome, PointFailure)
        assert outcome.error_type == "PointTimeoutError"
        assert "wall-clock budget" in outcome.message
        assert outcome.attempts == 2  # first run + one retry, both killed
        # Two 0.5 s budgets plus overhead, nowhere near the 60 s sleep.
        assert elapsed < 30

    def test_healthy_points_unaffected_by_hung_sibling(self, monkeypatch):
        real = parallel.run_experiment

        def selective_hang(config):
            if config.job.iodepth == 8:
                time.sleep(60)
            return real(config)

        monkeypatch.setattr(parallel, "run_experiment", selective_hang)
        policy = RetryPolicy(timeout_s=0.75, retries=0)
        healthy, hung = run_configs(
            [quick_config(iodepth=4), quick_config(iodepth=8)],
            n_workers=2,
            policy=policy,
        )
        assert isinstance(healthy, ExperimentResult)
        assert healthy.mean_power_w > 0
        assert isinstance(hung, PointFailure)
        assert hung.error_type == "PointTimeoutError"


class TestWorkerCrash:
    def test_hard_crash_survived_and_reported(self, monkeypatch):
        real = parallel.run_experiment

        def crash_on_deep(config):
            if config.job.iodepth == 8:
                os._exit(13)  # simulates segfault / OOM kill
            return real(config)

        monkeypatch.setattr(parallel, "run_experiment", crash_on_deep)
        policy = RetryPolicy(retries=1, backoff_base_s=0.01)
        healthy, crashed = run_configs(
            [quick_config(iodepth=4), quick_config(iodepth=8)],
            n_workers=2,
            policy=policy,
        )
        assert isinstance(healthy, ExperimentResult)
        assert healthy.mean_power_w > 0
        assert isinstance(crashed, PointFailure)
        assert crashed.error_type == "WorkerCrashError"
        assert "died" in crashed.message
        assert crashed.attempts == 2

    def test_flaky_point_succeeds_on_retry(self, monkeypatch, tmp_path):
        marker = tmp_path / "first-attempt-done"
        real = parallel.run_experiment

        def flaky(config):
            if not marker.exists():
                marker.write_text("crashing this attempt")
                os._exit(1)
            return real(config)

        monkeypatch.setattr(parallel, "run_experiment", flaky)
        policy = RetryPolicy(retries=2, backoff_base_s=0.01)
        (outcome,) = run_configs([quick_config()], n_workers=1, policy=policy)
        assert isinstance(outcome, ExperimentResult)
        assert outcome.mean_power_w > 0
        # The retry reproduced the deterministic experiment exactly.
        reference = parallel.run_experiment(quick_config())
        assert outcome.mean_power_w == reference.mean_power_w
        assert outcome.throughput_bps == reference.throughput_bps

    def test_deterministic_exception_exhausts_retries(self):
        bad = ExperimentConfig(
            device=tiny_ssd_config(),
            job=quick_config().job,
            power_state=99,
        )
        policy = RetryPolicy(retries=1, backoff_base_s=0.01)
        (outcome,) = run_configs([bad], n_workers=1, policy=policy)
        assert isinstance(outcome, PointFailure)
        assert outcome.error_type == "ValueError"
        assert outcome.attempts == 2
        assert "after 2 attempts" in outcome.describe()


class TestResilientEquivalence:
    def test_resilient_pool_matches_plain_execution(self):
        grid = SweepGrid(
            device=tiny_ssd_config(),
            patterns=(IoPattern.RANDREAD,),
            block_sizes=(16 * KiB, 64 * KiB),
            iodepths=(1, 8),
            power_states=(0,),
            base_job=quick_config().job,
        )
        plain = run_sweep(grid, n_workers=1)
        resilient = run_sweep(grid, n_workers=2, timeout_s=120.0, retries=2)
        assert list(resilient) == list(plain)
        for point, result in plain.items():
            other = resilient[point]
            assert other.mean_power_w == result.mean_power_w
            assert other.throughput_bps == result.throughput_bps
            assert other.true_mean_power_w == result.true_mean_power_w

    def test_tracing_with_timeout_warns_and_runs_in_process(self):
        from repro.obs import Tracer

        tracer = Tracer(keep_events=True)
        policy = RetryPolicy(timeout_s=60.0)
        with pytest.warns(RuntimeWarning, match="cannot be enforced"):
            (outcome,) = run_configs(
                [quick_config()], n_workers=2, policy=policy, tracer=tracer
            )
        assert isinstance(outcome, ExperimentResult)
        assert tracer.events  # the run really was traced
