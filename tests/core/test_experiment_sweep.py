"""Tests for the experiment harness and sweeps."""

import pytest

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.sweep import SweepGrid, run_sweep
from repro.devices.link import LinkPowerMode
from repro.iogen.spec import IoPattern, JobSpec
from tests.conftest import tiny_ssd_config


def quick_job(pattern=IoPattern.RANDREAD, bs=16 * KiB, qd=4):
    return JobSpec(
        pattern,
        block_size=bs,
        iodepth=qd,
        runtime_s=0.01,
        size_limit_bytes=4 * MiB,
    )


class TestRunExperiment:
    def test_returns_power_and_throughput(self):
        result = run_experiment(
            ExperimentConfig(device=tiny_ssd_config(), job=quick_job())
        )
        assert result.mean_power_w > 0
        assert result.throughput_mib_s > 0
        assert result.latency().count > 0

    def test_deterministic_from_seed(self):
        config = ExperimentConfig(device=tiny_ssd_config(), job=quick_job(), seed=9)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.mean_power_w == b.mean_power_w
        assert a.throughput_bps == b.throughput_bps

    def test_power_state_applied(self):
        result = run_experiment(
            ExperimentConfig(
                device=tiny_ssd_config(),
                job=quick_job(IoPattern.RANDWRITE),
                power_state=2,
            )
        )
        assert result.cap_w == pytest.approx(2.8)
        assert result.cap_respected

    def test_power_state_on_hdd_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(
                ExperimentConfig(device="hdd", job=quick_job(), power_state=1)
            )

    def test_alpm_mode_applied(self):
        result = run_experiment(
            ExperimentConfig(
                device="860evo",
                job=quick_job(qd=1),
                alpm_mode=LinkPowerMode.ACTIVE,
            )
        )
        assert result.mean_power_w > 0

    def test_meter_error_small(self):
        # A ~5 ms window yields ~100 samples; sampling variance dominates,
        # so the band here is looser than the <1 % rig claim (which the
        # dedicated meter tests and test_reproduction verify on full-size
        # windows).
        result = run_experiment(
            ExperimentConfig(device=tiny_ssd_config(), job=quick_job())
        )
        assert result.meter_relative_error < 0.04

    def test_trace_kept_on_request(self):
        result = run_experiment(
            ExperimentConfig(device=tiny_ssd_config(), job=quick_job(), keep_trace=True)
        )
        assert result.trace is not None
        assert len(result.trace) > 0

    def test_trace_dropped_by_default(self):
        result = run_experiment(
            ExperimentConfig(device=tiny_ssd_config(), job=quick_job())
        )
        assert result.trace is None

    def test_describe_mentions_mechanisms(self):
        config = ExperimentConfig(
            device=tiny_ssd_config(),
            job=quick_job(),
            power_state=1,
        )
        assert "ps1" in config.describe()

    def test_summary_renders(self):
        result = run_experiment(
            ExperimentConfig(device=tiny_ssd_config(), job=quick_job())
        )
        text = result.summary()
        assert "W" in text and "MiB/s" in text


class TestSweep:
    def _grid(self):
        return SweepGrid(
            device=tiny_ssd_config(),
            patterns=(IoPattern.RANDREAD,),
            block_sizes=(16 * KiB, 64 * KiB),
            iodepths=(1, 8),
            power_states=(0, 2),
            base_job=quick_job(),
        )

    def test_points_cover_grid(self):
        grid = self._grid()
        points = list(grid.points())
        assert len(points) == 2 * 2 * 2

    def test_run_sweep_returns_all_points(self):
        grid = self._grid()
        results = run_sweep(grid)
        assert len(results) == 8
        for point, result in results.items():
            assert result.config.power_state == point.power_state
            assert result.mean_power_w > 0

    def test_config_for_overrides_job(self):
        grid = self._grid()
        point = next(iter(grid.points()))
        config = grid.config_for(point)
        assert config.job.block_size == point.block_size
        assert config.job.iodepth == point.iodepth
