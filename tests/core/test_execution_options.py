"""``ExecutionOptions`` and the legacy-kwarg deprecation shims.

One frozen options object now carries everything about *how* a sweep
executes.  The old per-call kwargs must keep working -- warning, once
per call site, via ``DeprecationWarning`` -- and must produce
``SweepOutcome``s identical to the options path, or downstream scripts
would silently change results when migrating.
"""

import dataclasses
import warnings

import pytest

from repro._units import KiB, MiB
from repro.core.options import ExecutionOptions, coerce_execution_options
from repro.core.parallel import run_configs
from repro.core.sweep import SweepGrid, run_sweep, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec
from tests.conftest import tiny_ssd_config


def quick_job():
    return JobSpec(
        IoPattern.RANDREAD,
        block_size=16 * KiB,
        iodepth=2,
        runtime_s=0.01,
        size_limit_bytes=4 * MiB,
    )


def small_grid():
    return SweepGrid(
        device=tiny_ssd_config(),
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(16 * KiB,),
        iodepths=(1, 4),
        power_states=(0,),
        base_job=quick_job(),
    )


class TestExecutionOptions:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.n_workers == 1
        assert opts.cache_dir is None
        assert opts.tracer is None
        assert opts.profiler is None
        assert opts.timeout_s is None
        assert opts.retries == 0
        assert opts.checkpoint is None
        assert opts.resume is False

    def test_frozen(self):
        opts = ExecutionOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.n_workers = 4

    def test_evolve_returns_new_instance(self):
        opts = ExecutionOptions(n_workers=2)
        evolved = opts.evolve(retries=3)
        assert evolved is not opts
        assert evolved.n_workers == 2
        assert evolved.retries == 3
        assert opts.retries == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_workers=0),
            dict(n_workers=-1),
            dict(timeout_s=0.0),
            dict(timeout_s=-5.0),
            dict(retries=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionOptions(**kwargs)

    def test_resilient_property(self):
        assert not ExecutionOptions().resilient
        assert ExecutionOptions(timeout_s=1.0).resilient
        assert ExecutionOptions(retries=2).resilient


class TestCoercion:
    def test_options_object_passes_through(self):
        opts = ExecutionOptions(n_workers=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            coerced = coerce_execution_options("f", opts, (), {})
        assert coerced is opts

    def test_no_arguments_yields_defaults(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.core.options import UNSET

            assert coerce_execution_options("f", UNSET, (), {}) == (
                ExecutionOptions()
            )

    def test_legacy_kwargs_warn_and_map(self):
        from repro.core.options import UNSET

        with pytest.warns(DeprecationWarning, match="n_workers"):
            coerced = coerce_execution_options(
                "f", UNSET, (), {"n_workers": 4, "retries": 2}
            )
        assert coerced == ExecutionOptions(n_workers=4, retries=2)

    def test_legacy_positional_none_means_all_cores(self):
        # run_sweep(grid, None) historically meant "all cores".
        with pytest.warns(DeprecationWarning):
            coerced = coerce_execution_options("f", None, (), {})
        assert coerced.n_workers is None

    def test_mixing_raises(self):
        with pytest.raises(TypeError, match="both"):
            coerce_execution_options(
                "f", ExecutionOptions(), (), {"n_workers": 2}
            )

    def test_unknown_kwarg_raises(self):
        from repro.core.options import UNSET

        with pytest.raises(TypeError, match="bogus"):
            coerce_execution_options("f", UNSET, (), {"bogus": 1})

    def test_duplicate_positional_and_kwarg_raises(self):
        from repro.core.options import UNSET

        with pytest.raises(TypeError, match="multiple values"):
            coerce_execution_options("f", 2, (), {"n_workers": 2})

    @pytest.mark.parametrize("bad", ["4", 2.5, [4]])
    def test_non_int_positional_rejected_with_clear_error(self, bad):
        """A string "4" once sailed into the worker pool before failing
        obscurely; the shim must reject it at the boundary, by name."""
        from repro.core.options import UNSET

        with pytest.raises(TypeError, match="int worker count"):
            coerce_execution_options("run_sweep", bad, (), {})

    def test_typoed_legacy_kwarg_raises_naming_it(self):
        """``n_worker=2`` (a typo of n_workers) must not be swallowed."""
        from repro.core.options import UNSET

        with pytest.raises(TypeError, match="n_worker"):
            coerce_execution_options("f", UNSET, (), {"n_worker": 2})

    def test_run_sweep_rejects_string_worker_count(self):
        with pytest.raises(TypeError, match="int worker count"):
            run_sweep(small_grid(), "4")

    def test_run_sweep_rejects_typoed_kwarg(self):
        with pytest.raises(TypeError, match="n_worker"):
            run_sweep(small_grid(), n_worker=2)


class TestShimEquivalence:
    """The acceptance bar: old kwargs warn but change nothing."""

    def test_run_sweep_old_kwargs_identical(self):
        grid = small_grid()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # new style must not warn
            new = run_sweep(grid, ExecutionOptions(n_workers=1))
        with pytest.warns(DeprecationWarning):
            old = run_sweep(grid, n_workers=1)
        assert list(old) == list(new)
        for point in new:
            assert old[point] == new[point]

    def test_sweep_outcome_old_kwargs_identical(self):
        grid = small_grid()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = sweep_outcome(grid, ExecutionOptions(n_workers=2))
        with pytest.warns(DeprecationWarning):
            old = sweep_outcome(grid, n_workers=2)
        assert list(old.results) == list(new.results)
        assert old.results == new.results
        assert old.failures == new.failures

    def test_legacy_positional_form_warns_and_matches(self):
        grid = small_grid()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = run_sweep(grid, ExecutionOptions(n_workers=1))
        # run_sweep(grid, 1) was the old positional n_workers form.
        with pytest.warns(DeprecationWarning):
            old = run_sweep(grid, 1)
        assert old == new

    def test_run_configs_old_kwargs_identical(self):
        grid = small_grid()
        configs = [grid.config_for(point) for point in grid.points()]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            new = run_configs(configs, ExecutionOptions(n_workers=1))
        with pytest.warns(DeprecationWarning):
            old = run_configs(configs, n_workers=1)
        assert old == new

    def test_cli_path_does_not_warn(self):
        """repro.cli routes through ExecutionOptions -- no deprecations."""
        grid = small_grid()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            outcome = sweep_outcome(
                grid, ExecutionOptions(n_workers=1, retries=1, timeout_s=60.0)
            )
        assert not outcome.failures
