"""Cross-process determinism of sweep seeding and results.

The builtin ``hash()`` is randomized per interpreter process via
``PYTHONHASHSEED``; deriving sweep seeds from it made every run draw
different noise.  These tests spawn real subprocesses with *different*
hash seeds and assert that sweep seeds — and full experiment numbers —
are bit-identical anyway.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

SEED_SCRIPT = """
from repro.core.sweep import SweepGrid
from repro.iogen.spec import IoPattern

grid = SweepGrid(
    device="ssd3",
    patterns=(IoPattern.RANDREAD, IoPattern.RANDWRITE),
    block_sizes=(4096, 65536),
    iodepths=(1, 8),
    power_states=(None,),
    seed=7,
)
print([grid.config_for(p).seed for p in grid.points()])
"""

RESULT_SCRIPT = """
from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec

grid = SweepGrid(
    device="ssd3",
    patterns=(IoPattern.RANDREAD,),
    block_sizes=(16384,),
    iodepths=(4,),
    base_job=JobSpec(
        IoPattern.RANDREAD,
        block_size=4096,
        iodepth=1,
        runtime_s=0.01,
        size_limit_bytes=2 * 1024 * 1024,
    ),
    seed=3,
)
for point, result in run_sweep(grid).items():
    print(repr((result.config.seed, result.mean_power_w, result.throughput_bps, result.true_mean_power_w)))
"""


def _run_with_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


class TestCrossProcessSeedStability:
    def test_sweep_seeds_identical_across_hash_seeds(self):
        outputs = {
            _run_with_hashseed(SEED_SCRIPT, hs) for hs in ("0", "1", "random")
        }
        assert len(outputs) == 1, f"seeds differed across processes: {outputs}"

    def test_experiment_numbers_identical_across_hash_seeds(self):
        outputs = {_run_with_hashseed(RESULT_SCRIPT, hs) for hs in ("1", "2")}
        assert len(outputs) == 1, f"results differed across processes: {outputs}"
        assert "(" in outputs.pop()  # the script actually printed a result


class TestInProcessSeedStability:
    def test_point_salt_is_fixed_constant(self):
        """Pin the derivation: any change silently invalidates every cache
        and recorded sweep, so it must be deliberate."""
        from repro.core.sweep import SweepPoint, stable_point_salt
        from repro.iogen.spec import IoPattern

        point = SweepPoint(IoPattern.RANDWRITE, 262144, 64, 1)
        assert stable_point_salt(point) == stable_point_salt(point)
        # Distinct coordinates produce distinct salts.
        other = SweepPoint(IoPattern.RANDWRITE, 262144, 64, 2)
        assert stable_point_salt(point) != stable_point_salt(other)

    def test_config_seed_mixes_grid_seed(self):
        from repro.core.sweep import SweepGrid
        from repro.iogen.spec import IoPattern

        kwargs = dict(
            device="ssd3",
            patterns=(IoPattern.RANDREAD,),
            block_sizes=(4096,),
            iodepths=(1,),
        )
        point = next(iter(SweepGrid(**kwargs).points()))
        seed_a = SweepGrid(seed=1, **kwargs).config_for(point).seed
        seed_b = SweepGrid(seed=2, **kwargs).config_for(point).seed
        assert seed_a != seed_b
        assert 0 <= seed_a <= 0x7FFFFFFF
