"""Tests for the online power-adaptive controller."""

import pytest

from repro._units import GiB, KiB, MiB
from repro.core.controller import (
    BudgetSignal,
    ControllerConfig,
    OnlinePowerController,
    run_demand_response,
)
from repro.devices.base import IOKind, IORequest
from repro.devices.ssd import SimulatedSSD
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import tiny_ssd_config


class TestBudgetSignal:
    def test_constant(self):
        assert BudgetSignal.constant(10.0).watts_at(5.0) == 10.0

    def test_steps(self):
        signal = BudgetSignal(((0.0, 10.0), (1.0, 6.0)))
        assert signal.watts_at(0.5) == 10.0
        assert signal.watts_at(1.5) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetSignal(())
        with pytest.raises(ValueError):
            BudgetSignal(((0.5, 10.0),))
        with pytest.raises(ValueError):
            BudgetSignal(((0.0, 0.0),))


class TestControllerUnit:
    def _fleet(self, engine, n=2):
        devices = []
        for i in range(n):
            device = SimulatedSSD(engine, tiny_ssd_config(), rng=RngStreams(i))
            device.name = f"tiny-{i}"
            devices.append(device)
        return devices

    def _load(self, engine, devices, until):
        def writer(eng, device):
            offset = 0
            while eng.now < until:
                yield device.submit(IORequest(IOKind.WRITE, offset, 64 * KiB))
                offset = (offset + 64 * KiB) % (device.capacity_bytes // 2)

        for device in devices:
            for _ in range(8):
                engine.process(writer(engine, device))

    def test_sheds_to_deeper_states_under_tight_budget(self, engine):
        devices = self._fleet(engine)
        self._load(engine, devices, until=0.3)
        controller = OnlinePowerController(
            engine,
            devices,
            BudgetSignal.constant(6.0),  # far below the ~9 W the load wants
            ControllerConfig(interval_s=5e-3, guard_band_w=0.3, relax_band_w=1.0),
        )
        controller.start()
        engine.run(until=0.3)
        controller.stop()
        engine.run(until=0.32)
        assert any("ps2" in a.action for a in controller.actions)
        # Settled fleet power respects the budget.
        fleet = sum(d.rail.trace.mean(0.2, 0.3) for d in devices)
        assert fleet <= 6.0 + 0.5

    def test_relaxes_when_budget_ample(self, engine):
        devices = self._fleet(engine)
        # Start both devices capped, give an ample budget, no load.
        for device in devices:
            proc = engine.process(device.set_power_state(2))
            while proc.is_alive:
                engine.step()
        controller = OnlinePowerController(
            engine,
            devices,
            BudgetSignal.constant(50.0),
            ControllerConfig(interval_s=5e-3),
        )
        # Controller state must reflect the externally-set level.
        controller._levels = {d.name: 2 for d in devices}
        controller.start()
        engine.run(until=0.1)
        controller.stop()
        engine.run(until=0.12)
        assert all(d.current_power_state.index == 0 for d in devices)

    def test_standby_used_only_when_allowed(self, engine):
        devices = self._fleet(engine)
        controller = OnlinePowerController(
            engine,
            devices,
            BudgetSignal.constant(3.2),  # below even both-at-ps2 idle
            ControllerConfig(interval_s=5e-3, allow_standby=False),
        )
        controller.start()
        engine.run(until=0.2)
        controller.stop()
        engine.run(until=0.22)
        assert not any(a.action == "standby" for a in controller.actions)

    def test_standby_ladder_engages(self, engine):
        devices = self._fleet(engine)
        controller = OnlinePowerController(
            engine,
            devices,
            BudgetSignal.constant(3.2),
            ControllerConfig(interval_s=5e-3, allow_standby=True),
        )
        controller.start()
        engine.run(until=0.2)
        controller.stop()
        engine.run(until=0.22)
        assert any(a.action == "standby" for a in controller.actions)
        # Never the whole fleet: at least one device stays active.
        assert len(controller._standby) < len(devices)

    def test_requires_power_states(self, engine):
        from repro.devices.catalog import build_device

        hddless = build_device(engine, "ssd3", rng=RngStreams(0))
        with pytest.raises(ValueError):
            OnlinePowerController(engine, [hddless], BudgetSignal.constant(5.0))

    def test_empty_fleet_rejected(self, engine):
        with pytest.raises(ValueError):
            OnlinePowerController(engine, [], BudgetSignal.constant(5.0))


@pytest.mark.integration
class TestDemandResponseScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_demand_response(
            n_devices=2,
            offered_load_bps=int(4.8 * GiB),
            duration_s=0.45,
            budget=BudgetSignal(((0.0, 30.0), (0.15, 20.5), (0.30, 30.0))),
        )

    def test_all_segments_compliant(self, result):
        assert result.fully_compliant, result.describe()

    def test_controller_throttled_during_dip(self, result):
        dip_actions = [
            a for a in result.actions if 0.15 <= a.time < 0.30 and "ps" in a.action
        ]
        assert any(a.action in ("ps1", "ps2") for a in dip_actions)

    def test_controller_recovered_after_dip(self, result):
        recovery = [a for a in result.actions if a.time >= 0.30]
        assert any(a.action == "ps0" for a in recovery)

    def test_qos_cost_visible(self, result):
        """Throttling under the dip queues or sheds offered load."""
        stats = result.workload.latency_stats()
        assert result.workload.shed > 0 or stats.p99 > 5 * stats.p50
