"""Tests for the checkpoint journal and sweep resume.

The capstone test interrupts a real sweep subprocess with SIGINT mid-run
and resumes it in-process, asserting that only the unfinished points are
recomputed -- the exact crash-recovery story ``repro sweep --resume`` sells.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro._units import KiB, MiB
from repro.core import parallel
from repro.core.checkpoint import CheckpointEntry, CheckpointJournal, PointState
from repro.core.parallel import run_configs
from repro.core.sweep import SweepGrid, run_sweep, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec
from tests.conftest import tiny_ssd_config

SRC = str(Path(__file__).resolve().parents[2] / "src")


def quick_job():
    return JobSpec(
        IoPattern.RANDREAD,
        block_size=16 * KiB,
        iodepth=4,
        runtime_s=0.01,
        size_limit_bytes=4 * MiB,
    )


def small_grid(**overrides):
    defaults = dict(
        device=tiny_ssd_config(),
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(16 * KiB, 64 * KiB),
        iodepths=(1, 8),
        power_states=(0,),
        base_job=quick_job(),
    )
    defaults.update(overrides)
    return SweepGrid(**defaults)


class TestJournal:
    def test_round_trip_last_entry_wins(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("a", PointState.IN_FLIGHT)
            journal.record("b", PointState.IN_FLIGHT)
            journal.record("a", PointState.DONE, attempt=1)
            journal.record("b", PointState.FAILED, attempt=1, detail="boom")
            journal.record("b", PointState.IN_FLIGHT, attempt=2)
        entries = CheckpointJournal.load(path)
        assert entries["a"].state is PointState.DONE
        assert not entries["a"].interrupted
        assert entries["b"].state is PointState.IN_FLIGHT
        assert entries["b"].attempt == 2
        assert entries["b"].interrupted

    def test_missing_journal_loads_empty(self, tmp_path):
        assert CheckpointJournal.load(tmp_path / "absent.jsonl") == {}

    def test_torn_and_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointJournal(path) as journal:
            journal.record("a", PointState.DONE)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"key": "b", "state": "no-such-state"}\n')
            fh.write('{"key": "c", "state": "do')  # torn tail, no newline
        entries = CheckpointJournal.load(path)
        assert set(entries) == {"a"}
        assert entries["a"].state is PointState.DONE

    def test_fresh_truncates_append_preserves(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal(path)
        journal.open(fresh=True)
        journal.record("a", PointState.DONE)
        journal.close()
        journal.open(fresh=False)
        journal.record("b", PointState.DONE)
        journal.close()
        assert set(CheckpointJournal.load(path)) == {"a", "b"}
        journal.open(fresh=True)
        journal.close()
        assert CheckpointJournal.load(path) == {}

    def test_record_requires_open(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "ck.jsonl")
        with pytest.raises(RuntimeError, match="not open"):
            journal.record("a", PointState.DONE)

    def test_summarize(self):
        entries = {
            "a": CheckpointEntry("a", PointState.DONE),
            "b": CheckpointEntry("b", PointState.DONE),
            "c": CheckpointEntry("c", PointState.IN_FLIGHT),
            "d": CheckpointEntry("d", PointState.EXHAUSTED),
        }
        assert CheckpointJournal.summarize(entries) == (
            "2 done, 1 in-flight, 1 exhausted"
        )
        assert CheckpointJournal.summarize({}) == "empty journal"


class TestJournaledExecution:
    def test_interrupt_leaves_in_flight_entry(self, tmp_path, monkeypatch):
        """A Ctrl-C mid-sweep must leave the running point IN_FLIGHT."""
        grid = small_grid()
        configs = [grid.config_for(p) for p in grid.points()]
        real = parallel.run_experiment
        seen = []

        def interrupt_second(config):
            seen.append(config)
            if len(seen) == 2:
                raise KeyboardInterrupt
            return real(config)

        monkeypatch.setattr(parallel, "run_experiment", interrupt_second)
        path = tmp_path / "ck.jsonl"
        journal = CheckpointJournal(path)
        journal.open(fresh=True)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_configs(configs, n_workers=1, journal=journal)
        finally:
            journal.close()
        entries = CheckpointJournal.load(path)
        states = [entry.state for entry in entries.values()]
        assert states.count(PointState.DONE) == 1
        assert states.count(PointState.IN_FLIGHT) == 1

    def test_resume_requires_cache_and_checkpoint(self, tmp_path):
        grid = small_grid()
        with pytest.raises(ValueError, match="resume requires cache_dir"):
            sweep_outcome(grid, resume=True, checkpoint=tmp_path / "ck.jsonl")
        with pytest.raises(ValueError, match="checkpoint journal"):
            sweep_outcome(grid, resume=True, cache_dir=tmp_path)

    def test_resume_skips_completed_points(self, tmp_path, monkeypatch):
        grid = small_grid()
        ck = tmp_path / "ck.jsonl"
        cache = tmp_path / "cache"
        # Simulate an interrupted sweep by completing only half the grid.
        partial = small_grid(block_sizes=(16 * KiB,))
        first = run_sweep(partial, cache_dir=cache, checkpoint=ck)
        assert len(first) == 2

        real = parallel.run_experiment
        executed = []

        def counting(config):
            executed.append(config)
            return real(config)

        monkeypatch.setattr(parallel, "run_experiment", counting)
        results = run_sweep(grid, cache_dir=cache, checkpoint=ck, resume=True)
        assert len(results) == 4
        # Only the two 64 KiB points were recomputed.
        assert len(executed) == 2
        assert all(c.job.block_size == 64 * KiB for c in executed)
        entries = CheckpointJournal.load(ck)
        done = [e for e in entries.values() if e.state is PointState.DONE]
        assert len(done) == 4
        assert sum(e.detail == "cached" for e in done) == 2


SIGINT_SCRIPT = """
import time
from repro.core import parallel

real = parallel.run_experiment

def slow(config):
    time.sleep(0.5)  # widen the window so SIGINT lands mid-sweep
    return real(config)

parallel.run_experiment = slow

from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec

grid = SweepGrid(
    device="ssd3",
    patterns=(IoPattern.RANDREAD,),
    block_sizes=(16384, 65536),
    iodepths=(1, 8),
    base_job=JobSpec(
        IoPattern.RANDREAD,
        block_size=4096,
        iodepth=1,
        runtime_s=0.01,
        size_limit_bytes=2 * 1024 * 1024,
    ),
    seed=5,
)
run_sweep(grid, n_workers=1, cache_dir={cache!r}, checkpoint={ck!r})
print("finished-uninterrupted", flush=True)
"""


class TestSigintResume:
    def _parent_grid(self):
        return SweepGrid(
            device="ssd3",
            patterns=(IoPattern.RANDREAD,),
            block_sizes=(16384, 65536),
            iodepths=(1, 8),
            base_job=JobSpec(
                IoPattern.RANDREAD,
                block_size=4096,
                iodepth=1,
                runtime_s=0.01,
                size_limit_bytes=2 * MiB,
            ),
            seed=5,
        )

    def test_interrupted_sweep_resumes_without_recomputing(
        self, tmp_path, monkeypatch
    ):
        cache = str(tmp_path / "cache")
        ck = str(tmp_path / "ck.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", SIGINT_SCRIPT.format(cache=cache, ck=ck)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            # Wait for at least one completed point, then interrupt.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                entries = CheckpointJournal.load(ck)
                if any(
                    e.state is PointState.DONE for e in entries.values()
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep subprocess never completed a point")
            proc.send_signal(signal.SIGINT)
            stdout, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert "finished-uninterrupted" not in stdout

        entries = CheckpointJournal.load(ck)
        done_before = sum(
            e.state is PointState.DONE for e in entries.values()
        )
        assert 1 <= done_before < 4, CheckpointJournal.summarize(entries)

        real = parallel.run_experiment
        executed = []

        def counting(config):
            executed.append(config)
            return real(config)

        monkeypatch.setattr(parallel, "run_experiment", counting)
        results = run_sweep(
            self._parent_grid(),
            n_workers=1,
            cache_dir=cache,
            checkpoint=ck,
            resume=True,
        )
        assert len(results) == 4
        # Resume recomputed exactly the points the interrupt lost.
        assert len(executed) == 4 - done_before
        final = CheckpointJournal.load(ck)
        assert sum(e.state is PointState.DONE for e in final.values()) == 4
