"""``repro report`` exit codes over mixed, damaged, and foreign ledgers.

One cache directory accumulates records from every orchestrator --
sweeps, policy studies, chaos campaigns, fleet runs -- interleaved in
whatever order the operator ran them, possibly with a torn tail from a
crashed writer and record kinds from a newer tool.  The existing tests
exercise single-kind ledgers; these pin the exit-code contract on the
mixtures: 0 for a healthy stream, 1 when the *latest* run record is
unhealthy (regardless of which kind wrote it), 2 when nothing is
readable at all.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _point(i, device="ssd2", status="done", **extra):
    record = {
        "rec": "point", "key": f"k{i}", "label": f"pt{i}", "device": device,
        "power_state": None, "status": status, "attempts": 1,
        "wall_s": 0.1, "events_per_s": 1000.0, "sim_events": 100,
    }
    if status == "done":
        record["result"] = {
            "mean_power_w": 10.0, "throughput_mib_s": 100.0, "p99_us": 300.0,
        }
    record.update(extra)
    return record


def _run(kind, failures=0, ok=True, **extra):
    return {
        "rec": "run", "kind": kind, "failures": failures, "points": 1,
        "validation": {
            "ok": ok,
            "checked": 3,
            "violations": {} if ok else {"fleet_budget": 2},
        },
        **extra,
    }


def _fleet_epoch(epoch):
    return {
        "rec": "fleet", "epoch": epoch, "devices": 4, "budget_w": 40.0,
        "allocated_w": 38.0, "deficit_w": 0.0, "measured_w": 35.0,
        "baseline_w": 50.0, "p99_us": 900.0, "baseline_p99_us": 700.0,
        "intensity": 0.8,
    }


def _mixed_clean():
    """Every orchestrator's records interleaved, all healthy."""
    return [
        _point(0),
        _run("sweep"),
        _point(1, result={
            "mean_power_w": 10.0, "throughput_mib_s": 100.0, "p99_us": 300.0,
            "policy": {"kind": "feedback", "decisions": 4,
                       "set_point_changes": 1, "mean_abs_error_w": 0.2,
                       "max_overshoot_w": 0.5},
        }),
        _run("policy"),
        _run("chaos", chaos={"cells": 6, "watchdog": True, "violations": 0,
                             "controllers": {}}),
        _fleet_epoch(0),
        _fleet_epoch(1),
        _run("fleet", fleet={"harvest_w": 5.0, "dynamic_range": 1.4,
                             "p99_blowup": 1.2, "digest": "abc123"}),
    ]


def _write(tmp_path, records, tail=""):
    path = tmp_path / "ledger.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps({"v": 1, **record}) + "\n")
        if tail:
            fh.write(tail)
    return path


class TestMixedLedgerExitCodes:
    def test_healthy_mixed_stream_exits_0(self, tmp_path, capsys):
        path = _write(tmp_path, _mixed_clean())
        assert main(["report", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        # Every orchestrator's section made it into one report.
        assert "Policy tracking" in out
        assert "Chaos resilience" in out
        assert "Fleet" in out

    def test_latest_unhealthy_run_exits_1_whatever_its_kind(
        self, tmp_path, capsys
    ):
        records = _mixed_clean() + [_run("fleet", ok=False)]
        path = _write(tmp_path, records)
        assert main(["report", "--ledger", str(path)]) == 1
        assert "fleet_budget" in capsys.readouterr().out

    def test_stale_failure_is_superseded_by_a_clean_rerun(
        self, tmp_path, capsys
    ):
        """A failed chaos campaign earlier in the stream must not taint
        a later clean fleet run: only the latest run record judges."""
        records = [
            _point(0),
            _run("chaos", failures=2, ok=False),
            _point(1),
            _run("fleet"),
        ]
        path = _write(tmp_path, records)
        assert main(["report", "--ledger", str(path)]) == 0
        capsys.readouterr()

    def test_torn_tail_does_not_change_the_verdict(self, tmp_path, capsys):
        """A crashed writer leaves a partial last line; the report reads
        everything before it and judges normally."""
        path = _write(
            tmp_path,
            _mixed_clean(),
            tail='{"rec": "run", "kind": "sweep", "fail',
        )
        assert main(["report", "--ledger", str(path)]) == 0
        capsys.readouterr()

    def test_torn_tail_cannot_hide_a_failure(self, tmp_path, capsys):
        records = _mixed_clean() + [_run("policy", failures=3, ok=False)]
        path = _write(tmp_path, records, tail='{"rec": "ru')
        assert main(["report", "--ledger", str(path)]) == 1
        capsys.readouterr()

    def test_unknown_kinds_are_counted_not_fatal(self, tmp_path, capsys):
        records = (
            _mixed_clean()
            + [{"rec": "quantum", "payload": 1}, {"rec": "teleport"}]
        )
        path = _write(tmp_path, records)
        assert main(["report", "--ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "skipped 2 unrecognized record(s)" in out

    def test_unknown_kinds_survive_json_mode(self, tmp_path, capsys):
        records = _mixed_clean() + [{"rec": "quantum"}]
        path = _write(tmp_path, records)
        assert main(["report", "--ledger", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["overview"]["skipped_records"] == 1

    @pytest.mark.parametrize(
        "content",
        ["", '{"rec": "po', "not json at all\n[1,2]\n"],
        ids=["empty", "only-torn", "only-garbage"],
    )
    def test_unreadable_ledger_exits_2(self, tmp_path, capsys, content):
        path = tmp_path / "ledger.jsonl"
        path.write_text(content)
        assert main(["report", "--ledger", str(path)]) == 2
        assert "no records" in capsys.readouterr().out
