"""Tests for the power-throughput model and Pareto frontiers.

The shared five-point model lives in ``tests/core/conftest.py`` as the
session-scoped ``pareto_points`` fixture; the local ``mk`` helper stays
for hypothesis-generated and ad hoc points.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.pareto import dominates, pareto_frontier
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern


def mk(power, tput, latency=1e-3, bs=4096, qd=1, ps=None):
    return ModelPoint(
        SweepPoint(IoPattern.RANDWRITE, bs, qd, ps),
        power_w=power,
        throughput_bps=tput,
        latency_p99_s=latency,
    )


class TestModelBasics:
    def test_maxima(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        assert model.max_power_w == 14.0
        assert model.min_power_w == 5.0
        assert model.max_throughput_bps == 1000e6

    def test_dynamic_range(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        assert model.dynamic_range_fraction == pytest.approx((14 - 5) / 14)

    def test_min_normalized_throughput(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        assert model.min_normalized_throughput == pytest.approx(0.1)

    def test_normalized_points_in_unit_box(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        for norm_tput, norm_power, __ in model.normalized():
            assert 0 < norm_tput <= 1.0
            assert 0 < norm_power <= 1.0

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            PowerThroughputModel("dev", [])


class TestModelQueries:
    def test_best_under_budget(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        best = model.best_under_power_budget(10.0)
        assert best.power_w == 10.0
        assert best.throughput_bps == 900e6

    def test_budget_below_floor_returns_none(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        assert model.best_under_power_budget(4.0) is None

    def test_latency_slo_filters(self):
        points = [mk(5.0, 100e6, latency=1e-3), mk(6.0, 900e6, latency=50e-3)]
        model = PowerThroughputModel("dev", points)
        best = model.best_under_power_budget(10.0, max_latency_p99_s=5e-3)
        assert best.throughput_bps == 100e6

    def test_cheapest_at_throughput(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        cheapest = model.cheapest_at_throughput(450e6)
        assert cheapest.power_w == 8.0

    def test_cheapest_infeasible_returns_none(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        assert model.cheapest_at_throughput(2000e6) is None

    def test_worked_example_math(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        best, curtailed = model.throughput_cost_of_power_cut(0.2)
        # Budget 11.2 W -> the 10 W / 900 MB point; curtail 10%.
        assert best.power_w == 10.0
        assert curtailed == pytest.approx(0.1)

    def test_impossible_cut_raises(self, pareto_points):
        model = PowerThroughputModel("dev", pareto_points)
        with pytest.raises(ValueError):
            model.throughput_cost_of_power_cut(0.99)


class TestPareto:
    def test_dominates(self):
        assert dominates(mk(5, 100), mk(6, 90))
        assert not dominates(mk(6, 90), mk(5, 100))
        assert not dominates(mk(5, 100), mk(5, 100))

    def test_frontier_drops_dominated(self, pareto_points):
        frontier = pareto_frontier(pareto_points)
        powers = [p.power_w for p in frontier]
        assert 12.0 not in powers
        assert powers == sorted(powers)

    def test_frontier_of_empty(self):
        assert pareto_frontier([]) == []

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=1.0, max_value=1e9),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_frontier_properties(self, raw):
        """Properties: frontier members are mutually non-dominating, and
        every dropped point is dominated by some frontier member."""
        points = [mk(p, t) for p, t in raw]
        frontier = pareto_frontier(points)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not dominates(a, b)
        for point in points:
            if point not in frontier:
                assert any(dominates(f, point) for f in frontier)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=1.0, max_value=1e9),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.1, max_value=120.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_best_under_budget_is_optimal(self, raw, budget):
        """Property: no feasible point beats the query answer."""
        model = PowerThroughputModel("dev", [mk(p, t) for p, t in raw])
        best = model.best_under_power_budget(budget)
        feasible = [p for p in model.points if p.power_w <= budget]
        if best is None:
            assert not feasible
        else:
            assert best.power_w <= budget
            assert all(p.throughput_bps <= best.throughput_bps for p in feasible)
