"""Tests for the power-latency model.

The shared four-point latency model is the session-scoped
``latency_points`` fixture in ``tests/core/conftest.py``.
"""

import pytest

from repro.core.latency_model import PowerLatencyModel
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern


class TestPowerLatencyModel:
    def test_meeting_slo_filters_tail(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        feasible = model.meeting_slo(max_p99_s=3e-3)
        assert {p.power_w for p in feasible} == {8.0, 12.0}

    def test_meeting_slo_with_throughput_floor(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        feasible = model.meeting_slo(max_p99_s=3e-3, min_throughput_bps=600e6)
        assert {p.power_w for p in feasible} == {12.0}

    def test_cheapest_meeting_slo(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        best = model.cheapest_meeting_slo(max_p99_s=3e-3)
        assert best.power_w == 8.0

    def test_unmeetable_slo_returns_none(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        assert model.cheapest_meeting_slo(max_p99_s=1e-6) is None

    def test_latency_cost_of_budget(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        best = model.latency_cost_of_power_budget(9.0)
        assert best.power_w == 8.0
        assert best.p99_latency_s == pytest.approx(2e-3)

    def test_tail_inflation_of_power_cut(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        # Full power: best p99 0.8 ms; 40% cut -> budget 7.2 -> p99 10 ms.
        inflation = model.tail_inflation_of_power_cut(0.4)
        assert inflation == pytest.approx(10e-3 / 0.8e-3)

    def test_no_inflation_without_cut(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        assert model.tail_inflation_of_power_cut(0.0) == pytest.approx(1.0)

    def test_pareto_frontier(self, latency_points):
        model = PowerLatencyModel("dev", latency_points)
        frontier = model.pareto_frontier()
        powers = [p.power_w for p in frontier]
        assert powers == [5.0, 8.0, 12.0]  # the 10 W point is dominated
        tails = [p.p99_latency_s for p in frontier]
        assert tails == sorted(tails, reverse=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerLatencyModel("dev", [])

    def test_from_sweep_integration(self):
        """Build a latency model from real (tiny) experiments."""
        from repro._units import KiB, MiB
        from repro.core.experiment import ExperimentConfig, run_experiment
        from repro.iogen.spec import JobSpec
        from tests.conftest import tiny_ssd_config

        results = {}
        for ps in (0, 2):
            point = SweepPoint(IoPattern.RANDWRITE, 64 * KiB, 1, ps)
            results[point] = run_experiment(
                ExperimentConfig(
                    device=tiny_ssd_config(),
                    job=JobSpec(
                        IoPattern.RANDWRITE,
                        64 * KiB,
                        1,
                        runtime_s=0.05,
                        size_limit_bytes=8 * MiB,
                    ),
                    power_state=ps,
                )
            )
        model = PowerLatencyModel.from_sweep("tiny", results)
        assert len(model.points) == 2
        capped = min(model.points, key=lambda p: p.power_w)
        uncapped = max(model.points, key=lambda p: p.power_w)
        assert capped.p99_latency_s >= uncapped.p99_latency_s
