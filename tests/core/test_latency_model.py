"""Tests for the power-latency model."""

import pytest

from repro.core.latency_model import LatencyPoint, PowerLatencyModel
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern


def mk(power, mean_lat, p99, tput=100e6):
    return LatencyPoint(
        SweepPoint(IoPattern.RANDWRITE, 4096, 1, None),
        power_w=power,
        mean_latency_s=mean_lat,
        p99_latency_s=p99,
        throughput_bps=tput,
    )


POINTS = [
    mk(5.0, 2e-3, 10e-3, tput=50e6),
    mk(8.0, 0.5e-3, 2e-3, tput=500e6),
    mk(12.0, 0.2e-3, 0.8e-3, tput=900e6),
    mk(10.0, 1.5e-3, 9e-3, tput=300e6),  # dominated (worse tail, more power)
]


class TestPowerLatencyModel:
    def test_meeting_slo_filters_tail(self):
        model = PowerLatencyModel("dev", POINTS)
        feasible = model.meeting_slo(max_p99_s=3e-3)
        assert {p.power_w for p in feasible} == {8.0, 12.0}

    def test_meeting_slo_with_throughput_floor(self):
        model = PowerLatencyModel("dev", POINTS)
        feasible = model.meeting_slo(max_p99_s=3e-3, min_throughput_bps=600e6)
        assert {p.power_w for p in feasible} == {12.0}

    def test_cheapest_meeting_slo(self):
        model = PowerLatencyModel("dev", POINTS)
        best = model.cheapest_meeting_slo(max_p99_s=3e-3)
        assert best.power_w == 8.0

    def test_unmeetable_slo_returns_none(self):
        model = PowerLatencyModel("dev", POINTS)
        assert model.cheapest_meeting_slo(max_p99_s=1e-6) is None

    def test_latency_cost_of_budget(self):
        model = PowerLatencyModel("dev", POINTS)
        best = model.latency_cost_of_power_budget(9.0)
        assert best.power_w == 8.0
        assert best.p99_latency_s == pytest.approx(2e-3)

    def test_tail_inflation_of_power_cut(self):
        model = PowerLatencyModel("dev", POINTS)
        # Full power: best p99 0.8 ms; 40% cut -> budget 7.2 -> p99 10 ms.
        inflation = model.tail_inflation_of_power_cut(0.4)
        assert inflation == pytest.approx(10e-3 / 0.8e-3)

    def test_no_inflation_without_cut(self):
        model = PowerLatencyModel("dev", POINTS)
        assert model.tail_inflation_of_power_cut(0.0) == pytest.approx(1.0)

    def test_pareto_frontier(self):
        model = PowerLatencyModel("dev", POINTS)
        frontier = model.pareto_frontier()
        powers = [p.power_w for p in frontier]
        assert powers == [5.0, 8.0, 12.0]  # the 10 W point is dominated
        tails = [p.p99_latency_s for p in frontier]
        assert tails == sorted(tails, reverse=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerLatencyModel("dev", [])

    def test_from_sweep_integration(self):
        """Build a latency model from real (tiny) experiments."""
        from repro._units import KiB, MiB
        from repro.core.experiment import ExperimentConfig, run_experiment
        from repro.iogen.spec import JobSpec
        from tests.conftest import tiny_ssd_config

        results = {}
        for ps in (0, 2):
            point = SweepPoint(IoPattern.RANDWRITE, 64 * KiB, 1, ps)
            results[point] = run_experiment(
                ExperimentConfig(
                    device=tiny_ssd_config(),
                    job=JobSpec(
                        IoPattern.RANDWRITE,
                        64 * KiB,
                        1,
                        runtime_s=0.05,
                        size_limit_bytes=8 * MiB,
                    ),
                    power_state=ps,
                )
            )
        model = PowerLatencyModel.from_sweep("tiny", results)
        assert len(model.points) == 2
        capped = min(model.points, key=lambda p: p.power_w)
        uncapped = max(model.points, key=lambda p: p.power_w)
        assert capped.p99_latency_s >= uncapped.p99_latency_s
