"""Shared fixtures for the core-model suites.

The analytic-model tests (policies, pareto, latency, fleet) all need
small hand-built power/throughput models.  Those used to live as
module-level constants in each file; they are immutable and identical
for every test, so they belong here as session-scoped fixtures: built
once, shared everywhere, and impossible to shadow or mutate by accident
from a test module.

Local ``mk(...)`` helpers stay in the files that generate *ad hoc*
points (hypothesis strategies, SLO edge cases); only the shared
constants moved.
"""

import pytest

from repro.core.latency_model import LatencyPoint
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.redirection import StandbyProfile
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern


def _model_point(power, tput, latency=1e-3, bs=4096, qd=1, ps=None):
    return ModelPoint(
        SweepPoint(IoPattern.RANDWRITE, bs, qd, ps),
        power_w=power,
        throughput_bps=tput,
        latency_p99_s=latency,
    )


def _latency_point(power, mean_lat, p99, tput=100e6):
    return LatencyPoint(
        SweepPoint(IoPattern.RANDWRITE, 4096, 1, None),
        power_w=power,
        mean_latency_s=mean_lat,
        p99_latency_s=p99,
        throughput_bps=tput,
    )


@pytest.fixture(scope="session")
def write_model():
    """A write-path model: throughput saturates hard above 10 W."""
    return PowerThroughputModel(
        "w",
        [
            _model_point(5.0, 100e6),
            _model_point(10.0, 800e6),
            _model_point(15.0, 1000e6),
        ],
    )


@pytest.fixture(scope="session")
def read_model():
    """A read-path model: cheaper and much faster than the write path."""
    return PowerThroughputModel(
        "r",
        [
            _model_point(5.0, 200e6),
            _model_point(7.0, 2000e6),
            _model_point(9.0, 3000e6),
        ],
    )


@pytest.fixture(scope="session")
def ssd_standby():
    """SSD-like standby: milliseconds to wake."""
    return StandbyProfile(
        standby_power_w=0.8, wake_latency_s=5e-3, idle_power_w=5.0
    )


@pytest.fixture(scope="session")
def hdd_standby():
    """HDD-like standby: a spin-up takes seconds."""
    return StandbyProfile(
        standby_power_w=1.1, wake_latency_s=8.0, idle_power_w=3.76
    )


@pytest.fixture(scope="session")
def pareto_points():
    """Five points, one (12 W / 400 MB) dominated by the 10 W point."""
    return [
        _model_point(5.0, 100e6),
        _model_point(8.0, 500e6),
        _model_point(10.0, 900e6),
        _model_point(14.0, 1000e6),
        _model_point(12.0, 400e6),  # dominated
    ]


@pytest.fixture(scope="session")
def latency_points():
    """Four latency points, one (10 W) with a worse tail at more power."""
    return [
        _latency_point(5.0, 2e-3, 10e-3, tput=50e6),
        _latency_point(8.0, 0.5e-3, 2e-3, tput=500e6),
        _latency_point(12.0, 0.2e-3, 0.8e-3, tput=900e6),
        _latency_point(10.0, 1.5e-3, 9e-3, tput=300e6),  # dominated
    ]


@pytest.fixture(scope="session")
def adaptive_model():
    """The planner/fleet model: four states, 5-12 W, 100-1000 MB/s."""
    return PowerThroughputModel(
        "dev",
        [
            _model_point(5.0, 100e6),
            _model_point(8.0, 600e6),
            _model_point(10.0, 900e6),
            _model_point(12.0, 1000e6),
        ],
    )
