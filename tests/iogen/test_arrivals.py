"""Tests for open-loop workload generation."""

import numpy as np
import pytest

from repro._units import KiB, MiB
from repro.iogen.arrivals import ArrivalProcess, LoadProfile, OpenLoopJob
from repro.iogen.spec import IoPattern


class TestLoadProfile:
    def test_constant(self):
        profile = LoadProfile.constant(100.0)
        assert profile.rate_at(0.0) == 100.0
        assert profile.rate_at(99.0) == 100.0

    def test_steps(self):
        profile = LoadProfile(((0.0, 10.0), (1.0, 20.0), (2.0, 5.0)))
        assert profile.rate_at(0.5) == 10.0
        assert profile.rate_at(1.0) == 20.0
        assert profile.rate_at(5.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(())
        with pytest.raises(ValueError):
            LoadProfile(((1.0, 10.0),))  # must start at 0
        with pytest.raises(ValueError):
            LoadProfile(((0.0, 10.0), (2.0, 1.0), (1.0, 1.0)))
        with pytest.raises(ValueError):
            LoadProfile(((0.0, -1.0),))

    def test_diurnal_shape(self):
        profile = LoadProfile.diurnal(
            peak_bps=100.0, trough_fraction=0.2, day_length_s=1.0, segments=12
        )
        rates = [rate for __, rate in profile.steps]
        # Bottoms out near the trough, peaks near the peak.
        assert min(rates) == pytest.approx(100.0 * 0.2, rel=0.15)
        assert max(rates) == pytest.approx(100.0, rel=0.15)
        # Night -> day -> night: rises then falls.
        peak_index = rates.index(max(rates))
        assert 0 < peak_index < len(rates) - 1

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            LoadProfile.diurnal(100.0, trough_fraction=0.0)
        with pytest.raises(ValueError):
            LoadProfile.diurnal(100.0, segments=1)


class TestArrivalProcess:
    def test_deterministic_gaps(self):
        arrivals = ArrivalProcess(
            LoadProfile.constant(1000.0), request_bytes=100, poisson=False
        )
        assert arrivals.next_gap(0.0) == pytest.approx(0.1)

    def test_poisson_mean_matches_rate(self):
        arrivals = ArrivalProcess(
            LoadProfile.constant(1000.0),
            request_bytes=100,
            poisson=True,
            rng=np.random.default_rng(0),
        )
        gaps = [arrivals.next_gap(0.0) for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.05)

    def test_zero_rate_returns_inf(self):
        arrivals = ArrivalProcess(
            LoadProfile(((0.0, 0.0), (1.0, 100.0))), request_bytes=10
        )
        assert arrivals.next_gap(0.5) == float("inf")
        assert arrivals.next_gap(1.5) < float("inf")

    def test_invalid_request_size(self):
        with pytest.raises(ValueError):
            ArrivalProcess(LoadProfile.constant(1.0), request_bytes=0)


class TestOpenLoopJob:
    def _run(self, engine, device, rate_bps, duration=0.05, max_outstanding=64):
        arrivals = ArrivalProcess(
            LoadProfile.constant(rate_bps),
            request_bytes=16 * KiB,
            poisson=False,
        )
        job = OpenLoopJob(
            engine,
            device,
            arrivals,
            pattern=IoPattern.RANDWRITE,
            duration_s=duration,
            max_outstanding=max_outstanding,
            rng=np.random.default_rng(0),
        )
        proc = job.start()
        while proc.is_alive:
            engine.step()
        engine.run(until=engine.now + 0.01)  # drain
        return job.result()

    def test_offered_matches_rate(self, engine, tiny_ssd):
        result = self._run(engine, tiny_ssd, rate_bps=32 * MiB, duration=0.05)
        expected = 32 * MiB * 0.05 / (16 * KiB)
        assert result.offered == pytest.approx(expected, rel=0.05)

    def test_light_load_sheds_nothing(self, engine, tiny_ssd):
        result = self._run(engine, tiny_ssd, rate_bps=16 * MiB)
        assert result.shed == 0
        assert result.completion_fraction > 0.95

    def test_overload_sheds_requests(self, engine, tiny_ssd):
        # Far beyond the tiny device's capability with a small client pool.
        result = self._run(
            engine, tiny_ssd, rate_bps=3000 * MiB, max_outstanding=8
        )
        assert result.shed > 0
        assert result.submitted + result.shed == result.offered

    def test_latency_includes_queueing(self, engine, tiny_ssd):
        light = self._run(engine, tiny_ssd, rate_bps=16 * MiB)
        from repro.sim.engine import Engine
        from repro.devices.ssd import SimulatedSSD
        from repro.sim.rng import RngStreams
        from tests.conftest import tiny_ssd_config

        heavy_engine = Engine()
        heavy_device = SimulatedSSD(
            heavy_engine, tiny_ssd_config(), rng=RngStreams(2)
        )
        heavy = self._run(heavy_engine, heavy_device, rate_bps=900 * MiB)
        assert heavy.latency_stats().p99 > light.latency_stats().p99

    def test_validation(self, engine, tiny_ssd):
        arrivals = ArrivalProcess(LoadProfile.constant(1.0), request_bytes=4096)
        with pytest.raises(ValueError):
            OpenLoopJob(engine, tiny_ssd, arrivals, duration_s=0.0)
        with pytest.raises(ValueError):
            OpenLoopJob(engine, tiny_ssd, arrivals, max_outstanding=0)
