"""Tests for job specs and offset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import GiB, KiB
from repro.iogen.patterns import RandomOffsets, SequentialOffsets
from repro.iogen.spec import IoPattern, JobSpec, PAPER_CHUNK_SIZES, PAPER_QUEUE_DEPTHS


class TestIoPattern:
    def test_read_flags(self):
        assert IoPattern.RANDREAD.is_read
        assert IoPattern.READ.is_read
        assert not IoPattern.RANDWRITE.is_read

    def test_random_flags(self):
        assert IoPattern.RANDREAD.is_random
        assert not IoPattern.READ.is_random


class TestJobSpec:
    def test_paper_grid_constants(self):
        assert PAPER_CHUNK_SIZES[0] == 4 * KiB
        assert PAPER_CHUNK_SIZES[-1] == 2048 * KiB
        assert len(PAPER_CHUNK_SIZES) == 6
        assert PAPER_QUEUE_DEPTHS == (1, 4, 8, 16, 64, 128)

    def test_paper_default_stop_rule(self):
        spec = JobSpec(IoPattern.RANDREAD, 4096, 1)
        assert spec.runtime_s == 60.0
        assert spec.size_limit_bytes == 4 * GiB

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(IoPattern.READ, 0, 1)
        with pytest.raises(ValueError):
            JobSpec(IoPattern.READ, 4096, 0)
        with pytest.raises(ValueError):
            JobSpec(IoPattern.READ, 4096, 1, runtime_s=0.0)

    def test_scaled_stop_rules(self):
        spec = JobSpec(IoPattern.READ, 4096, 1)
        scaled = spec.scaled(time_scale=0.001, size_scale=0.01)
        assert scaled.runtime_s == pytest.approx(0.06)
        assert scaled.size_limit_bytes == int(4 * GiB * 0.01)
        assert scaled.block_size == spec.block_size

    def test_describe(self):
        spec = JobSpec(IoPattern.RANDWRITE, 256 * KiB, 64)
        assert spec.describe() == "randwrite bs=256k iodepth=64"


class TestSequentialOffsets:
    def test_advances_and_wraps(self):
        gen = SequentialOffsets(0, 3 * 4096, 4096)
        offsets = [gen.next_offset() for _ in range(5)]
        assert offsets == [0, 4096, 8192, 0, 4096]

    def test_region_offset_applied(self):
        gen = SequentialOffsets(1_000_000, 2 * 4096, 4096)
        assert gen.next_offset() == 1_000_000

    def test_region_too_small_rejected(self):
        with pytest.raises(ValueError):
            SequentialOffsets(0, 1000, 4096)


class TestRandomOffsets:
    def test_deterministic_from_seed(self):
        a = RandomOffsets(0, 1 << 20, 4096, np.random.default_rng(5))
        b = RandomOffsets(0, 1 << 20, 4096, np.random.default_rng(5))
        assert [a.next_offset() for _ in range(100)] == [
            b.next_offset() for _ in range(100)
        ]

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_offsets_aligned_and_in_region(self, seed):
        region_offset, region, block = 8192, 1 << 20, 4096
        gen = RandomOffsets(region_offset, region, block, np.random.default_rng(seed))
        for _ in range(50):
            offset = gen.next_offset()
            assert region_offset <= offset < region_offset + region
            assert (offset - region_offset) % block == 0

    def test_covers_the_region(self):
        gen = RandomOffsets(0, 16 * 4096, 4096, np.random.default_rng(0))
        seen = {gen.next_offset() for _ in range(2000)}
        assert len(seen) == 16
