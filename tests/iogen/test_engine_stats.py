"""Tests for the fio-like submission engine and its statistics."""

import pytest

from repro._units import KiB, MiB
from repro.iogen.engine import FioJob
from repro.iogen.spec import IoPattern, JobSpec
from repro.iogen.stats import IoRecord, JobResult, LatencyStats
from repro.sim.rng import RngStreams
from tests.conftest import drive


def run_job(engine, device, spec, rngs=None):
    rngs = rngs or RngStreams(0)
    job = FioJob(engine, device, spec, rng=rngs.get("io"))
    master = job.start()
    while master.is_alive:
        engine.step()
    return job


class TestFioJob:
    def test_size_limit_stops_job(self, engine, tiny_ssd):
        spec = JobSpec(
            IoPattern.RANDREAD,
            block_size=16 * KiB,
            iodepth=4,
            runtime_s=100.0,
            size_limit_bytes=512 * KiB,
        )
        job = run_job(engine, tiny_ssd, spec)
        result = job.result()
        assert sum(r.nbytes for r in result.records) == 512 * KiB

    def test_runtime_limit_stops_job(self, engine, tiny_ssd):
        spec = JobSpec(
            IoPattern.RANDREAD,
            block_size=16 * KiB,
            iodepth=2,
            runtime_s=0.005,
            size_limit_bytes=1 << 30,
        )
        job = run_job(engine, tiny_ssd, spec)
        result = job.result()
        assert result.duration == pytest.approx(0.005, rel=0.3)

    def test_queue_depth_maintained(self, engine, tiny_ssd):
        """Throughput scales with depth for reads (no buffering)."""
        def tput(iodepth):
            from repro.sim.engine import Engine
            from repro.devices.ssd import SimulatedSSD
            from tests.conftest import tiny_ssd_config

            eng = Engine()
            dev = SimulatedSSD(eng, tiny_ssd_config(), rng=RngStreams(1))
            spec = JobSpec(
                IoPattern.RANDREAD,
                block_size=16 * KiB,
                iodepth=iodepth,
                runtime_s=0.02,
                size_limit_bytes=1 << 30,
                host_overhead_s=0.0,
            )
            job = run_job(eng, dev, spec)
            return job.result().throughput_bps

        assert tput(4) > 2.0 * tput(1)

    def test_deterministic_given_seed(self, engine, tiny_ssd):
        def checksum(seed):
            from repro.sim.engine import Engine
            from repro.devices.ssd import SimulatedSSD
            from tests.conftest import tiny_ssd_config

            eng = Engine()
            dev = SimulatedSSD(eng, tiny_ssd_config(), rng=RngStreams(seed))
            # Random reads: per-IO timing depends on which die each offset
            # hashes to, so different offset streams give different timings.
            spec = JobSpec(
                IoPattern.RANDREAD,
                block_size=16 * KiB,
                iodepth=4,
                runtime_s=0.01,
                size_limit_bytes=2 * MiB,
            )
            job = run_job(eng, dev, spec, RngStreams(seed))
            return tuple(r.complete_time for r in job.records)

        assert checksum(3) == checksum(3)
        assert checksum(3) != checksum(4)

    def test_cannot_start_twice(self, engine, tiny_ssd):
        spec = JobSpec(
            IoPattern.RANDREAD, 16 * KiB, 1, runtime_s=0.001, size_limit_bytes=1 << 20
        )
        job = FioJob(engine, tiny_ssd, spec, rng=RngStreams(0).get("io"))
        job.start()
        with pytest.raises(RuntimeError):
            job.start()

    def test_result_before_finish_rejected(self, engine, tiny_ssd):
        spec = JobSpec(IoPattern.RANDREAD, 16 * KiB, 1)
        job = FioJob(engine, tiny_ssd, spec, rng=RngStreams(0).get("io"))
        with pytest.raises(RuntimeError):
            job.result()

    def test_region_exceeding_device_rejected(self, engine, tiny_ssd):
        spec = JobSpec(
            IoPattern.RANDREAD,
            16 * KiB,
            1,
            region_bytes=tiny_ssd.capacity_bytes * 2,
        )
        with pytest.raises(ValueError):
            FioJob(engine, tiny_ssd, spec)

    def test_host_overhead_slows_qd1(self, engine):
        def duration(overhead):
            from repro.sim.engine import Engine
            from repro.devices.ssd import SimulatedSSD
            from tests.conftest import tiny_ssd_config

            eng = Engine()
            dev = SimulatedSSD(eng, tiny_ssd_config(), rng=RngStreams(1))
            spec = JobSpec(
                IoPattern.RANDREAD,
                block_size=16 * KiB,
                iodepth=1,
                runtime_s=10.0,
                size_limit_bytes=1 * MiB,
                host_overhead_s=overhead,
            )
            job = run_job(eng, dev, spec)
            return job.result().duration

        assert duration(100e-6) > duration(0.0)


class TestJobResult:
    def _result(self, records, start=0.0, end=1.0, measure_start=0.0):
        spec = JobSpec(IoPattern.RANDREAD, 4096, 1)
        return JobResult(
            spec=spec,
            start_time=start,
            end_time=end,
            records=tuple(records),
            measure_start=measure_start,
        )

    def test_throughput_over_window(self):
        records = [IoRecord(0.0, 0.5, 1000), IoRecord(0.5, 0.9, 1000)]
        result = self._result(records)
        assert result.throughput_bps == pytest.approx(2000.0)

    def test_warmup_excludes_early_completions(self):
        records = [IoRecord(0.0, 0.1, 1000), IoRecord(0.5, 0.9, 1000)]
        result = self._result(records, measure_start=0.5)
        assert result.bytes_completed == 1000
        assert result.throughput_bps == pytest.approx(2000.0)

    def test_latency_stats(self):
        records = [IoRecord(0.0, 0.001 * (i + 1), 100) for i in range(100)]
        stats = self._result(records).latency_stats()
        assert stats.count == 100
        assert stats.min == pytest.approx(0.001)
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max

    def test_empty_window_latency_rejected(self):
        result = self._result([IoRecord(0.0, 0.1, 100)], measure_start=0.9)
        with pytest.raises(ValueError):
            result.latency_stats()


class TestLatencyStats:
    def test_from_latencies(self):
        stats = LatencyStats.from_latencies([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_latencies([])
