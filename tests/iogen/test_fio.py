"""Tests for the fio-style front end."""

import pytest

from repro._units import GiB, KiB
from repro.iogen.fio import format_job_result, parse_fio_args
from repro.iogen.spec import IoPattern
from repro.iogen.stats import IoRecord, JobResult
from repro.iogen.spec import JobSpec


class TestParseFioArgs:
    def test_full_command(self):
        spec = parse_fio_args(
            "--rw=randwrite --bs=256k --iodepth=64 --runtime=60 --size=4G"
        )
        assert spec.pattern is IoPattern.RANDWRITE
        assert spec.block_size == 256 * KiB
        assert spec.iodepth == 64
        assert spec.runtime_s == 60.0
        assert spec.size_limit_bytes == 4 * GiB

    def test_defaults(self):
        spec = parse_fio_args("--rw=read")
        assert spec.block_size == 4 * KiB
        assert spec.iodepth == 1

    def test_offset_option(self):
        spec = parse_fio_args("--rw=read --offset=1G")
        assert spec.region_offset == GiB

    def test_missing_rw_rejected(self):
        with pytest.raises(ValueError):
            parse_fio_args("--bs=4k")

    def test_unknown_rw_rejected(self):
        with pytest.raises(ValueError):
            parse_fio_args("--rw=trimwrite")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            parse_fio_args("--rw=read --zonemode=zbd")

    def test_buffered_io_rejected(self):
        with pytest.raises(ValueError):
            parse_fio_args("--rw=read --direct=0")

    def test_malformed_token_rejected(self):
        with pytest.raises(ValueError):
            parse_fio_args("rw=read")


class TestFormatJobResult:
    def test_renders_bandwidth_and_latency(self):
        spec = JobSpec(IoPattern.RANDREAD, 4096, 8)
        records = tuple(
            IoRecord(i * 1e-4, i * 1e-4 + 80e-6, 4096) for i in range(100)
        )
        result = JobResult(
            spec=spec,
            start_time=0.0,
            end_time=0.01,
            records=records,
            measure_start=0.0,
        )
        text = format_job_result(result)
        assert "randread bs=4k iodepth=8" in text
        assert "read:" in text
        assert "lat (usec)" in text
        assert "p99" in text
