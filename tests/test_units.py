"""Tests for unit helpers."""

import pytest

from repro._units import (
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_duration,
    mib_per_s,
    parse_size,
)


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("4k") == 4 * KiB
        assert parse_size("4KiB") == 4 * KiB
        assert parse_size("2m") == 2 * MiB
        assert parse_size("2MB") == 2 * MiB
        assert parse_size("1G") == GiB
        assert parse_size("512") == 512

    def test_integer_passthrough(self):
        assert parse_size(8192) == 8192

    def test_fractional_units(self):
        assert parse_size("0.5k") == 512

    def test_bad_suffix_rejected(self):
        with pytest.raises(ValueError):
            parse_size("4x")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            parse_size("abc")

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3")


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0 B"
        assert fmt_bytes(4 * KiB) == "4.0 KiB"
        assert fmt_bytes(3 * GiB) == "3.0 GiB"

    def test_fmt_duration(self):
        assert fmt_duration(35e-6) == "35.0 us"
        assert fmt_duration(2.5e-3) == "2.5 ms"
        assert fmt_duration(3.0) == "3.00 s"

    def test_mib_per_s(self):
        assert mib_per_s(MiB) == 1.0
