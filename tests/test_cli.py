"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--device", "ssd2"])
        args_dict = vars(args)
        assert args_dict["rw"] == "randwrite"
        assert args_dict["iodepth"] == 64

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--device", "floppy"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_nonpositive_workers_rejected(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--device", "ssd3", "--workers", bad]
            )
        assert "worker count must be >= 1" in capsys.readouterr().err

    def test_workers_all_means_every_core(self):
        args = build_parser().parse_args(
            ["sweep", "--device", "ssd3", "--workers", "all"]
        )
        assert args.workers is None

    def test_malformed_faults_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--device", "ssd3", "--faults", "meteor:p=1"]
            )
        assert "unknown fault kind" in capsys.readouterr().err

    def test_malformed_faults_clause_named_in_error(self, capsys):
        """A bad token in a multi-clause spec is named, not left to hunt."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "policy",
                    "--faults",
                    "governor:at=0.01;spike:dur=bogus",
                ]
            )
        err = capsys.readouterr().err
        assert "(in clause 'spike:dur=bogus')" in err
        assert "dur='bogus' is not a number" in err

    def test_faults_missing_required_argument_names_clause(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--device", "ssd3", "--faults", "spike:at=0.01"]
            )
        assert "(in clause 'spike:at=0.01')" in capsys.readouterr().err

    def test_policy_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["policy", "--policy", "bang-bang"])

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        args_dict = vars(args)
        assert args_dict["devices"] == 64
        assert args_dict["epochs"] == 4
        assert args_dict["budget_low"] == 0.55
        assert args_dict["budget_high"] == 0.85
        assert args_dict["workers"] == 1
        assert args_dict["cache"] is None

    def test_fleet_shares_the_workers_flag_group(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--workers", "0"])
        assert "worker count must be >= 1" in capsys.readouterr().err


class TestCommands:
    def test_devices_lists_presets(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for label in ("ssd1", "ssd2", "ssd3", "hdd", "860evo", "pm1743"):
            assert label in out

    def test_run_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--device",
                "ssd3",
                "--rw",
                "randread",
                "--bs",
                "4k",
                "--iodepth",
                "4",
                "--runtime",
                "0.02",
                "--size",
                "2M",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ssd3" in out and "W" in out and "MiB/s" in out

    def test_run_with_power_state(self, capsys):
        main(
            [
                "run",
                "--device",
                "ssd2",
                "--bs",
                "64k",
                "--runtime",
                "0.02",
                "--size",
                "8M",
                "--ps",
                "2",
            ]
        )
        assert "ps2" in capsys.readouterr().out

    def test_sweep_prints_grid(self, capsys):
        code = main(
            [
                "sweep",
                "--device",
                "ssd3",
                "--rw",
                "randread",
                "--bs",
                "16k",
                "--bs",
                "64k",
                "--iodepth",
                "1",
                "--iodepth",
                "8",
                "--workers",
                "2",
                "--runtime",
                "0.01",
                "--size",
                "2M",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "bs=16k" in out and "bs=64k" in out

    def test_sweep_with_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--device",
            "ssd3",
            "--rw",
            "randread",
            "--bs",
            "16k",
            "--iodepth",
            "1",
            "--runtime",
            "0.01",
            "--size",
            "2M",
            "--cache",
            str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.pkl"))) == 1
        assert "cache: 0 hit(s), 1 miss(es)" in first
        assert main(argv) == 0  # served from cache
        second = capsys.readouterr().out
        assert "cache: 1 hit(s), 0 miss(es) (100% hit rate)" in second
        # The result rows themselves are identical either way; only the
        # cache/executor summary lines differ between cold and warm runs.
        table = first.split("\n\ncache:")[0]
        assert second.startswith(table)

    def test_run_with_faults_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--device",
                "ssd3",
                "--rw",
                "randread",
                "--bs",
                "16k",
                "--iodepth",
                "4",
                "--runtime",
                "0.01",
                "--size",
                "2M",
                "--faults",
                "io_error:p=0.5,cost=5e-4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults:" in out and "io_error" in out

    def test_sweep_resume_requires_cache(self, capsys):
        code = main(
            [
                "sweep",
                "--device",
                "ssd3",
                "--rw",
                "randread",
                "--bs",
                "16k",
                "--iodepth",
                "1",
                "--runtime",
                "0.01",
                "--size",
                "2M",
                "--resume",
            ]
        )
        assert code == 2
        assert "--resume requires --cache" in capsys.readouterr().out

    def test_sweep_resume_round_trip(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--device",
            "ssd3",
            "--rw",
            "randread",
            "--bs",
            "16k",
            "--iodepth",
            "1",
            "--runtime",
            "0.01",
            "--size",
            "2M",
            "--cache",
            str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert (tmp_path / "checkpoint.jsonl").exists()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "1 done" in out
        assert "1 points" in out  # the table still shows the full grid

    def test_sweep_reports_failed_points(self, capsys):
        code = main(
            [
                "sweep",
                "--device",
                "hdd",  # no NVMe power states -> ps point fails
                "--rw",
                "randread",
                "--bs",
                "16k",
                "--iodepth",
                "1",
                "--ps",
                "1",
                "--runtime",
                "0.01",
                "--size",
                "1M",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "ValueError" in out

    def test_run_trace_jsonl_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code = main(
            [
                "run", "--device", "ssd1", "--rw", "randwrite",
                "--bs", "64k", "--iodepth", "8",
                "--runtime", "0.01", "--size", "2M", "--ps", "2",
                "--trace", str(trace),
            ]
        )
        assert code == 0
        assert str(trace) in capsys.readouterr().out
        from repro.obs.export import load_jsonl

        events = load_jsonl(trace)
        assert events, "trace file must contain events"
        kinds = {e["kind"] for e in events}
        assert {"io_submit", "io_complete", "power_state"} <= kinds
        # Deterministic total order: (t, seq) ascending.
        keys = [(e["t"], e["seq"]) for e in events]
        assert keys == sorted(keys)

    def test_run_metrics_round_trip(self, capsys, tmp_path):
        metrics = tmp_path / "run.metrics.json"
        code = main(
            [
                "run", "--device", "ssd3", "--rw", "randread",
                "--bs", "16k", "--iodepth", "4",
                "--runtime", "0.01", "--size", "1M",
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        assert "profile:" in capsys.readouterr().out
        payload = json.loads(metrics.read_text())
        assert "metrics" in payload and "profile" in payload
        assert payload["profile"]["n_points"] == 1
        completed = payload["metrics"]["io.completed"]
        assert sum(v["value"] for v in completed.values()) > 0

    def test_sweep_chrome_trace_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "sweep.trace.json"
        metrics = tmp_path / "sweep.metrics.json"
        cache = tmp_path / "cache"
        argv = [
            "sweep", "--device", "ssd1", "--rw", "randwrite",
            "--bs", "64k", "--iodepth", "1", "--iodepth", "8",
            "--ps", "0", "--ps", "2",
            "--runtime", "0.01", "--size", "2M",
            "--cache", str(cache),
            "--trace", str(trace), "--trace-format", "chrome",
            "--metrics", str(metrics),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        payload = json.loads(trace.read_text())
        entries = payload["traceEvents"]
        # One process per sweep point, named via metadata.
        process_names = {
            e["args"]["name"]
            for e in entries
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(process_names) == 4
        assert all("ssd1" in name for name in process_names)
        thread_names = {
            e["args"]["name"]
            for e in entries
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "ssd1.io" in thread_names and "ssd1.power" in thread_names
        metrics_payload = json.loads(metrics.read_text())
        assert metrics_payload["cache"]["misses"] == 4
        assert metrics_payload["cache"]["puts"] == 4
        assert metrics_payload["profile"]["n_points"] == 4

    def test_figure_quick(self, capsys):
        assert main(["figure", "table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_figure_fig7(self, capsys):
        assert main(["figure", "fig7"]) == 0
        assert "860 EVO" in capsys.readouterr().out

    def test_policy_resume_requires_cache(self, capsys):
        assert main(["policy", "--resume"]) == 2
        assert "--resume requires --cache" in capsys.readouterr().out

    def test_policy_quick_validates_clean(self, capsys):
        code = main(
            ["policy", "--device", "ssd3", "--policy", "static", "--quick"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Policy tracking" in out
        assert "SSD3" in out and "static" in out
        assert "all hold" in out

    def test_policy_violation_exits_nonzero_even_over_cache_hits(
        self, capsys, tmp_path, monkeypatch
    ):
        """A warm cache must not launder a validation failure into exit 0."""
        from repro.studies import policy_tracking
        from repro.validate.report import Tolerances

        argv = [
            "policy", "--device", "ssd3", "--policy", "ladder", "--quick",
            "--cache", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "all hold" in first
        assert list(tmp_path.glob("*.pkl"))  # results actually cached
        assert (tmp_path / "checkpoint.jsonl").exists()

        # Re-run over pure cache hits: byte-identical report, still 0.
        assert main(argv + ["--resume"]) == 0
        assert "all hold" in capsys.readouterr().out

        # Zero meter tolerance makes every result a violation; the
        # cached results are revalidated, so the exit code flips to 1.
        monkeypatch.setattr(
            policy_tracking, "TOLERANCES", Tolerances(meter_rel=0.0)
        )
        assert main(argv + ["--resume"]) == 1
        out = capsys.readouterr().out
        assert "violation" in out

    def test_fleet_quick_validates_clean(self, capsys):
        code = main(
            ["fleet", "--devices", "3", "--epochs", "2", "--tenants", "6",
             "--quick"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet of 3 devices" in out
        assert "harvested" in out
        assert "digest " in out
        assert "all hold" in out

    def test_fleet_violation_exits_nonzero(self, capsys, monkeypatch):
        from repro.studies import fleet_scale
        from repro.validate.report import Tolerances

        monkeypatch.setattr(
            fleet_scale, "TOLERANCES", Tolerances(meter_rel=0.0)
        )
        code = main(
            ["fleet", "--devices", "2", "--epochs", "2", "--tenants", "4",
             "--quick"]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_fleet_feeds_the_report(self, capsys, tmp_path):
        code = main(
            ["fleet", "--devices", "3", "--epochs", "2", "--tenants", "6",
             "--quick", "--cache", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "ledger.jsonl").exists()
        capsys.readouterr()
        assert main(["report", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Fleet" in out
        assert "harvested" in out

    @pytest.mark.integration
    def test_plan(self, capsys):
        assert main(["plan", "--device", "ssd1", "--cut", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "power cut 20%" in out
        assert "curtail" in out


class TestReportCommand:
    def _sweep(self, tmp_path, extra=()):
        return main(
            [
                "sweep", "--device", "ssd3", "--rw", "randread",
                "--bs", "16k", "--iodepth", "1", "--iodepth", "8",
                "--runtime", "0.01", "--size", "2M",
                "--cache", str(tmp_path), *extra,
            ]
        )

    def test_requires_a_ledger_source(self, capsys):
        assert main(["report"]) == 2
        assert "--ledger PATH or --cache DIR" in capsys.readouterr().out

    def test_missing_ledger_exits_2(self, capsys, tmp_path):
        assert main(["report", "--cache", str(tmp_path)]) == 2
        assert "no ledger" in capsys.readouterr().out

    def test_sweep_then_report(self, capsys, tmp_path):
        assert self._sweep(tmp_path) == 0
        sweep_out = capsys.readouterr().out
        assert "executor:" in sweep_out  # telemetry footer with --cache
        assert (tmp_path / "ledger.jsonl").exists()
        assert main(["report", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# Sweep health report" in out
        assert "## Executor" in out
        assert "## Cache" in out
        assert "## Metrics rollup" in out
        assert "## Validation" in out
        assert "**OK**" in out

    def test_warm_rerun_reports_cache_hits(self, capsys, tmp_path):
        assert self._sweep(tmp_path) == 0
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert main(["report", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 cached" in out or "2 hit(s)" in out

    def test_json_output(self, capsys, tmp_path):
        import json as json_module

        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert main(["report", "--cache", str(tmp_path), "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["overview"]["points"] == 2
        assert payload["executor"]["executed"] == 2

    def test_explicit_ledger_path(self, capsys, tmp_path):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        ledger = tmp_path / "ledger.jsonl"
        assert main(["report", "--ledger", str(ledger)]) == 0
        assert "# Sweep health report" in capsys.readouterr().out

    def test_policy_study_feeds_the_report(self, capsys, tmp_path):
        """The acceptance path: a cached policy_tracking run, then a
        report covering executor, cache, rollup and validation."""
        argv = [
            "policy", "--device", "ssd3", "--policy", "static", "--quick",
            "--cache", str(tmp_path),
        ]
        assert main(argv) == 0
        assert main(argv + ["--resume"]) == 0
        capsys.readouterr()
        assert main(["report", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Executor" in out
        assert "## Cache" in out
        assert "## Metrics rollup" in out
        assert "## Policy tracking" in out
        assert "all invariants hold" in out
        assert "ssd3/static" in out

    def test_progress_paints_stderr(self, capsys, tmp_path):
        assert self._sweep(tmp_path, extra=("--progress",)) == 0
        captured = capsys.readouterr()
        assert "2/2 points" in captured.err
        assert captured.err.endswith("\n")  # finish() releases the line


class TestChaosCommand:
    def test_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--controllers", "gremlin"])

    def test_seeded_violation_exits_nonzero(self, capsys):
        """The acceptance path: --controllers all must find the unsafe
        fixture's lying-meter bug, print a minimal --faults reproducer,
        and exit 1."""
        code = main(
            ["chaos", "--controllers", "all", "--budget-cells", "6",
             "--quick"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "Chaos resilience" in out
        assert "unsafe" in out
        assert "minimized reproducers:" in out
        assert "--faults '" in out

    def test_shipped_family_exits_zero(self, capsys):
        code = main(
            ["chaos", "--controllers", "static", "--budget-cells", "2",
             "--quick"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "watchdog armed" in out
        assert "minimized reproducers:" not in out

    def test_campaign_feeds_the_report(self, capsys, tmp_path):
        code = main(
            ["chaos", "--controllers", "feedback", "--budget-cells", "2",
             "--quick", "--cache", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "ledger.jsonl").exists()
        capsys.readouterr()
        assert main(["report", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Chaos resilience" in out
        assert "feedback" in out
