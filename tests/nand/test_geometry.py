"""Tests for NAND geometry and physical addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nand.geometry import NandGeometry, PhysicalPageAddress

SMALL = NandGeometry(
    channels=2,
    dies_per_channel=2,
    planes_per_die=2,
    blocks_per_plane=4,
    pages_per_block=8,
    page_size=4096,
)


class TestCapacity:
    def test_total_dies(self):
        assert SMALL.total_dies == 4

    def test_total_pages(self):
        assert SMALL.total_pages == 4 * 2 * 4 * 8

    def test_capacity_bytes(self):
        assert SMALL.capacity_bytes == SMALL.total_pages * 4096

    def test_block_size(self):
        assert SMALL.block_size == 8 * 4096

    def test_invalid_field_rejected(self):
        with pytest.raises(ValueError):
            NandGeometry(channels=0)


class TestAddressing:
    def test_index_zero_is_origin(self):
        ppa = SMALL.ppa_from_index(0)
        assert ppa == PhysicalPageAddress(0, 0, 0, 0, 0)

    def test_page_increments_first(self):
        assert SMALL.ppa_from_index(1).page == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SMALL.ppa_from_index(SMALL.total_pages)
        with pytest.raises(ValueError):
            SMALL.ppa_from_index(-1)

    def test_bad_ppa_rejected(self):
        with pytest.raises(ValueError):
            SMALL.index_from_ppa(PhysicalPageAddress(9, 0, 0, 0, 0))

    def test_die_index_spans_channels(self):
        last = SMALL.ppa_from_index(SMALL.total_pages - 1)
        assert last.die_index(SMALL) == SMALL.total_dies - 1

    def test_block_id_distinct_per_block(self):
        seen = set()
        for index in range(0, SMALL.total_pages, SMALL.pages_per_block):
            seen.add(SMALL.block_id(SMALL.ppa_from_index(index)))
        assert len(seen) == SMALL.total_blocks

    def test_block_id_constant_within_block(self):
        base = SMALL.ppa_from_index(0)
        for page in range(SMALL.pages_per_block):
            ppa = SMALL.ppa_from_index(page)
            assert SMALL.block_id(ppa) == SMALL.block_id(base)

    @given(st.integers(min_value=0, max_value=SMALL.total_pages - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, index):
        """Property: index -> PPA -> index is the identity."""
        assert SMALL.index_from_ppa(SMALL.ppa_from_index(index)) == index
