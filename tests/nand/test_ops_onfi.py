"""Tests for NAND op parameters and the channel bus."""

import pytest

from repro.nand.onfi import ChannelBus
from repro.nand.ops import NandPower, NandTimings, OpKind
from repro.power.rail import PowerRail
from tests.conftest import drive


class TestTimings:
    def test_duration_per_kind(self):
        timings = NandTimings(t_read=1e-5, t_program=2e-4, t_erase=1e-3)
        assert timings.duration(OpKind.READ) == 1e-5
        assert timings.duration(OpKind.PROGRAM) == 2e-4
        assert timings.duration(OpKind.ERASE) == 1e-3

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            NandTimings(t_read=0.0)


class TestPower:
    def test_draw_per_kind(self):
        power = NandPower(p_read=0.1, p_program=0.5, p_erase=0.3)
        assert power.draw(OpKind.READ) == 0.1
        assert power.draw(OpKind.PROGRAM) == 0.5
        assert power.draw(OpKind.ERASE) == 0.3

    def test_program_energy_dominates_read(self):
        """The asymmetry at the heart of the paper's Fig. 4."""
        power = NandPower()
        timings = NandTimings()
        assert power.energy(OpKind.PROGRAM, timings) > 10 * power.energy(
            OpKind.READ, timings
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NandPower(p_read=-0.1)


class TestChannelBus:
    def test_transfer_time(self, engine):
        bus = ChannelBus(engine, PowerRail(engine), 0, bandwidth=1e9, transfer_power_w=0.2)
        assert bus.transfer_time(1e6) == pytest.approx(1e-3)

    def test_transfer_draws_power_while_streaming(self, engine):
        rail = PowerRail(engine)
        bus = ChannelBus(engine, rail, 0, bandwidth=1e9, transfer_power_w=0.2)

        def xfer(eng):
            yield from bus.transfer(1_000_000)

        proc = engine.process(xfer(engine))
        engine.run(until=0.5e-3)
        assert rail.draw_of("chan0.xfer") == pytest.approx(0.2)
        drive(engine, proc)
        assert rail.draw_of("chan0.xfer") == 0.0
        assert bus.bytes_transferred == 1_000_000

    def test_transfers_serialize(self, engine):
        bus = ChannelBus(engine, PowerRail(engine), 0, bandwidth=1e9, transfer_power_w=0.0)

        def xfer(eng):
            yield from bus.transfer(1_000_000)

        engine.process(xfer(engine))
        engine.process(xfer(engine))
        engine.run()
        assert engine.now == pytest.approx(2e-3)

    def test_invalid_parameters(self, engine):
        rail = PowerRail(engine)
        with pytest.raises(ValueError):
            ChannelBus(engine, rail, 0, bandwidth=0.0, transfer_power_w=0.1)
        bus = ChannelBus(engine, rail, 0, bandwidth=1e9, transfer_power_w=0.1)
        with pytest.raises(ValueError):
            bus.transfer_time(-1)
