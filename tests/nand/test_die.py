"""Tests for the die state machine, the array, and power accounting."""

import numpy as np
import pytest

from repro.nand.die import NandArray, NandDie
from repro.nand.geometry import NandGeometry
from repro.nand.ops import NandPower, NandTimings, OpKind
from repro.power.rail import PowerRail
from tests.conftest import drive

GEOMETRY = NandGeometry(
    channels=2,
    dies_per_channel=2,
    planes_per_die=1,
    blocks_per_plane=4,
    pages_per_block=8,
    page_size=4096,
)
TIMINGS = NandTimings(t_read=50e-6, t_program=300e-6, t_erase=2e-3)
POWER = NandPower(p_read=0.05, p_program=0.4, p_erase=0.3)


def make_array(engine, **kwargs):
    return NandArray(
        engine,
        PowerRail(engine),
        GEOMETRY,
        TIMINGS,
        POWER,
        channel_bandwidth=1e9,
        channel_transfer_power_w=0.1,
        **kwargs,
    )


class TestDieOps:
    def test_program_takes_tprog_and_draws_power(self, engine):
        array = make_array(engine)
        die = array.dies[0]
        seen = []

        def prog(eng):
            yield die.acquire()
            eng.process(watcher(eng))
            yield from die.run_op(OpKind.PROGRAM)
            die.release()

        def watcher(eng):
            yield eng.timeout(TIMINGS.t_program / 2)
            seen.append(array.rail.draw_of("die0"))

        proc = engine.process(prog(engine))
        drive(engine, proc)
        assert engine.now == pytest.approx(TIMINGS.t_program)
        assert seen == [pytest.approx(POWER.p_program)]
        assert array.rail.draw_of("die0") == pytest.approx(0.0)

    def test_op_counts_recorded(self, engine):
        array = make_array(engine)

        def ops(eng):
            yield from array.execute(GEOMETRY.ppa_from_index(0), OpKind.READ)
            yield from array.execute(GEOMETRY.ppa_from_index(0), OpKind.PROGRAM)
            yield from array.execute(GEOMETRY.ppa_from_index(0), OpKind.ERASE)

        drive(engine, engine.process(ops(engine)))
        counts = array.op_counts()
        assert counts[OpKind.READ] == 1
        assert counts[OpKind.PROGRAM] == 1
        assert counts[OpKind.ERASE] == 1

    def test_die_serializes_ops(self, engine):
        array = make_array(engine)
        ppa = GEOMETRY.ppa_from_index(0)

        def op(eng):
            yield from array.execute(ppa, OpKind.ERASE)

        for _ in range(3):
            engine.process(op(engine))
        engine.run()
        # Three erases on one die must serialize: 3 * t_erase.
        assert engine.now == pytest.approx(3 * TIMINGS.t_erase)

    def test_different_dies_run_in_parallel(self, engine):
        array = make_array(engine)

        def op(eng, die_index):
            ppa = GEOMETRY.ppa_from_index(die_index * GEOMETRY.pages_per_die)
            yield from array.execute(ppa, OpKind.ERASE)

        for die_index in range(4):
            engine.process(op(engine, die_index))
        engine.run()
        assert engine.now == pytest.approx(TIMINGS.t_erase)

    def test_admission_brackets_die_phase(self, engine):
        """The admission hook sees exactly one grant per op."""
        array = make_array(engine)

        class Recorder:
            def __init__(self):
                self.grants = 0
                self.releases = 0

            def request(self, watts):
                self.grants += 1
                event = engine.event()
                event.succeed()
                return event

            def release(self, watts):
                self.releases += 1

        recorder = Recorder()

        def op(eng):
            yield from array.execute(
                GEOMETRY.ppa_from_index(0), OpKind.PROGRAM, admission=recorder
            )

        drive(engine, engine.process(op(engine)))
        assert recorder.grants == 1
        assert recorder.releases == 1


class TestProgramPulse:
    def test_pulse_conserves_energy(self, engine):
        rng = np.random.default_rng(0)
        array = make_array(engine, pulse_ratio=2.0, pulse_fraction=0.3, rng=rng)
        rail = array.rail

        def op(eng):
            yield from array.execute(GEOMETRY.ppa_from_index(0), OpKind.PROGRAM)

        drive(engine, engine.process(op(engine)))
        # Integrate die power over the op (excluding channel transfer power).
        energy = rail.trace.integrate(0.0, engine.now)
        transfer_energy = 0.1 * (GEOMETRY.page_size / 1e9)
        expected = POWER.p_program * TIMINGS.t_program + transfer_energy
        assert energy == pytest.approx(expected, rel=1e-6)

    def test_pulse_reaches_peak_power(self, engine):
        rng = np.random.default_rng(0)
        array = make_array(engine, pulse_ratio=2.0, pulse_fraction=0.3, rng=rng)

        def op(eng):
            yield from array.execute(GEOMETRY.ppa_from_index(0), OpKind.PROGRAM)

        drive(engine, engine.process(op(engine)))
        peak = array.rail.trace.max(0.0, engine.now)
        assert peak >= 2.0 * POWER.p_program

    def test_invalid_pulse_parameters(self, engine):
        rail = PowerRail(engine)
        with pytest.raises(ValueError):
            NandDie(engine, rail, 0, TIMINGS, POWER, pulse_ratio=0.5)
        with pytest.raises(ValueError):
            NandDie(engine, rail, 0, TIMINGS, POWER, pulse_ratio=2.0, pulse_fraction=0.9)


class TestChannel:
    def test_partial_page_read_transfers_fewer_bytes(self, engine):
        array = make_array(engine)

        def op(eng):
            yield from array.execute(GEOMETRY.ppa_from_index(0), OpKind.READ, nbytes=512)

        drive(engine, engine.process(op(engine)))
        assert array.channels[0].bytes_transferred == 512
        assert engine.now == pytest.approx(TIMINGS.t_read + 512 / 1e9)

    def test_channel_shared_by_dies(self, engine):
        array = make_array(engine)
        # Dies 0 and 1 share channel 0 (dies_per_channel=2 in this layout
        # means channel = ppa.channel; pick two PPAs on one channel).
        ppa_a = GEOMETRY.ppa_from_index(0)
        ppa_b = None
        for index in range(GEOMETRY.total_pages):
            candidate = GEOMETRY.ppa_from_index(index)
            if candidate.channel == ppa_a.channel and candidate.die != ppa_a.die:
                ppa_b = candidate
                break
        assert ppa_b is not None

        def op(eng, ppa):
            yield from array.execute(ppa, OpKind.PROGRAM)

        engine.process(op(engine, ppa_a))
        engine.process(op(engine, ppa_b))
        engine.run()
        # Transfers serialize on the shared bus; programs then overlap.
        transfer = GEOMETRY.page_size / 1e9
        assert engine.now == pytest.approx(2 * transfer + TIMINGS.t_program)
