"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro._units import MiB
from repro.devices.power_states import NvmePowerState
from repro.devices.ssd import ControllerConfig, SimulatedSSD, SsdConfig
from repro.ftl.gc import GcConfig
from repro.nand.geometry import NandGeometry
from repro.nand.ops import NandPower, NandTimings
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


def drive(engine: Engine, process) -> object:
    """Run the engine until ``process`` completes.

    Returns the process's value, or raises its exception if it failed.
    """
    process.add_callback(lambda event: None)  # observe (possible) failure
    while process.is_alive:
        engine.step()
    if not process.ok:
        raise process.value
    return process.value


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rngs() -> RngStreams:
    return RngStreams(seed=1234)


def tiny_ssd_config(**overrides) -> SsdConfig:
    """A small, fast SSD config for unit tests.

    4 channels x 2 dies, 16 KiB pages, tiny blocks so GC is reachable in a
    test, cheap controller.  Tests override fields via kwargs.
    """
    defaults = dict(
        name="tiny",
        geometry=NandGeometry(
            channels=4,
            dies_per_channel=2,
            planes_per_die=1,
            blocks_per_plane=8,
            pages_per_block=8,
            page_size=16 * 1024,
        ),
        # t_read deliberately off the 20 kHz meter grid (50 us) so sampled
        # power does not phase-lock with op boundaries.
        timings=NandTimings(t_read=47e-6, t_program=300e-6, t_erase=2e-3),
        nand_power=NandPower(p_read=0.05, p_program=0.3, p_erase=0.25),
        channel_bandwidth=1.0e9,
        channel_transfer_power_w=0.2,
        link_bandwidth=2.0e9,
        link_transfer_power_w=0.5,
        controller=ControllerConfig(
            cores=2,
            command_time_s=5e-6,
            core_active_power_w=0.4,
            idle_power_w=1.0,
            completion_time_s=2e-6,
        ),
        dram_power_w=0.3,
        write_buffer_bytes=1 * MiB,
        power_states=(
            NvmePowerState(0, 20.0, True, 0.0, 0.0, 1.5),
            NvmePowerState(1, 3.5, True, 20e-6, 20e-6, 1.5),
            NvmePowerState(2, 2.8, True, 20e-6, 20e-6, 1.5),
            NvmePowerState(3, 20.0, False, 1e-3, 2e-3, 0.4),
        ),
        governor_baseline_w=1.5,
        governor_headroom_w=0.6,
        # Generous OP: the tiny array (64 blocks) must leave GC enough
        # garbage margin above its reserve + watermarks to make progress.
        overprovision=0.4,
        gc=GcConfig(low_watermark=4, high_watermark=8),
        maintenance_programs=0,
    )
    defaults.update(overrides)
    return SsdConfig(**defaults)


@pytest.fixture
def tiny_ssd(engine: Engine, rngs: RngStreams) -> SimulatedSSD:
    return SimulatedSSD(engine, tiny_ssd_config(), rng=rngs)
