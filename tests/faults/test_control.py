"""Unit tests for the control-plane seam (repro.faults.control)."""

import pytest

from repro.faults import ActuatorFaultSpec, FaultPlan, SensorFaultSpec
from repro.faults.control import PolicyActuator, SensedPower, SensorReading
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams


class _Trace:
    """Rail-trace stub: mean(a, b) returns f(a, b) and records the call."""

    def __init__(self, fn):
        self._fn = fn
        self.calls = []

    def mean(self, start, end):
        self.calls.append((start, end))
        return self._fn(start, end)


class _Device:
    name = "dev"

    def __init__(self, fn=lambda start, end: 2.0):
        self.rail = type("Rail", (), {})()
        self.rail.trace = _Trace(fn)


def _injector(plan: FaultPlan) -> FaultInjector:
    return FaultInjector(Engine(), plan, RngStreams(0))


class TestSensedPower:
    def test_clean_meter_is_legacy_identity(self):
        device = _Device(lambda start, end: 3.25)
        sensed = SensedPower(device, 3e-3, None, NULL_INJECTOR)
        reading = sensed.read(0.01)
        assert reading == SensorReading(3.25, 0.0)
        # Exactly the legacy trailing window [now - window, now].
        assert device.rail.trace.calls == [(0.01 - 3e-3, 0.01)]

    def test_window_clamps_at_time_zero(self):
        device = _Device()
        sensed = SensedPower(device, 3e-3, None, NULL_INJECTOR)
        sensed.read(1e-3)
        assert device.rail.trace.calls == [(0.0, 1e-3)]

    def test_bias_gain_quantization(self):
        spec = SensorFaultSpec(bias_w=0.5, gain=2.0, quant_w=0.25)
        sensed = SensedPower(
            _Device(lambda start, end: 2.06), 3e-3, spec, NULL_INJECTOR
        )
        # 2.0 * 2.06 + 0.5 = 4.62, snapped to the 0.25 grid.
        assert sensed.read(0.01).value_w == pytest.approx(4.5)

    def test_lag_shifts_the_read_window(self):
        device = _Device()
        spec = SensorFaultSpec(lag_s=4e-3)
        sensed = SensedPower(device, 3e-3, spec, NULL_INJECTOR)
        sensed.read(0.01)
        assert device.rail.trace.calls == [(3e-3, 6e-3)]

    def test_lag_before_time_zero_reads_dead(self):
        spec = SensorFaultSpec(lag_s=1.0)
        sensed = SensedPower(_Device(), 3e-3, spec, NULL_INJECTOR)
        assert sensed.read(0.01).value_w == 0.0

    def test_dropout_holds_value_and_ages(self):
        device = _Device(lambda start, end: end * 100.0)
        spec = SensorFaultSpec(dropout_start_s=0.01, dropout_duration_s=0.01)
        sensed = SensedPower(device, 3e-3, spec, NULL_INJECTOR)
        live = sensed.read(0.008)
        assert live == SensorReading(0.8, 0.0)
        held = sensed.read(0.015)
        assert held.value_w == live.value_w
        assert held.age_s == pytest.approx(0.007)
        # Past the window the meter is live again.
        assert sensed.read(0.025) == SensorReading(2.5, 0.0)

    def test_freeze_latches_and_lies_about_age(self):
        device = _Device(lambda start, end: end * 100.0)
        spec = SensorFaultSpec(freeze_start_s=0.01, freeze_duration_s=0.01)
        sensed = SensedPower(device, 3e-3, spec, NULL_INJECTOR)
        first = sensed.read(0.012)
        second = sensed.read(0.018)
        # Identical latched values, both claiming to be fresh.
        assert first == second
        assert first.age_s == 0.0
        assert sensed.read(0.025).value_w == pytest.approx(2.5)

    def test_faults_are_accounted_through_the_injector(self):
        spec = SensorFaultSpec(
            bias_w=-1.0, dropout_start_s=0.01, dropout_duration_s=0.005
        )
        injector = _injector(FaultPlan(sensor=spec))
        sensed = SensedPower(_Device(), 3e-3, spec, injector)
        sensed.read(0.005)
        sensed.read(0.012)
        summary = injector.summary()
        assert summary.count("sensor_distortion") == 1
        assert summary.count("sensor_dropout") == 1


class _Recorder:
    """Actuation callback capturing (engine.now, value) per apply."""

    def __init__(self, engine):
        self._engine = engine
        self.applied = []

    def __call__(self, value):
        self.applied.append((self._engine.now, value))


def _drive(engine, commands, actuator):
    """Issue (time, target) commands from a process, then drain."""

    def proc():
        last = 0.0
        for t, target in commands:
            if t > last:
                yield engine.timeout(t - last)
                last = t
            actuator.command(target)

    engine.process(proc())
    engine.run()


class TestPolicyActuator:
    def test_no_spec_is_direct_apply(self):
        engine = Engine()
        recorder = _Recorder(engine)
        actuator = PolicyActuator(
            engine, recorder, "dev.policy", None, NULL_INJECTOR
        )
        actuator.command(9.0)
        assert recorder.applied == [(0.0, 9.0)]
        assert actuator.applied_w == 9.0

    def test_certain_drop_applies_nothing(self):
        engine = Engine()
        spec = ActuatorFaultSpec(drop_p=1.0)
        injector = FaultInjector(
            engine, FaultPlan(actuator=spec), RngStreams(0)
        )
        recorder = _Recorder(engine)
        actuator = PolicyActuator(engine, recorder, "dev.policy", spec, injector)
        actuator.command(9.0)
        assert recorder.applied == []
        assert injector.summary().count("actuator_dropped") == 1

    def test_delay_defers_the_apply(self):
        engine = Engine()
        spec = ActuatorFaultSpec(delay_s=5e-3)
        recorder = _Recorder(engine)
        actuator = PolicyActuator(
            engine, recorder, "dev.policy", spec, NULL_INJECTOR
        )
        _drive(engine, [(0.0, 9.0)], actuator)
        assert recorder.applied == [(5e-3, 9.0)]

    def test_delayed_commands_latest_wins(self):
        engine = Engine()
        spec = ActuatorFaultSpec(delay_s=5e-3)
        recorder = _Recorder(engine)
        actuator = PolicyActuator(
            engine, recorder, "dev.policy", spec, NULL_INJECTOR
        )
        _drive(engine, [(0.0, 9.0), (1e-3, 7.0)], actuator)
        # The in-flight 9 W command was superseded; only 7 W lands.
        assert recorder.applied == [(6e-3, 7.0)]

    def test_partial_authority_slews(self):
        engine = Engine()
        spec = ActuatorFaultSpec(partial=0.5)
        recorder = _Recorder(engine)
        actuator = PolicyActuator(
            engine, recorder, "dev.policy", spec, NULL_INJECTOR
        )
        actuator.command(10.0)
        actuator.command(20.0)
        # First command applies in full; the second moves halfway.
        assert [value for _, value in recorder.applied] == [10.0, 15.0]

    def test_stuck_at_ignores_later_commands(self):
        engine = Engine()
        spec = ActuatorFaultSpec(stuck_at_s=2e-3)
        recorder = _Recorder(engine)
        actuator = PolicyActuator(
            engine, recorder, "dev.policy", spec, NULL_INJECTOR
        )
        _drive(engine, [(0.0, 9.0), (4e-3, 7.0)], actuator)
        assert [value for _, value in recorder.applied] == [9.0]
        assert actuator.applied_w == 9.0

    def test_inert_spec_is_identity(self):
        engine = Engine()
        recorder = _Recorder(engine)
        actuator = PolicyActuator(
            engine, recorder, "dev.policy", ActuatorFaultSpec(), NULL_INJECTOR
        )
        actuator.command(9.0)
        actuator.command(7.5)
        assert recorder.applied == [(0.0, 9.0), (0.0, 7.5)]
