"""Validation of fault plans and the ``--faults`` spec grammar."""

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpecError,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
    parse_fault_plan,
)


class TestSpecValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValueError, match="probability"):
            IoErrorSpec(probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            StuckTransitionSpec(probability=-0.1)
        with pytest.raises(ValueError, match="probability"):
            SpinupFailureSpec(probability=2.0)

    def test_io_error_rejects_bad_costs(self):
        with pytest.raises(ValueError, match="retry cost"):
            IoErrorSpec(probability=0.1, retry_cost_s=-1e-3)
        with pytest.raises(ValueError, match="max_retries"):
            IoErrorSpec(probability=0.1, max_retries=0)

    def test_spike_window_validation(self):
        with pytest.raises(ValueError):
            LatencySpikeSpec(start_s=-1.0, duration_s=0.01, extra_s=1e-3)
        with pytest.raises(ValueError):
            LatencySpikeSpec(start_s=0.0, duration_s=0.0, extra_s=1e-3)
        with pytest.raises(ValueError, match="repeat period"):
            LatencySpikeSpec(
                start_s=0.0, duration_s=0.01, extra_s=1e-3, repeat_every_s=0.005
            )

    def test_throttle_scale_is_a_proper_derating(self):
        with pytest.raises(ValueError, match="cap_scale"):
            ThermalThrottleSpec(start_s=0.0, duration_s=0.01, cap_scale=1.0)
        with pytest.raises(ValueError, match="cap_scale"):
            ThermalThrottleSpec(start_s=0.0, duration_s=0.01, cap_scale=0.0)

    def test_stuck_targets_validated(self):
        with pytest.raises(ValueError, match="unknown stuck-transition"):
            StuckTransitionSpec(probability=0.5, targets=("nvme_ps", "warp"))

    def test_governor_failure_time_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            GovernorFailureSpec(at_s=-0.001)

    def test_spinup_abort_fraction_bounded(self):
        with pytest.raises(ValueError, match="abort_fraction"):
            SpinupFailureSpec(probability=1.0, abort_fraction=1.0)


class TestSpikeWindows:
    def test_one_shot_window(self):
        spec = LatencySpikeSpec(start_s=0.01, duration_s=0.005, extra_s=1e-3)
        assert not spec.active_at(0.0)
        assert spec.active_at(0.012)
        assert not spec.active_at(0.016)

    def test_periodic_window_repeats(self):
        spec = LatencySpikeSpec(
            start_s=0.01, duration_s=0.005, extra_s=1e-3, repeat_every_s=0.02
        )
        assert spec.active_at(0.012)
        assert not spec.active_at(0.018)
        assert spec.active_at(0.032)  # next period
        assert not spec.active_at(0.038)

    def test_plan_sums_overlapping_spikes(self):
        plan = FaultPlan(
            latency_spikes=(
                LatencySpikeSpec(start_s=0.0, duration_s=1.0, extra_s=1e-3),
                LatencySpikeSpec(start_s=0.5, duration_s=1.0, extra_s=2e-3),
            )
        )
        assert plan.spike_extra_s(0.25) == pytest.approx(1e-3)
        assert plan.spike_extra_s(0.75) == pytest.approx(3e-3)
        assert plan.spike_extra_s(1.25) == pytest.approx(2e-3)


class TestPlanActivity:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().active

    def test_any_spec_activates(self):
        assert FaultPlan(io_errors=IoErrorSpec(probability=0.0)).active
        assert FaultPlan(governor_failure=GovernorFailureSpec(at_s=0.0)).active
        assert FaultPlan(
            latency_spikes=(
                LatencySpikeSpec(start_s=0.0, duration_s=0.01, extra_s=1e-3),
            )
        ).active


class TestParseFaultPlan:
    def test_full_grammar_round_trip(self):
        plan = parse_fault_plan(
            "io_error:p=0.05,cost=2e-3,retries=4;"
            "spike:at=0.01,dur=0.005,extra=0.002,every=0.02;"
            "throttle:at=0.01,dur=0.02,scale=0.5;"
            "stuck:p=0.5,max=3,targets=nvme_ps|alpm;"
            "governor:at=0.02;"
            "spinup:p=1.0,retries=2,fraction=0.3,backoff=0.1"
        )
        assert plan.io_errors == IoErrorSpec(
            probability=0.05, retry_cost_s=2e-3, max_retries=4
        )
        assert plan.latency_spikes == (
            LatencySpikeSpec(
                start_s=0.01, duration_s=0.005, extra_s=0.002, repeat_every_s=0.02
            ),
        )
        assert plan.thermal_throttle.cap_scale == 0.5
        assert plan.stuck_transitions.targets == ("nvme_ps", "alpm")
        assert plan.governor_failure == GovernorFailureSpec(at_s=0.02)
        assert plan.spinup_failure.abort_fraction == 0.3

    def test_multiple_spikes_accumulate(self):
        plan = parse_fault_plan(
            "spike:at=0.0,dur=0.01,extra=1e-3;spike:at=0.02,dur=0.01,extra=1e-3"
        )
        assert len(plan.latency_spikes) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            parse_fault_plan("gremlins:p=1.0")

    def test_unknown_argument_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown argument"):
            parse_fault_plan("io_error:p=0.1,colour=red")

    def test_missing_required_argument_rejected(self):
        with pytest.raises(FaultSpecError, match="io_error"):
            parse_fault_plan("io_error:cost=1e-3")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(FaultSpecError, match="not a number"):
            parse_fault_plan("io_error:p=often")

    def test_post_init_rejection_wrapped(self):
        with pytest.raises(FaultSpecError, match="probability"):
            parse_fault_plan("io_error:p=3.0")

    def test_missing_equals_rejected(self):
        with pytest.raises(FaultSpecError, match="key=value"):
            parse_fault_plan("io_error:0.1")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError, match="configures no faults"):
            parse_fault_plan("  ;  ")

    def test_error_is_a_value_error(self):
        # argparse-facing code relies on this subclassing.
        assert issubclass(FaultSpecError, ValueError)
