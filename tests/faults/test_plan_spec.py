"""Validation of fault plans and the ``--faults`` spec grammar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ActuatorFaultSpec,
    FaultPlan,
    FaultSpecError,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SensorFaultSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
    parse_fault_plan,
    render_fault_plan,
)


class TestSpecValidation:
    def test_probabilities_bounded(self):
        with pytest.raises(ValueError, match="probability"):
            IoErrorSpec(probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            StuckTransitionSpec(probability=-0.1)
        with pytest.raises(ValueError, match="probability"):
            SpinupFailureSpec(probability=2.0)

    def test_io_error_rejects_bad_costs(self):
        with pytest.raises(ValueError, match="retry cost"):
            IoErrorSpec(probability=0.1, retry_cost_s=-1e-3)
        with pytest.raises(ValueError, match="max_retries"):
            IoErrorSpec(probability=0.1, max_retries=0)

    def test_spike_window_validation(self):
        with pytest.raises(ValueError):
            LatencySpikeSpec(start_s=-1.0, duration_s=0.01, extra_s=1e-3)
        with pytest.raises(ValueError):
            LatencySpikeSpec(start_s=0.0, duration_s=0.0, extra_s=1e-3)
        with pytest.raises(ValueError, match="repeat period"):
            LatencySpikeSpec(
                start_s=0.0, duration_s=0.01, extra_s=1e-3, repeat_every_s=0.005
            )

    def test_throttle_scale_is_a_proper_derating(self):
        with pytest.raises(ValueError, match="cap_scale"):
            ThermalThrottleSpec(start_s=0.0, duration_s=0.01, cap_scale=1.0)
        with pytest.raises(ValueError, match="cap_scale"):
            ThermalThrottleSpec(start_s=0.0, duration_s=0.01, cap_scale=0.0)

    def test_stuck_targets_validated(self):
        with pytest.raises(ValueError, match="unknown stuck-transition"):
            StuckTransitionSpec(probability=0.5, targets=("nvme_ps", "warp"))

    def test_governor_failure_time_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            GovernorFailureSpec(at_s=-0.001)

    def test_spinup_abort_fraction_bounded(self):
        with pytest.raises(ValueError, match="abort_fraction"):
            SpinupFailureSpec(probability=1.0, abort_fraction=1.0)

    def test_sensor_gain_must_be_positive(self):
        with pytest.raises(ValueError, match="gain"):
            SensorFaultSpec(gain=0.0)
        with pytest.raises(ValueError, match="gain"):
            SensorFaultSpec(gain=-1.0)

    def test_sensor_windows_need_a_start(self):
        with pytest.raises(ValueError, match="dropout"):
            SensorFaultSpec(dropout_duration_s=0.01)
        with pytest.raises(ValueError, match="freeze"):
            SensorFaultSpec(freeze_every_s=0.05)

    def test_sensor_window_period_exceeds_duration(self):
        with pytest.raises(ValueError, match="repeat period"):
            SensorFaultSpec(
                dropout_start_s=0.0,
                dropout_duration_s=0.02,
                dropout_every_s=0.01,
            )

    def test_sensor_window_activity(self):
        spec = SensorFaultSpec(
            dropout_start_s=0.01, dropout_duration_s=0.005,
            dropout_every_s=0.02,
        )
        assert not spec.dropout_at(0.0)
        assert spec.dropout_at(0.012)
        assert not spec.dropout_at(0.018)
        assert spec.dropout_at(0.032)

    def test_sensor_distorts_property(self):
        assert not SensorFaultSpec().distorts
        assert not SensorFaultSpec(
            dropout_start_s=0.01, dropout_duration_s=0.005
        ).distorts
        assert SensorFaultSpec(bias_w=0.5).distorts
        assert SensorFaultSpec(gain=0.9).distorts
        assert SensorFaultSpec(quant_w=0.25).distorts
        assert SensorFaultSpec(lag_s=1e-3).distorts

    def test_actuator_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            ActuatorFaultSpec(drop_p=1.5)
        with pytest.raises(ValueError, match="delay"):
            ActuatorFaultSpec(delay_s=-1e-3)
        with pytest.raises(ValueError, match="partial"):
            ActuatorFaultSpec(partial=0.0)
        with pytest.raises(ValueError, match="partial"):
            ActuatorFaultSpec(partial=1.5)
        with pytest.raises(ValueError, match="stuck-at"):
            ActuatorFaultSpec(stuck_at_s=-0.01)


class TestSpikeWindows:
    def test_one_shot_window(self):
        spec = LatencySpikeSpec(start_s=0.01, duration_s=0.005, extra_s=1e-3)
        assert not spec.active_at(0.0)
        assert spec.active_at(0.012)
        assert not spec.active_at(0.016)

    def test_periodic_window_repeats(self):
        spec = LatencySpikeSpec(
            start_s=0.01, duration_s=0.005, extra_s=1e-3, repeat_every_s=0.02
        )
        assert spec.active_at(0.012)
        assert not spec.active_at(0.018)
        assert spec.active_at(0.032)  # next period
        assert not spec.active_at(0.038)

    def test_plan_sums_overlapping_spikes(self):
        plan = FaultPlan(
            latency_spikes=(
                LatencySpikeSpec(start_s=0.0, duration_s=1.0, extra_s=1e-3),
                LatencySpikeSpec(start_s=0.5, duration_s=1.0, extra_s=2e-3),
            )
        )
        assert plan.spike_extra_s(0.25) == pytest.approx(1e-3)
        assert plan.spike_extra_s(0.75) == pytest.approx(3e-3)
        assert plan.spike_extra_s(1.25) == pytest.approx(2e-3)


class TestPlanActivity:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().active

    def test_any_spec_activates(self):
        assert FaultPlan(io_errors=IoErrorSpec(probability=0.0)).active
        assert FaultPlan(governor_failure=GovernorFailureSpec(at_s=0.0)).active
        assert FaultPlan(
            latency_spikes=(
                LatencySpikeSpec(start_s=0.0, duration_s=0.01, extra_s=1e-3),
            )
        ).active


class TestParseFaultPlan:
    def test_full_grammar_round_trip(self):
        plan = parse_fault_plan(
            "io_error:p=0.05,cost=2e-3,retries=4;"
            "spike:at=0.01,dur=0.005,extra=0.002,every=0.02;"
            "throttle:at=0.01,dur=0.02,scale=0.5;"
            "stuck:p=0.5,max=3,targets=nvme_ps|alpm;"
            "governor:at=0.02;"
            "spinup:p=1.0,retries=2,fraction=0.3,backoff=0.1"
        )
        assert plan.io_errors == IoErrorSpec(
            probability=0.05, retry_cost_s=2e-3, max_retries=4
        )
        assert plan.latency_spikes == (
            LatencySpikeSpec(
                start_s=0.01, duration_s=0.005, extra_s=0.002, repeat_every_s=0.02
            ),
        )
        assert plan.thermal_throttle.cap_scale == 0.5
        assert plan.stuck_transitions.targets == ("nvme_ps", "alpm")
        assert plan.governor_failure == GovernorFailureSpec(at_s=0.02)
        assert plan.spinup_failure.abort_fraction == 0.3

    def test_multiple_spikes_accumulate(self):
        plan = parse_fault_plan(
            "spike:at=0.0,dur=0.01,extra=1e-3;spike:at=0.02,dur=0.01,extra=1e-3"
        )
        assert len(plan.latency_spikes) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            parse_fault_plan("gremlins:p=1.0")

    def test_unknown_argument_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown argument"):
            parse_fault_plan("io_error:p=0.1,colour=red")

    def test_missing_required_argument_rejected(self):
        with pytest.raises(FaultSpecError, match="io_error"):
            parse_fault_plan("io_error:cost=1e-3")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(FaultSpecError, match="not a number"):
            parse_fault_plan("io_error:p=often")

    def test_post_init_rejection_wrapped(self):
        with pytest.raises(FaultSpecError, match="probability"):
            parse_fault_plan("io_error:p=3.0")

    def test_missing_equals_rejected(self):
        with pytest.raises(FaultSpecError, match="key=value"):
            parse_fault_plan("io_error:0.1")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError, match="configures no faults"):
            parse_fault_plan("  ;  ")

    def test_error_is_a_value_error(self):
        # argparse-facing code relies on this subclassing.
        assert issubclass(FaultSpecError, ValueError)

    def test_control_plane_clauses_parse(self):
        plan = parse_fault_plan(
            "sensor:bias=-1.5,gain=0.8,quant=0.25,lag=0.004,"
            "drop_at=0.02,drop_dur=0.01,drop_every=0.04;"
            "actuator:drop=0.5,delay=0.004,partial=0.4,stuck_at=0.03"
        )
        assert plan.sensor == SensorFaultSpec(
            bias_w=-1.5,
            gain=0.8,
            quant_w=0.25,
            lag_s=0.004,
            dropout_start_s=0.02,
            dropout_duration_s=0.01,
            dropout_every_s=0.04,
        )
        assert plan.actuator == ActuatorFaultSpec(
            drop_p=0.5, delay_s=0.004, partial=0.4, stuck_at_s=0.03
        )

    def test_errors_name_the_offending_clause(self):
        with pytest.raises(FaultSpecError, match=r"in clause 'sensor:gain=0'"):
            parse_fault_plan("io_error:p=0.1;sensor:gain=0")
        with pytest.raises(
            FaultSpecError, match=r"in clause 'actuator:warp=1'"
        ):
            parse_fault_plan("governor:at=0.02;actuator:warp=1")


class TestRenderFaultPlan:
    def test_inert_plan_has_no_spelling(self):
        with pytest.raises(ValueError, match="inert"):
            render_fault_plan(FaultPlan())

    def test_defaults_are_omitted(self):
        plan = FaultPlan(
            io_errors=IoErrorSpec(probability=0.05),
            actuator=ActuatorFaultSpec(drop_p=0.5),
        )
        assert render_fault_plan(plan) == "io_error:p=0.05;actuator:drop=0.5"

    def test_all_default_control_spec_renders_bare(self):
        assert render_fault_plan(FaultPlan(sensor=SensorFaultSpec())) == (
            "sensor"
        )

    def test_render_is_canonical_for_parsed_specs(self):
        spec = "sensor:bias=-1.5;actuator:partial=0.4"
        assert render_fault_plan(parse_fault_plan(spec)) == spec


def _windows(prefix):
    """Strategy for one (start, duration, period) fault-window triple."""
    closed = st.just({})
    one_shot = st.tuples(
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(1e-3, 0.5, allow_nan=False),
        st.one_of(st.none(), st.floats(1e-3, 1.0, allow_nan=False)),
    ).map(
        lambda t: {
            f"{prefix}_start_s": t[0],
            f"{prefix}_duration_s": t[1],
            **(
                {f"{prefix}_every_s": t[1] + t[2]}
                if t[2] is not None
                else {}
            ),
        }
    )
    return st.one_of(closed, one_shot)


_SENSORS = st.builds(
    lambda bias, gain, quant, lag, drop, freeze: SensorFaultSpec(
        bias_w=bias, gain=gain, quant_w=quant, lag_s=lag, **drop, **freeze
    ),
    bias=st.floats(-5.0, 5.0, allow_nan=False),
    gain=st.floats(0.1, 3.0, allow_nan=False),
    quant=st.floats(0.0, 1.0, allow_nan=False),
    lag=st.floats(0.0, 0.1, allow_nan=False),
    drop=_windows("dropout"),
    freeze=_windows("freeze"),
)

_ACTUATORS = st.builds(
    ActuatorFaultSpec,
    drop_p=st.floats(0.0, 1.0, allow_nan=False),
    delay_s=st.floats(0.0, 0.1, allow_nan=False),
    partial=st.floats(0.1, 1.0, allow_nan=False),
    stuck_at_s=st.one_of(st.none(), st.floats(0.0, 1.0, allow_nan=False)),
)

_PLANS = st.builds(
    FaultPlan,
    io_errors=st.one_of(
        st.none(),
        st.builds(
            IoErrorSpec,
            probability=st.floats(0.0, 1.0, allow_nan=False),
            retry_cost_s=st.floats(0.0, 0.01, allow_nan=False),
            max_retries=st.integers(1, 5),
        ),
    ),
    latency_spikes=st.lists(
        st.builds(
            LatencySpikeSpec,
            start_s=st.floats(0.0, 1.0, allow_nan=False),
            duration_s=st.floats(1e-3, 0.5, allow_nan=False),
            extra_s=st.floats(1e-5, 0.01, allow_nan=False),
        ),
        max_size=2,
    ).map(tuple),
    governor_failure=st.one_of(
        st.none(),
        st.builds(
            GovernorFailureSpec, at_s=st.floats(0.0, 1.0, allow_nan=False)
        ),
    ),
    sensor=st.one_of(st.none(), _SENSORS),
    actuator=st.one_of(st.none(), _ACTUATORS),
).filter(lambda plan: plan.active)


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(plan=_PLANS)
    def test_parse_render_is_the_identity(self, plan):
        """The shrinker's contract: every active plan renders to a spec
        string that parses back to an equal plan, twice over."""
        spec = render_fault_plan(plan)
        reparsed = parse_fault_plan(spec)
        assert reparsed == plan
        assert render_fault_plan(reparsed) == spec
