"""Determinism guarantees of the fault subsystem.

Three properties hold by construction and are pinned here:

1. An experiment with ``faults=None`` and one with an inert
   ``FaultPlan()`` produce bit-identical numbers (the injector exists but
   never draws from any RNG stream).
2. A faulted run is a pure function of (config, seed): repeating it, or
   tracing it, changes nothing.
3. Fault randomness comes from keyed ``faults.*`` RNG streams, never the
   builtin ``hash()`` -- so runs are bit-identical across interpreter
   processes with different ``PYTHONHASHSEED`` values.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.faults import FaultPlan, IoErrorSpec
from repro.iogen.spec import IoPattern, JobSpec
from repro.obs import MetricsCollector, Tracer
from tests.conftest import tiny_ssd_config

SRC = str(Path(__file__).resolve().parents[2] / "src")

FAULTED_SCRIPT = """
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.faults import parse_fault_plan
from repro.iogen.spec import IoPattern, JobSpec

plan = parse_fault_plan(
    "io_error:p=0.1,cost=5e-4;"
    "spike:at=0.002,dur=0.002,extra=2e-4,every=0.005;"
    "governor:at=0.003;"
    "stuck:p=0.5"
)
config = ExperimentConfig(
    device="ssd2",
    job=JobSpec(
        IoPattern.RANDWRITE,
        block_size=16384,
        iodepth=8,
        runtime_s=0.01,
        size_limit_bytes=4 * 1024 * 1024,
    ),
    power_state=1,
    seed=77,
    faults=plan,
)
result = run_experiment(config)
print(repr((
    result.mean_power_w,
    result.true_mean_power_w,
    result.throughput_bps,
    result.faults.injected,
    result.faults.retries,
    result.faults.extra_latency_s,
    result.faults.governor_failed,
)))
"""


def _run_with_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


def _config(faults, seed=42):
    return ExperimentConfig(
        device=tiny_ssd_config(),
        job=JobSpec(
            IoPattern.RANDREAD,
            block_size=16 * KiB,
            iodepth=4,
            runtime_s=0.01,
            size_limit_bytes=4 * MiB,
        ),
        seed=seed,
        faults=faults,
    )


def _fingerprint(result):
    return (
        result.mean_power_w,
        result.true_mean_power_w,
        result.throughput_bps,
        result.job.latency_stats().mean,
    )


class TestNoFaultIdentity:
    def test_inert_plan_bit_identical_to_no_injector(self):
        without = run_experiment(_config(faults=None))
        with_inert = run_experiment(_config(faults=FaultPlan()))
        assert _fingerprint(with_inert) == _fingerprint(without)
        assert without.faults is None
        # The inert plan still reports (empty) accounting.
        assert with_inert.faults.total == 0


class TestFaultedRunDeterminism:
    PLAN = FaultPlan(io_errors=IoErrorSpec(probability=0.2, retry_cost_s=5e-4))

    def test_repeat_run_identical(self):
        first = run_experiment(_config(self.PLAN))
        second = run_experiment(_config(self.PLAN))
        assert _fingerprint(first) == _fingerprint(second)
        assert first.faults == second.faults
        assert first.faults.count("io_error") > 0

    def test_tracing_does_not_perturb_faulted_run(self):
        untraced = run_experiment(_config(self.PLAN))
        tracer = Tracer(keep_events=False)
        collector = MetricsCollector()
        tracer.subscribe(collector)
        traced = run_experiment(_config(self.PLAN), tracer=tracer)
        assert _fingerprint(traced) == _fingerprint(untraced)
        assert traced.faults == untraced.faults

    def test_different_seeds_draw_different_faults(self):
        plan = FaultPlan(io_errors=IoErrorSpec(probability=0.2, retry_cost_s=5e-4))
        a = run_experiment(_config(plan, seed=1))
        b = run_experiment(_config(plan, seed=2))
        # Not a hard guarantee point by point, but with ~hundreds of IOs the
        # Bernoulli draws cannot coincide in practice.
        assert a.faults != b.faults


class TestMetricsIntegration:
    def test_fault_series_reach_the_collector(self):
        tracer = Tracer(keep_events=False)
        collector = MetricsCollector()
        tracer.subscribe(collector)
        run_experiment(
            _config(FaultPlan(io_errors=IoErrorSpec(probability=0.5))),
            tracer=tracer,
        )
        snap = collector.snapshot()
        injected = snap["faults.injected"]
        label = "component=tiny.io,kind=io_error"
        assert injected[label]["value"] > 0
        retries = snap["faults.retries"]
        assert retries[label]["value"] >= injected[label]["value"]


class TestCrossProcessDeterminism:
    def test_faulted_run_identical_across_hash_seeds(self):
        outputs = {_run_with_hashseed(FAULTED_SCRIPT, hs) for hs in ("1", "2")}
        assert len(outputs) == 1, f"faulted runs diverged: {outputs}"
        text = outputs.pop()
        assert "io_error" in text  # faults actually fired
        assert "True" in text  # the governor failure fired
