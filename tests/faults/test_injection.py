"""Behavioural tests: each fault mechanism measurably degrades its target."""

import pytest

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.safety import DeviceGroup, measured_device_group
from repro.devices.catalog import build_device
from repro.devices.hdd_drive import IdleCondition
from repro.devices.link import LinkPowerMode
from repro.devices.ssd import SimulatedSSD
from repro.faults import (
    FaultInjector,
    FaultPlan,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
)
from repro.faults.injector import NULL_INJECTOR
from repro.iogen.spec import IoPattern, JobSpec
from repro.sata.alpm import AlpmController
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import drive, tiny_ssd_config


def job(pattern=IoPattern.RANDREAD, **overrides):
    defaults = dict(
        block_size=16 * KiB,
        iodepth=4,
        runtime_s=0.01,
        size_limit_bytes=4 * MiB,
    )
    defaults.update(overrides)
    return JobSpec(pattern, **defaults)


def run(faults=None, **config_overrides):
    defaults = dict(device=tiny_ssd_config(), job=job(), seed=42)
    defaults.update(config_overrides)
    return run_experiment(ExperimentConfig(faults=faults, **defaults))


class TestNullInjector:
    def test_devices_default_to_null_injector(self, engine, rngs):
        ssd = SimulatedSSD(engine, tiny_ssd_config(), rng=rngs)
        assert ssd.faults is NULL_INJECTOR
        assert not ssd.faults.enabled
        assert ssd.faults.summary() is None

    def test_inert_plan_disables_injector(self, engine, rngs):
        injector = FaultInjector(engine, FaultPlan(), rngs)
        assert not injector.enabled
        assert injector.summary().total == 0

    def test_clean_run_has_no_fault_summary(self):
        assert run(faults=None).faults is None


class TestIoErrors:
    def test_io_errors_cost_latency_and_retries(self):
        clean = run()
        faulted = run(
            faults=FaultPlan(
                io_errors=IoErrorSpec(probability=0.2, retry_cost_s=1e-3)
            )
        )
        summary = faulted.faults
        assert summary.count("io_error") > 0
        assert summary.retries >= summary.count("io_error")
        assert summary.extra_latency_s > 0
        # Retries steal time from useful IO.
        assert faulted.throughput_bps < clean.throughput_bps
        assert faulted.latency().mean > clean.latency().mean

    def test_zero_probability_never_fires(self):
        result = run(faults=FaultPlan(io_errors=IoErrorSpec(probability=0.0)))
        assert result.faults.count("io_error") == 0
        assert result.faults.retries == 0

    def test_gc_path_also_faulted(self):
        # A write-heavy job on the tiny array forces GC; relocations go
        # through the same io_delay fault site as host IO.
        result = run(
            faults=FaultPlan(io_errors=IoErrorSpec(probability=1.0)),
            job=job(IoPattern.RANDWRITE, iodepth=8, size_limit_bytes=8 * MiB),
        )
        summary = result.faults
        assert summary.count("io_error") > 0
        assert summary.retries > 0


class TestLatencySpikes:
    def test_always_active_spike_slows_every_io(self):
        clean = run()
        spiked = run(
            faults=FaultPlan(
                latency_spikes=(
                    LatencySpikeSpec(start_s=0.0, duration_s=10.0, extra_s=2e-4),
                )
            )
        )
        summary = spiked.faults
        assert summary.count("latency_spike") > 0
        assert summary.extra_latency_s > 0
        assert spiked.latency().mean > clean.latency().mean

    def test_window_outside_run_never_fires(self):
        result = run(
            faults=FaultPlan(
                latency_spikes=(
                    LatencySpikeSpec(start_s=100.0, duration_s=1.0, extra_s=1e-3),
                )
            )
        )
        assert result.faults.count("latency_spike") == 0


class TestThermalThrottle:
    def test_throttle_reduces_power_under_cap(self):
        write_job = job(IoPattern.RANDWRITE, iodepth=8)
        capped = run(job=write_job, power_state=1)
        throttled = run(
            job=write_job,
            power_state=1,
            faults=FaultPlan(
                thermal_throttle=ThermalThrottleSpec(
                    start_s=0.0, duration_s=10.0, cap_scale=0.5
                )
            ),
        )
        assert throttled.faults.count("thermal_throttle") >= 1
        # Half the cap budget admits less NAND work: lower draw, lower rate.
        assert throttled.true_mean_power_w < capped.true_mean_power_w
        assert throttled.throughput_bps < capped.throughput_bps


class TestGovernorFailure:
    def _hazard_pair(self):
        write_job = job(IoPattern.RANDWRITE, iodepth=8)
        capped = run(job=write_job, power_state=1)
        failed = run(
            job=write_job,
            power_state=1,
            faults=FaultPlan(governor_failure=GovernorFailureSpec(at_s=2e-4)),
        )
        return capped, failed

    def test_failure_reverts_to_uncapped_draw(self):
        capped, failed = self._hazard_pair()
        summary = failed.faults
        assert summary.governor_failed
        assert summary.count("governor_failure") == 1
        assert summary.intended_cap_w == pytest.approx(3.5)
        # The result still records the cap the run was *supposed* to hold.
        assert failed.cap_w == pytest.approx(3.5)
        # Without rationing the device draws more than the working cap let it.
        assert failed.true_mean_power_w > capped.true_mean_power_w

    def test_measured_device_group_from_hazard_pair(self):
        capped, failed = self._hazard_pair()
        group = measured_device_group(
            count=8, adaptive_count=6, capped=capped, uncontrolled=failed
        )
        assert isinstance(group, DeviceGroup)
        assert group.count == 8
        assert group.adaptive_count == 6
        assert group.adaptive_power_w <= group.max_power_w
        assert group.max_power_w == pytest.approx(
            max(capped.true_mean_power_w, failed.true_mean_power_w)
        )

    def test_measured_device_group_rejects_uncapped_baseline(self):
        import dataclasses

        capped, failed = self._hazard_pair()
        uncapped = dataclasses.replace(capped, cap_w=None)
        with pytest.raises(ValueError, match="active power cap"):
            measured_device_group(2, 1, capped=uncapped, uncontrolled=failed)

    def test_measured_device_group_rejects_clean_uncontrolled_run(self):
        capped, _ = self._hazard_pair()
        with pytest.raises(ValueError, match="governor-failure"):
            measured_device_group(2, 1, capped=capped, uncontrolled=capped)


class TestStuckTransitions:
    def test_stuck_nvme_transition_pays_extra_latency(self, engine, rngs):
        plan = FaultPlan(
            stuck_transitions=StuckTransitionSpec(
                probability=1.0, targets=("nvme_ps",)
            )
        )
        injector = FaultInjector(engine, plan, rngs)
        ssd = SimulatedSSD(engine, tiny_ssd_config(), rng=rngs, faults=injector)
        drive(engine, engine.process(ssd.set_power_state(1)))
        entry = ssd.config.power_states[1].entry_latency_s
        # At least one stuck re-attempt doubled the entry latency.
        assert engine.now >= 2 * entry
        assert injector.counts.get("stuck_transition", 0) >= 1
        assert injector.retries >= 1

    def _alpm_transition_time(self, probability):
        engine = Engine()
        rngs = RngStreams(seed=7)
        plan = FaultPlan(
            stuck_transitions=StuckTransitionSpec(
                probability=probability, targets=("alpm",)
            )
        )
        injector = FaultInjector(engine, plan, rngs)
        ssd = SimulatedSSD(engine, tiny_ssd_config(), rng=rngs, faults=injector)
        alpm = AlpmController(ssd)
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.SLUMBER)))
        return engine.now, injector

    def test_stuck_alpm_transition_takes_longer(self):
        clean_time, clean_injector = self._alpm_transition_time(0.0)
        stuck_time, stuck_injector = self._alpm_transition_time(1.0)
        assert clean_injector.counts.get("stuck_transition", 0) == 0
        assert stuck_injector.counts.get("stuck_transition", 0) >= 1
        assert stuck_time > clean_time

    def test_epc_entry_refused(self, engine, rngs):
        plan = FaultPlan(
            stuck_transitions=StuckTransitionSpec(probability=1.0, targets=("epc",))
        )
        injector = FaultInjector(engine, plan, rngs)
        hdd = build_device(engine, "hdd", rng=rngs, faults=injector)
        hdd.set_idle_condition(IdleCondition.IDLE_B)
        # Firmware silently refused the command: the drive never left IDLE_A.
        assert hdd.idle_condition is IdleCondition.IDLE_A
        assert injector.counts["stuck_transition"] >= 1

    def test_epc_return_to_idle_a_never_refused(self, engine, rngs):
        plan = FaultPlan(
            stuck_transitions=StuckTransitionSpec(probability=0.0, targets=("epc",))
        )
        injector = FaultInjector(engine, plan, rngs)
        hdd = build_device(engine, "hdd", rng=rngs, faults=injector)
        hdd.set_idle_condition(IdleCondition.IDLE_B)
        assert hdd.idle_condition is IdleCondition.IDLE_B
        hdd.set_idle_condition(IdleCondition.IDLE_A)
        assert hdd.idle_condition is IdleCondition.IDLE_A


class TestSpinupFailure:
    def _standby_cycle(self, probability):
        engine = Engine()
        rngs = RngStreams(seed=11)
        plan = FaultPlan(
            spinup_failure=SpinupFailureSpec(
                probability=probability, max_retries=2, backoff_s=0.5
            )
        )
        injector = FaultInjector(engine, plan, rngs)
        hdd = build_device(engine, "hdd", rng=rngs, faults=injector)
        drive(engine, engine.process(hdd.enter_standby()))
        start = engine.now
        drive(engine, engine.process(hdd.exit_standby()))
        return engine.now - start, injector

    def test_flaky_spinup_costs_time(self):
        clean_time, _ = self._standby_cycle(0.0)
        flaky_time, injector = self._standby_cycle(1.0)
        assert injector.counts["spinup_failure"] == 1
        assert injector.retries >= 1
        spec = injector.plan.spinup_failure
        # Each failed attempt draws surge for part of the spin-up and then
        # rests; the drive must come up at least one aborted attempt later.
        assert flaky_time >= clean_time + spec.backoff_s

    def test_summary_describe_mentions_faults(self):
        _, injector = self._standby_cycle(1.0)
        text = injector.summary().describe()
        assert "spinup_failure" in text
        assert "retries" in text


class TestFaultSummary:
    def test_counts_and_total(self):
        result = run(
            faults=FaultPlan(
                io_errors=IoErrorSpec(probability=0.2, retry_cost_s=1e-4)
            )
        )
        summary = result.faults
        assert summary.total == sum(count for _, count in summary.injected)
        assert summary.count("io_error") > 0
        assert summary.count("not_a_fault") == 0
        assert "io_error x" in summary.describe()

    def test_clean_summary_describe(self):
        from repro.faults import FaultSummary

        assert FaultSummary().describe() == "no faults injected"
        failed = FaultSummary(
            injected=(("governor_failure", 1),),
            governor_failed=True,
            intended_cap_w=10.0,
        )
        assert "governor FAILED" in failed.describe()
        assert "cap 10 W lost" in failed.describe()
