"""Chaos campaign harness: sampling, shrinking, and bit-reproducibility."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import parse_fault_plan
from repro.faults.campaign import (
    CONTROLLER_FAMILIES,
    CampaignCell,
    _sample_cells,
    plan_vocabulary,
    run_campaign,
    shrink_plan,
)
from repro.studies.common import QUICK

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def campaign():
    """One small campaign over every family plus the unsafe fixture."""
    return run_campaign(scale=QUICK, budget_cells=8, seed=0)


class TestPlanVocabulary:
    def test_every_plan_parses(self):
        for name, spec in plan_vocabulary(1.5e-3, 0.0105):
            plan = parse_fault_plan(spec)
            assert plan.active, name

    def test_head_plan_is_the_lying_meter(self):
        name, spec = plan_vocabulary(1.5e-3, 0.0105)[0]
        assert name == "bias-low"
        assert parse_fault_plan(spec).sensor.bias_w == -1.5

    def test_windows_scale_with_the_horizon(self):
        short = dict(plan_vocabulary(1.5e-3, 0.01))
        long = dict(plan_vocabulary(1.5e-3, 1.0))
        assert (
            parse_fault_plan(short["dropout"]).sensor.dropout_start_s
            < parse_fault_plan(long["dropout"]).sensor.dropout_start_s
        )


class TestSampling:
    def _cells(self, n_plans=4, devices=("ssd2",), controllers=("a", "b")):
        return [
            CampaignCell(d, c, f"plan{i}", "sensor:bias=-1.5")
            for i in range(n_plans)
            for d in devices
            for c in controllers
        ]

    def test_no_budget_keeps_everything(self):
        cells = self._cells()
        assert _sample_cells(cells, None, 0) == cells
        assert _sample_cells(cells, 100, 0) == cells

    def test_coverage_first_keeps_one_cell_per_pair(self):
        cells = self._cells()
        sampled = _sample_cells(cells, 2, 0)
        assert {(c.device, c.controller) for c in sampled} == {
            ("ssd2", "a"),
            ("ssd2", "b"),
        }
        # The kept head cells carry the vocabulary's first plan.
        assert all(c.plan_name == "plan0" for c in sampled)

    def test_sampling_is_deterministic(self):
        cells = self._cells(n_plans=6)
        assert _sample_cells(cells, 5, 7) == _sample_cells(cells, 5, 7)

    def test_sampling_preserves_enumeration_order(self):
        cells = self._cells(n_plans=6)
        sampled = _sample_cells(cells, 5, 7)
        indices = [cells.index(c) for c in sampled]
        assert indices == sorted(indices)


class TestShrinkPlan:
    def test_drops_irrelevant_clauses(self):
        spec = "sensor:bias=-1.5;actuator:drop=0.5;governor:at=0.02"
        shrunk = shrink_plan(
            spec, lambda candidate: "sensor" in candidate
        )
        assert shrunk == "sensor:bias=-1.5"

    def test_single_clause_is_already_minimal(self):
        assert shrink_plan("governor:at=0.02", lambda _: True) == (
            "governor:at=0.02"
        )

    def test_result_is_canonical(self):
        # Clause order and float spelling normalize on the way out.
        shrunk = shrink_plan(
            "actuator:drop=0.50;sensor:bias=-1.5",
            lambda candidate: "actuator" in candidate,
        )
        assert shrunk == "actuator:drop=0.5"
        assert parse_fault_plan(shrunk).actuator.drop_p == 0.5


class TestCampaign:
    def test_finds_the_seeded_violation(self, campaign):
        """--controllers all must catch the unsafe fixture lying-meter
        bug: at least one violating cell, and a non-ok campaign."""
        assert not campaign.ok
        unsafe = [o for o in campaign.outcomes if o.cell.controller == "unsafe"]
        assert any(o.violations for o in unsafe)

    def test_shipped_families_stay_safe_under_watchdog(self, campaign):
        assert campaign.watchdog_armed
        for outcome in campaign.outcomes:
            if outcome.cell.controller in CONTROLLER_FAMILIES:
                assert outcome.violations == (), (
                    outcome.cell,
                    outcome.violations,
                )

    def test_reproducers_are_minimal_and_reparse(self, campaign):
        assert campaign.reproducers
        for cell, spec in campaign.reproducers:
            assert len(spec.split(";")) <= 2, (cell, spec)
            assert parse_fault_plan(spec).active

    def test_ranking_orders_unsafe_last(self, campaign):
        ranking = campaign.ranking()
        assert ranking[-1][0] == "unsafe"
        assert ranking[-1][3] > 0
        # Best-first: violation counts never decrease down the table.
        counts = [row[3] for row in ranking]
        assert counts == sorted(counts)

    def test_summary_dict_is_json_ready(self, campaign):
        digest = campaign.summary_dict()
        assert json.loads(json.dumps(digest)) == digest
        assert digest["cells"] == campaign.checked
        assert digest["violations"] > 0


_REPRO_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.faults.campaign import run_campaign
from repro.studies.common import QUICK

result = run_campaign(
    scale=QUICK, controllers=("static",), budget_cells=2, seed=3
)
print(json.dumps(result.summary_dict(), sort_keys=True))
"""


class TestBitReproducibility:
    def test_identical_across_hash_seeds(self, tmp_path):
        """The campaign digest must be byte-identical across processes
        with different PYTHONHASHSEED values: nothing in enumeration,
        sampling, execution, or scoring may depend on hash order."""
        script = tmp_path / "campaign_digest.py"
        script.write_text(_REPRO_SCRIPT.format(src=SRC))
        digests = []
        for hash_seed in ("0", "42"):
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            digests.append(proc.stdout)
        assert digests[0] == digests[1]
        assert json.loads(digests[0])["violations"] == 0
