"""Contracts of the continuous benchmark runner (``benchmarks/run.py``).

Pure-logic tests: the regression gate and metadata stamps are exercised
on synthetic report/baseline dicts, plus a check that the committed
BENCH_10.json actually carries the claims this PR's acceptance criteria
rest on (machine metadata, and the >=5x steady-grid speedup).
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.run import (
    POINT_REGRESSION_TOLERANCE,
    check_against_baseline,
    machine_metadata,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _report(agg=100.0, points=(), fastpath_modes=None):
    report = {
        "events_per_second": agg,
        "points": [
            {"label": label, "events_per_second": eps} for label, eps in points
        ],
    }
    if fastpath_modes is not None:
        report["fastpath"] = {
            "modes": {
                mode: {"effective_events_per_second": eff, "speedup": s}
                for mode, (eff, s) in fastpath_modes.items()
            }
        }
    return report


class TestRegressionGate:
    def test_clean_run_passes(self):
        ok, message = check_against_baseline(
            _report(agg=100.0, points=(("a", 50.0),)),
            baseline=_report(agg=100.0, points=(("a", 50.0),)),
        )
        assert ok
        assert message.startswith("ok")

    def test_all_regressions_are_named_not_just_the_first(self):
        current = _report(
            agg=50.0,
            points=(("a", 10.0), ("b", 50.0), ("c", 10.0)),
            fastpath_modes={"splice": (100.0, 2.0), "batch": (100.0, 2.0)},
        )
        baseline = _report(
            agg=100.0,
            points=(("a", 50.0), ("b", 50.0), ("c", 50.0)),
            fastpath_modes={"splice": (500.0, 9.0), "batch": (100.0, 2.0)},
        )
        ok, message = check_against_baseline(current, baseline)
        assert not ok
        assert "REGRESSION in 4 benchmark(s)" in message
        for name in ("aggregate events/sec", "a", "c", "fastpath splice"):
            assert name in message, f"{name!r} missing from:\n{message}"
        assert "b:" not in message  # unregressed points are not accused
        assert "fastpath batch" not in message

    def test_points_gate_wider_than_aggregate(self):
        drop = 1.0 - POINT_REGRESSION_TOLERANCE + 0.01
        ok, _ = check_against_baseline(
            _report(agg=100.0, points=(("a", 50.0 * drop),)),
            baseline=_report(agg=100.0, points=(("a", 50.0),)),
        )
        assert ok, "a within-tolerance point drop must not fail the gate"

    def test_unknown_points_are_ignored(self):
        """New benchmarks gate only once the baseline is re-pinned."""
        ok, _ = check_against_baseline(
            _report(points=(("brand-new", 1.0),)),
            baseline=_report(points=()),
        )
        assert ok

    def test_fastpath_modes_gate_on_speedup(self):
        """Absolute effective rates are machine noise; the ratio gates."""
        ok, message = check_against_baseline(
            _report(fastpath_modes={"splice": (999999.0, 4.0)}),
            baseline=_report(fastpath_modes={"splice": (100.0, 9.0)}),
        )
        assert not ok
        assert "fastpath splice speedup" in message


class TestMachineMetadata:
    def test_metadata_names_the_runtime(self):
        meta = machine_metadata()
        assert isinstance(meta["cpu_count"], int) and meta["cpu_count"] >= 1
        assert meta["python"].count(".") == 2
        assert meta["platform"]


class TestCommittedBenchReport:
    def test_bench_10_carries_machine_metadata(self):
        report = json.loads((REPO_ROOT / "BENCH_10.json").read_text())
        assert report["machine"]["cpu_count"] >= 1
        assert report["machine"]["python"]

    def test_bench_10_meets_the_steady_grid_speedup_claim(self):
        report = json.loads((REPO_ROOT / "BENCH_10.json").read_text())
        assert report["fastpath"]["steady_speedup"] >= 5.0
