"""Scenario generation and comparison for the fastpath differential harness.

A :class:`Scenario` is a flat bag of knobs -- device, workload shape,
seed, fastpath mode, optional fault plan or policy -- from which both
sides of one differential pair are built: the exact run (``fastpath=None``)
and the accelerated run (identical config plus ``FastpathOptions``).
:func:`run_pair` executes both; :func:`compare` applies the declared
tolerances from :mod:`tests.equivalence.tolerances` according to what the
fastpath actually did (declined -> bit identity, batch -> float noise,
splice -> statistical bounds) and returns human-readable divergences.

Knobs are deliberately flat scalars so :mod:`tests.equivalence.shrink`
can delta-debug a diverging scenario toward :data:`BASELINE` one knob at
a time.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from hypothesis import strategies as st

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.iogen.spec import IoPattern, JobSpec
from repro.sim.fastpath import FastpathOptions

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from golden_result import flatten  # noqa: E402

from tests.equivalence import tolerances as tol  # noqa: E402

__all__ = [
    "BASELINE",
    "DECLINE_DEVICES",
    "ENGAGE_DEVICES",
    "Scenario",
    "changed_knobs",
    "compare",
    "decline_scenarios",
    "engage_scenarios",
    "run_pair",
]

#: Devices whose read path is fastpath-eligible (no program-intensity
#: wave, no rail audit): the gate engages here.
ENGAGE_DEVICES = ("ssd3", "860evo", "pm1743")

#: Devices that always decline (their power wave draws per-toggle RNG
#: during reads, which neither fastpath mode can replay).
DECLINE_DEVICES = ("ssd1", "ssd2")

_PATTERNS = {p.value: p for p in IoPattern}


@dataclass(frozen=True)
class Scenario:
    """One differential test case, as flat shrinkable knobs."""

    device: str = "ssd3"
    pattern: str = "randread"
    block_kib: int = 64
    iodepth: int = 8
    runtime_ms: int = 4
    seed: int = 7
    mode: str = "auto"
    power_state: Optional[int] = None
    faults: Optional[str] = None
    policy: bool = False

    def describe(self) -> str:
        return " ".join(
            f"{name}={getattr(self, name)!r}"
            for name in changed_knobs(self) or ("device",)
        )


#: The all-defaults scenario every shrink converges toward: an eligible
#: random-read job the fastpath engages on.
BASELINE = Scenario()


def changed_knobs(scenario: Scenario) -> tuple:
    """The knob names on which ``scenario`` differs from :data:`BASELINE`."""
    return tuple(
        f.name
        for f in dataclasses.fields(Scenario)
        if getattr(scenario, f.name) != getattr(BASELINE, f.name)
    )


def _configs(scenario: Scenario) -> tuple[ExperimentConfig, ExperimentConfig]:
    """The (exact, fastpath) config pair for one scenario."""
    plan = None
    if scenario.faults is not None:
        from repro.faults import parse_fault_plan

        plan = parse_fault_plan(scenario.faults)
    policy = None
    if scenario.policy:
        from repro.policy import BudgetSchedule, PolicySpec

        policy = PolicySpec(
            kind="feedback",
            budget=BudgetSchedule.constant(8.0),
            interval_s=1e-3,
            window_s=2e-3,
        )
    exact = ExperimentConfig(
        device=scenario.device,
        job=JobSpec(
            pattern=_PATTERNS[scenario.pattern],
            block_size=scenario.block_kib * KiB,
            iodepth=scenario.iodepth,
            runtime_s=scenario.runtime_ms * 1e-3,
            size_limit_bytes=256 * MiB,
        ),
        power_state=scenario.power_state,
        seed=scenario.seed,
        faults=plan,
        policy=policy,
    )
    fast = dataclasses.replace(
        exact, fastpath=FastpathOptions(mode=scenario.mode)
    )
    return exact, fast


def run_pair(scenario: Scenario) -> tuple[ExperimentResult, ExperimentResult]:
    """Run the exact and fastpath sides of one scenario."""
    exact_config, fast_config = _configs(scenario)
    return run_experiment(exact_config), run_experiment(fast_config)


def _strip(result: ExperimentResult) -> object:
    """Flatten a result with the fastpath bookkeeping removed.

    The accelerated run necessarily differs in its ``config.fastpath``
    and ``result.fastpath`` fields; bit-identity is claimed for (and
    checked over) everything else.
    """
    return flatten(
        dataclasses.replace(
            result,
            config=dataclasses.replace(result.config, fastpath=None),
            fastpath=None,
        )
    )


def _rel(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


def _metric_rows(exact, fast, mode):
    """(name, exact value, fast value, allowed rtol) per compared metric."""
    batch = mode == "batch"
    rows = [
        (
            "true_mean_power_w",
            exact.true_mean_power_w,
            fast.true_mean_power_w,
            tol.BATCH_MEAN_POWER_RTOL if batch else tol.SPLICE_MEAN_POWER_RTOL,
        ),
        (
            "throughput_bps",
            exact.throughput_bps,
            fast.throughput_bps,
            tol.BATCH_THROUGHPUT_RTOL if batch else tol.SPLICE_THROUGHPUT_RTOL,
        ),
    ]
    if exact.job.records and fast.job.records:
        lat_exact, lat_fast = exact.latency(), fast.latency()
        if batch:
            p50_rtol = tol.BATCH_P50_LATENCY_RTOL
            p99_rtol = tol.BATCH_P99_LATENCY_RTOL
        else:
            p50_rtol = tol.SPLICE_P50_LATENCY_RTOL
            p99_rtol = tol.SPLICE_P99_LATENCY_RTOL
        rows.append(("p50_latency_s", lat_exact.p50, lat_fast.p50, p50_rtol))
        rows.append(("p99_latency_s", lat_exact.p99, lat_fast.p99, p99_rtol))
    return rows


def compare(exact: ExperimentResult, fast: ExperimentResult) -> list[str]:
    """Divergences between one differential pair, [] when equivalent.

    The contract applied depends on what the fastpath reports it did:
    a declined (or never-configured) fastpath must be bit-identical to
    the exact run; batch mode is held to float-noise tolerances; splice
    mode to its statistical bounds.  Every tolerance is a named constant
    from :mod:`tests.equivalence.tolerances`.
    """
    summary = fast.fastpath
    divergences: list[str] = []
    if summary is None or not summary.engaged:
        reason = "no fastpath summary" if summary is None else summary.reason
        if _strip(exact) != _strip(fast):
            divergences.append(
                f"declined fastpath ({reason}) is not bit-identical to the "
                "exact run"
            )
        return divergences

    n_exact, n_fast = len(exact.job.records), len(fast.job.records)
    if summary.mode == "batch":
        if abs(n_exact - n_fast) > tol.BATCH_IO_COUNT_ABS:
            divergences.append(
                f"io_count: exact={n_exact} batch={n_fast} "
                f"(allowed abs {tol.BATCH_IO_COUNT_ABS})"
            )
        else:
            # The central batch claim: the record sequence is bit
            # identical, tie interleavings included (the sweep is
            # hop-faithful to the engine's (time, seq) discipline).
            worst = max(
                (
                    max(
                        abs(a.submit_time - b.submit_time),
                        abs(a.complete_time - b.complete_time),
                    )
                    for a, b in zip(exact.job.records, fast.job.records)
                ),
                default=0.0,
            )
            if worst > tol.BATCH_EVENT_TIME_ABS_S:
                divergences.append(
                    f"record sequence differs (worst event-time delta "
                    f"{worst:.3g}s > {tol.BATCH_EVENT_TIME_ABS_S})"
                )
    else:
        if n_exact and _rel(n_exact, n_fast) > tol.SPLICE_IO_COUNT_RTOL:
            divergences.append(
                f"io_count: exact={n_exact} splice={n_fast} "
                f"(rel {_rel(n_exact, n_fast):.4f} > "
                f"{tol.SPLICE_IO_COUNT_RTOL})"
            )
    for name, a, b, rtol in _metric_rows(exact, fast, summary.mode):
        if _rel(a, b) > rtol:
            divergences.append(
                f"{name}: exact={a:.6g} {summary.mode}={b:.6g} "
                f"(rel {_rel(a, b):.4g} > {rtol})"
            )
    return divergences


# -- hypothesis strategies ----------------------------------------------


def engage_scenarios() -> st.SearchStrategy[Scenario]:
    """Scenarios inside the fastpath's engagement domain.

    Read-only jobs on wave-free devices; the gate may still decline
    (e.g. splice finding no stationary window), which :func:`compare`
    then holds to bit identity -- also a correctness claim worth
    fuzzing.
    """

    def build(device: str) -> st.SearchStrategy[Scenario]:
        power_states = (
            st.sampled_from((None, 0, 1, 2))
            if device == "pm1743"
            else st.none()
        )
        return st.builds(
            Scenario,
            device=st.just(device),
            pattern=st.sampled_from(("read", "randread")),
            block_kib=st.sampled_from((4, 16, 64, 128)),
            iodepth=st.sampled_from((1, 2, 4, 8, 16)),
            runtime_ms=st.sampled_from((2, 3, 4, 5)),
            seed=st.integers(min_value=0, max_value=2**20),
            mode=st.sampled_from(("auto", "splice", "batch")),
            power_state=power_states,
        )

    return st.sampled_from(ENGAGE_DEVICES).flatmap(build)


def decline_scenarios() -> st.SearchStrategy[Scenario]:
    """Scenarios the eligibility gate must refuse, each for one cause.

    Covers every decline clause: wavy devices, mutating (write)
    workloads, fault plans, and online policies.  The contract here is
    the strongest one -- bit identity with the exact run.
    """
    wave_device = st.builds(
        Scenario,
        device=st.sampled_from(DECLINE_DEVICES),
        pattern=st.sampled_from(("read", "randread")),
        iodepth=st.sampled_from((2, 8)),
        seed=st.integers(min_value=0, max_value=2**20),
        mode=st.sampled_from(("auto", "splice", "batch")),
    )
    writes = st.builds(
        Scenario,
        device=st.sampled_from(ENGAGE_DEVICES),
        pattern=st.sampled_from(("write", "randwrite")),
        iodepth=st.sampled_from((2, 8)),
        seed=st.integers(min_value=0, max_value=2**20),
        mode=st.sampled_from(("auto", "splice", "batch")),
    )
    faulted = st.builds(
        Scenario,
        faults=st.sampled_from(
            (
                "governor:at=0.002",
                "io_error:p=0.05",
                "spike:at=0.001,dur=0.002,extra=2e-4",
            )
        ),
        seed=st.integers(min_value=0, max_value=2**20),
        mode=st.sampled_from(("auto", "splice", "batch")),
    )
    policied = st.builds(
        Scenario,
        policy=st.just(True),
        seed=st.integers(min_value=0, max_value=2**20),
        mode=st.sampled_from(("auto", "splice", "batch")),
    )
    return st.one_of(wave_device, writes, faulted, policied)
