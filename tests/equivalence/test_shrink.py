"""The harness can catch its own quarry: tamper, shrink, report.

Two layers:

- Unit tests pin :func:`tests.equivalence.shrink.shrink_scenario`'s
  contract (1-minimality, rejection of non-diverging input) against a
  synthetic divergence predicate, with no simulator in the loop.
- An end-to-end drill tampers the batch kernel (a seeded, conditional
  record perturbation -- the kind of bug the differential harness
  exists to catch), confirms the harness flags it, delta-debugs the
  reproducer down to at most two knobs, and pushes the failure through
  the run ledger so ``repro report`` exits non-zero and names the
  broken invariant.  If this test ever fails, the safety net itself has
  a hole.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro._units import KiB
from repro.cli import main as cli_main
from repro.core.ledger import RunLedger, run_record
from repro.iogen.stats import IoRecord
from repro.validate.report import ValidationReport, Violation

from tests.equivalence.scenarios import (
    BASELINE,
    Scenario,
    changed_knobs,
    compare,
    run_pair,
)
from tests.equivalence.shrink import shrink_scenario


class TestShrinkScenario:
    def test_rejects_a_non_diverging_scenario(self):
        with pytest.raises(ValueError):
            shrink_scenario(BASELINE, lambda s: False)

    def test_resets_irrelevant_knobs(self):
        start = Scenario(block_kib=128, iodepth=16, seed=99, runtime_ms=3)
        diverges = lambda s: s.block_kib == 128 and s.iodepth == 16  # noqa: E731
        shrunk = shrink_scenario(start, diverges)
        assert set(changed_knobs(shrunk)) == {"block_kib", "iodepth"}

    def test_result_is_one_minimal(self):
        start = Scenario(block_kib=128, iodepth=16, seed=99)
        diverges = lambda s: s.block_kib == 128 and s.iodepth == 16  # noqa: E731
        shrunk = shrink_scenario(start, diverges)
        for name in changed_knobs(shrunk):
            relaxed = dataclasses.replace(
                shrunk, **{name: getattr(BASELINE, name)}
            )
            assert not diverges(relaxed), (
                f"resetting {name} should lose the divergence"
            )


class TestSeededTamper:
    def test_tamper_is_caught_shrunk_and_reported(
        self, monkeypatch, tmp_path, capsys
    ):
        import repro.sim.fastpath.driver as driver

        real = driver.run_batched_read_job

        def tampered(engine, device, job):
            # The seeded fault: on 16 KiB blocks only, nudge the last
            # completion by a microsecond -- small, conditional, and
            # invisible to counts or byte totals.
            n = real(engine, device, job)
            if job.spec.block_size == 16 * KiB and job.records:
                last = job.records[-1]
                job.records[-1] = IoRecord(
                    last.submit_time, last.complete_time + 1e-6, last.nbytes
                )
            return n

        monkeypatch.setattr(driver, "run_batched_read_job", tampered)

        def diverges(scenario):
            exact, fast = run_pair(scenario)
            return (
                fast.fastpath.engaged
                and fast.fastpath.mode == "batch"
                and bool(compare(exact, fast))
            )

        # The "fuzzer finding": a diverging scenario buried in noise knobs.
        found = Scenario(block_kib=16, seed=123, runtime_ms=3, mode="batch")
        assert diverges(found), "the tampered kernel must diverge"

        shrunk = shrink_scenario(found, diverges)
        knobs = changed_knobs(shrunk)
        assert len(knobs) <= 2, f"reproducer not minimal: {knobs}"
        assert "block_kib" in knobs, (
            "the tamper trigger must survive shrinking"
        )

        # Close the loop: the divergence lands in the run ledger as a
        # failed fastpath_equivalence validation, and `repro report`
        # surfaces it with a non-zero exit.
        exact, fast = run_pair(shrunk)
        divergences = compare(exact, fast)
        report = ValidationReport(
            violations=tuple(
                Violation(
                    invariant="fastpath_equivalence",
                    subject=shrunk.describe(),
                    message=text,
                    measured=0.0,
                    expected=0.0,
                )
                for text in divergences
            ),
            checked=1,
            invariants=("fastpath_equivalence",),
        )
        assert not report.ok
        ledger_path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(ledger_path)
        ledger.append(
            run_record("sweep", validation=report, points=1, failures=0)
        )

        code = cli_main(["report", "--ledger", str(ledger_path)])
        out = capsys.readouterr().out
        assert code == 1, "a failed validation must fail the report"
        assert "fastpath_equivalence" in out
