"""Every numeric tolerance the differential harness is allowed to use.

House rule (enforced by ``tools/check_tolerances.py``): no approximate
assertion anywhere in ``tests/equivalence/`` may carry an inline magic
epsilon -- every slack must be one of these named constants, so each
carries its rationale and widening one is a reviewed decision, not a
drive-by edit.

Three regimes, three very different contracts:

- **Decline domain** (the fastpath gate refuses: writes, faults,
  policies, wavy devices).  The run falls back to the exact kernel, so
  the contract is *bit identity* -- there is no tolerance, and none is
  defined here on purpose.  Comparison is flatten()-equality over the
  whole result.

- **Batch mode** (flat event sweep).  The sweep replays the event
  kernel's queueing discipline station by station in arrival order, so
  it is exact up to same-instant tie ordering between unrelated
  stations (two events at the identical float timestamp, where the
  engine's global sequence counter interleaves them differently than
  the flat heap).  Random workloads essentially never tie; structured
  sequential ones tie benignly.  The tolerances are therefore float-
  noise-sized, not statistical.

- **Splice mode** (analytic steady-state fast-forward).  Skipped
  windows are *replicated*, not re-simulated: the resumed tail sees the
  same RNG stream but a different in-flight interleaving than the
  un-spliced run, so aggregate metrics agree statistically rather than
  exactly.  The tolerances bound how far the stationarity detector's
  own acceptance thresholds (rate/power within 2%, latency within 10%)
  can let the replica drift from the ground truth, with tail quantiles
  wider than medians because a p99 over a few hundred records moves in
  whole-record quanta.
"""

# -- batch mode: hop-faithful flat sweep --------------------------------
# IO count must agree exactly: the sweep evaluates the worker stop rule
# at bit-identical submit instants.
BATCH_IO_COUNT_ABS = 0
# The central batch claim: the per-IO (submit, complete) record sequence
# is bit-identical to the exact kernel's, *including* same-instant tie
# interleavings, because the sweep schedules a flat counterpart of every
# engine hop at the same instant and assigns sequence numbers at the
# same moments (see repro/sim/fastpath/batch.py).  Any timing or
# ordering divergence -- wrong service time, wrong queue discipline, a
# tie broken differently -- perturbs this sequence; zero slack.
BATCH_EVENT_TIME_ABS_S = 0.0
# Bit-identical records make throughput exact too; mean power can move
# by float summation order only (the sweep folds same-instant power
# edges in sorted order, the engine applies them in callback order).
BATCH_MEAN_POWER_RTOL = 1e-6
BATCH_THROUGHPUT_RTOL = 1e-6
# Latency quantiles are computed from the bit-identical records, so
# these bounds cover nothing but the comparison arithmetic itself.
BATCH_P50_LATENCY_RTOL = 1e-9
BATCH_P99_LATENCY_RTOL = 1e-9

# -- splice mode: statistical resume ------------------------------------
# The detector admits windows whose completion rate drifts up to 2%
# between observations; replicating such a window and resuming mid-queue
# can shift the total completed count by a few window-to-window drifts.
SPLICE_IO_COUNT_RTOL = 0.05
# Mean power over the run mixes exact segments with replicated windows
# the detector certified to 2%; the mix cannot drift further than that
# certification plus edge effects at the splice boundaries.
SPLICE_MEAN_POWER_RTOL = 0.03
SPLICE_THROUGHPUT_RTOL = 0.05
# Medians move little under resumed-interleaving noise; the detector
# itself certifies latency stationarity only to 10%.
SPLICE_P50_LATENCY_RTOL = 0.10
# Tail quantiles over a few hundred records move in whole-record quanta
# and the post-splice transient lands entirely in the tail.
SPLICE_P99_LATENCY_RTOL = 0.20
