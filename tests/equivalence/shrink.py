"""Delta-debugging for diverging differential scenarios.

When the harness finds a scenario whose fastpath run diverges from the
exact run, the raw reproducer is a bag of up to ten knobs -- most of
them irrelevant.  :func:`shrink_scenario` greedily resets knobs to their
:data:`~tests.equivalence.scenarios.BASELINE` values while the
divergence persists (the same 1-minimal discipline as
:func:`repro.faults.campaign.shrink_plan` uses over fault-grammar
clauses), so what survives is the smallest knob set that still breaks
equivalence -- the thing a human actually debugs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from tests.equivalence.scenarios import BASELINE, Scenario, changed_knobs

__all__ = ["shrink_scenario"]


def shrink_scenario(
    scenario: Scenario, diverges: Callable[[Scenario], bool]
) -> Scenario:
    """Greedily reset knobs to baseline while ``diverges`` stays true.

    Returns a 1-minimal scenario: resetting any single remaining
    non-baseline knob loses the divergence.  ``diverges(scenario)`` must
    be true on entry (the caller found the divergence; shrinking cannot
    invent one).
    """
    if not diverges(scenario):
        raise ValueError("shrink_scenario needs a diverging scenario to start")
    shrunk = True
    while shrunk:
        shrunk = False
        for name in changed_knobs(scenario):
            candidate = dataclasses.replace(
                scenario, **{name: getattr(BASELINE, name)}
            )
            if diverges(candidate):
                scenario = candidate
                shrunk = True
                break
    return scenario
