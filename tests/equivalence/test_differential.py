"""The fastpath equivalence gate: fastpath-on vs fastpath-off, fuzzed.

Two hypothesis properties split the scenario space along the
eligibility gate:

- **Engage domain** (eligible read jobs): the accelerated result must
  match the exact result within the declared tolerances of
  :mod:`tests.equivalence.tolerances` -- float noise for batch mode,
  statistical bounds for splice mode, bit identity whenever the gate
  declined after all.
- **Decline domain** (writes, faults, policies, wavy devices): the gate
  must refuse, and refusing must cost nothing -- the result is
  bit-for-bit identical to a run that never configured a fastpath.

Together the two properties run 240 generated scenarios (480 simulator
runs), which keeps the whole module inside the CI budget of roughly a
minute.  A zero-cost subprocess test additionally pins that the
no-fastpath path never even imports ``repro.sim.fastpath``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings

from tests.equivalence.scenarios import (
    Scenario,
    compare,
    decline_scenarios,
    engage_scenarios,
    run_pair,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    derandomize=True,  # CI stability: the corpus is the spec, not a dice roll
)


class TestEngageDomain:
    @settings(max_examples=150, **_SETTINGS)
    @given(scenario=engage_scenarios())
    def test_accelerated_runs_match_exact_within_tolerances(self, scenario):
        exact, fast = run_pair(scenario)
        divergences = compare(exact, fast)
        assert not divergences, (
            f"fastpath diverged on {scenario.describe()} "
            f"(mode={fast.fastpath.mode}, engaged={fast.fastpath.engaged}): "
            + "; ".join(divergences)
        )

    def test_batch_engages_on_the_baseline_scenario(self):
        """The all-defaults scenario must actually exercise the fastpath
        (a gate that declined everything would pass the property above
        vacuously)."""
        _, fast = run_pair(Scenario(mode="batch"))
        assert fast.fastpath.engaged and fast.fastpath.mode == "batch"
        assert fast.fastpath.batched_ios == len(fast.job.records) > 0
        assert fast.fastpath.events_fast_forwarded > 0

    def test_splice_engages_on_a_steady_scenario(self):
        # Splice needs runway: the detector observes ~3 windows of 96
        # completions before its first probe, then skips whole windows.
        _, fast = run_pair(
            Scenario(device="pm1743", runtime_ms=40, mode="splice")
        )
        assert fast.fastpath.engaged and fast.fastpath.mode == "splice"
        assert fast.fastpath.splices
        assert fast.fastpath.time_fast_forwarded_s > 0


class TestDeclineDomain:
    @settings(max_examples=90, **_SETTINGS)
    @given(scenario=decline_scenarios())
    def test_declined_runs_are_bit_identical(self, scenario):
        exact, fast = run_pair(scenario)
        assert not fast.fastpath.engaged, (
            f"gate engaged outside its domain on {scenario.describe()} "
            f"(mode={fast.fastpath.mode})"
        )
        divergences = compare(exact, fast)
        assert not divergences, (
            f"declined fastpath perturbed the run on {scenario.describe()}: "
            + "; ".join(divergences)
        )

    def test_decline_reasons_name_the_gate(self):
        cases = {
            Scenario(device="ssd1"): "wave",
            Scenario(pattern="randwrite"): "write",
            Scenario(faults="governor:at=0.002"): "fault",
            Scenario(policy=True): "polic",
        }
        for scenario, needle in cases.items():
            _, fast = run_pair(scenario)
            assert not fast.fastpath.engaged
            assert needle in fast.fastpath.reason, (
                f"{scenario.describe()}: reason {fast.fastpath.reason!r} "
                f"does not mention {needle!r}"
            )


ZERO_IMPORT_SCRIPT = """
import sys
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core import sweep  # the sweep layer must not need it either
from repro.iogen.spec import IoPattern, JobSpec

for name in [m for m in sys.modules if m.startswith("repro.sim.fastpath")]:
    del sys.modules[name]


class Poison:
    def find_spec(self, name, path=None, target=None):
        if name.startswith("repro.sim.fastpath"):
            raise ImportError(
                "repro.sim.fastpath loaded on the no-fastpath path: " + name
            )
        return None


sys.meta_path.insert(0, Poison())
run_experiment(ExperimentConfig(
    device="ssd3",
    job=JobSpec(IoPattern.RANDREAD, block_size=16384, iodepth=4,
                runtime_s=0.005, size_limit_bytes=2 * 1024 * 1024),
))
assert not any(m.startswith("repro.sim.fastpath") for m in sys.modules)
print("clean")
"""


class TestZeroCost:
    def test_no_fastpath_run_never_imports_the_package(self):
        """``fastpath=None`` must keep repro.sim.fastpath entirely
        unloaded -- the opt-out is free, byte for byte."""
        proc = subprocess.run(
            [sys.executable, "-c", ZERO_IMPORT_SCRIPT],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "clean"
