"""The public API surface, pinned.

``repro.api`` (mirrored by the ``repro`` top level) is the supported
import surface.  ``PUBLIC_API`` below is the snapshot: adding or
removing a public name without editing this list fails the suite, so
the surface can only change deliberately.  To change it, change
``repro/api.py`` *and* ``repro/__init__.py`` *and* this snapshot in the
same commit, and say why in the commit message.

The import lint half (``tools/check_api_surface.py``) keeps README code
blocks and ``examples/`` honest about importing only these names.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_api_surface  # noqa: E402

import repro  # noqa: E402
import repro.api  # noqa: E402

#: The supported surface.  Keep sorted; keep in sync with repro/api.py.
PUBLIC_API = (
    "AbsorptionResult",
    "ActuatorFaultSpec",
    "AdaptivePlan",
    "AdcConfig",
    "AlpmController",
    "AsymmetricPlan",
    "AsymmetricPlanner",
    "AtaPowerMode",
    "BucketedHistogram",
    "BudgetAllocator",
    "BudgetSchedule",
    "BudgetSignal",
    "BudgetSplit",
    "CheckpointJournal",
    "ClusterGovernor",
    "ControlAction",
    "ControllerConfig",
    "DEFAULT",
    "DEVICE_PRESETS",
    "DemandResponseResult",
    "DeviceView",
    "Engine",
    "EventKind",
    "ExecutionOptions",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "FeedbackBudgetPolicy",
    "FleetAllocation",
    "FleetModel",
    "FleetResult",
    "FleetSpec",
    "GiB",
    "HysteresisLadderPolicy",
    "IOKind",
    "IORequest",
    "IOResult",
    "InvariantViolationError",
    "IoPattern",
    "JobSpec",
    "KiB",
    "LinkPowerMode",
    "MeterConfig",
    "MetricsCollector",
    "MetricsRegistry",
    "MiB",
    "ModelPoint",
    "NullTracer",
    "NvmeCli",
    "OnlinePowerController",
    "PointFailure",
    "PointSpan",
    "PointState",
    "PolicySpec",
    "PolicySummary",
    "PowerAdaptivePlanner",
    "PowerMeter",
    "PowerThroughputModel",
    "ProgressUpdate",
    "QUICK",
    "RedirectionDecision",
    "RedirectionPolicy",
    "ResultCache",
    "RetryPolicy",
    "RngStreams",
    "RunLedger",
    "RunProfiler",
    "SensorFaultSpec",
    "SimEvent",
    "StandbyProfile",
    "StaticCapPolicy",
    "StorageDevice",
    "StudyScale",
    "SweepExecutionError",
    "SweepGrid",
    "SweepOutcome",
    "SweepPoint",
    "SweepRollup",
    "SweepTelemetry",
    "Tolerances",
    "Tracer",
    "ValidationReport",
    "Violation",
    "WatchdogSpec",
    "WorkerStats",
    "WriteAbsorptionScenario",
    "build_device",
    "build_model",
    "build_policy",
    "check_power_mode",
    "idle_immediate",
    "merge_snapshots",
    "parse_fault_plan",
    "render_fault_plan",
    "run_configs",
    "run_demand_response",
    "run_experiment",
    "run_fleet",
    "run_sweep",
    "standby_immediate",
    "sweep_outcome",
    "validate_outcome",
    "validate_result",
)


class TestSurfaceSnapshot:
    def test_api_matches_snapshot(self):
        """A name appearing in or vanishing from ``repro.api`` must come
        with a deliberate snapshot update here."""
        assert tuple(repro.api.__all__) == PUBLIC_API, (
            "repro.api.__all__ diverged from the PUBLIC_API snapshot in "
            "tests/test_api_surface.py; if the change is intentional, "
            "update the snapshot (and repro/__init__.py) in the same "
            "commit"
        )

    def test_top_level_mirrors_api(self):
        assert tuple(n for n in repro.__all__ if n != "__version__") == (
            PUBLIC_API
        )
        assert "__version__" in repro.__all__

    def test_snapshot_is_sorted(self):
        assert tuple(sorted(PUBLIC_API)) == PUBLIC_API

    def test_every_name_resolves_identically(self):
        """``repro.X`` and ``repro.api.X`` are the same objects."""
        for name in PUBLIC_API:
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_no_undeclared_public_attributes(self):
        """Nothing module-like or underscore-private leaks into the
        declared surface."""
        for name in PUBLIC_API:
            assert not name.startswith("_")
            assert not type(getattr(repro.api, name)).__name__ == "module"


class TestApiSurfaceLint:
    def test_repo_is_clean(self):
        """README code blocks and examples/ import only repro/repro.api."""
        assert check_api_surface.main([]) == 0

    def _seed_tree(self, tmp_path, readme="", example=""):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text(
            '__all__ = ["run_experiment"]\n'
        )
        (tmp_path / "examples").mkdir()
        (tmp_path / "README.md").write_text(readme)
        if example:
            (tmp_path / "examples" / "demo.py").write_text(example)
        return tmp_path

    def test_detects_deep_import_in_example(self, tmp_path, capsys):
        root = self._seed_tree(
            tmp_path, example="from repro.core.parallel import run_configs\n"
        )
        assert check_api_surface.main([str(root)]) == 1
        assert "examples/demo.py:1" in capsys.readouterr().out

    def test_detects_deep_import_in_readme_block(self, tmp_path, capsys):
        readme = "# t\n\n```python\nfrom repro.sim.engine import Engine\n```\n"
        root = self._seed_tree(tmp_path, readme=readme)
        assert check_api_surface.main([str(root)]) == 1
        assert "README.md:4" in capsys.readouterr().out

    def test_detects_unknown_public_name(self, tmp_path, capsys):
        root = self._seed_tree(
            tmp_path, example="from repro import not_a_real_name\n"
        )
        assert check_api_surface.main([str(root)]) == 1
        assert "not_a_real_name" in capsys.readouterr().out

    def test_accepts_supported_imports(self, tmp_path):
        readme = "```python\nfrom repro import run_experiment\n```\n"
        root = self._seed_tree(
            tmp_path,
            readme=readme,
            example="import repro\nfrom repro.api import run_experiment\n",
        )
        assert check_api_surface.main([str(root)]) == 0

    def test_non_repro_imports_ignored(self, tmp_path):
        root = self._seed_tree(
            tmp_path, example="import numpy as np\nfrom pathlib import Path\n"
        )
        assert check_api_surface.main([str(root)]) == 0
