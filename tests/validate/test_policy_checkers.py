"""The policy-facing invariants: budget_tracking, slo_adherence, and the
cap-adherence exemption -- plus the governor cap-clobber regression.

Tamper-style like test_checkers.py: run one real policy experiment, then
forge violations into frozen copies with ``dataclasses.replace`` and
assert the checkers flag exactly the forged defect.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.devices.ssd import SimulatedSSD
from repro.faults import parse_fault_plan
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy import BudgetSchedule, PolicySpec
from repro.validate.checkers import RESULT_INVARIANTS, check_result
from tests.conftest import drive, tiny_ssd_config


def invariants_hit(result) -> set[str]:
    return {v.invariant for v in check_result(result)}


def _policy_config(faults=None, **spec_kw):
    spec_kw.setdefault(
        "budget", BudgetSchedule.step(high_w=18.0, low_w=3.2, period_s=0.01)
    )
    return ExperimentConfig(
        device=tiny_ssd_config(),
        job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=64 * KiB,
            iodepth=8,
            runtime_s=0.02,
            size_limit_bytes=8 * MiB,
        ),
        seed=5,
        warmup_fraction=0.25,
        faults=faults,
        policy=PolicySpec(
            kind="feedback", interval_s=1e-3, window_s=2e-3, **spec_kw
        ),
    )


@pytest.fixture(scope="module")
def policy_result():
    return run_experiment(_policy_config())


@pytest.fixture(scope="module")
def governor_failed_result():
    return run_experiment(
        _policy_config(faults=parse_fault_plan("governor:at=0.005"))
    )


def _tamper_sample(result, **fields):
    """Copy ``result`` with its last retained sample overwritten."""
    summary = result.policy
    t, budget_w, target_w, measured_w = summary.samples[-1]
    sample = dict(
        t=t, budget_w=budget_w, target_w=target_w, measured_w=measured_w
    )
    sample.update(fields)
    samples = summary.samples[:-1] + (
        (
            sample["t"],
            sample["budget_w"],
            sample["target_w"],
            sample["measured_w"],
        ),
    )
    return replace(result, policy=replace(summary, samples=samples))


class TestBudgetTracking:
    def test_registered_invariants(self):
        assert "budget_tracking" in RESULT_INVARIANTS
        assert "slo_adherence" in RESULT_INVARIANTS

    def test_clean_policy_run_passes(self, policy_result):
        assert check_result(policy_result) == []

    def test_no_policy_result_is_exempt(self, policy_result):
        stripped = replace(
            policy_result,
            policy=None,
            config=replace(policy_result.config, policy=None),
        )
        assert "budget_tracking" not in invariants_hit(stripped)

    def test_target_above_budget_flagged(self, policy_result):
        tampered = _tamper_sample(policy_result, budget_w=3.2, target_w=9.0)
        violations = [
            v
            for v in check_result(tampered)
            if v.invariant == "budget_tracking"
        ]
        assert violations
        assert "commanded target" in violations[0].message

    def test_measured_blowout_flagged(self, policy_result):
        summary = policy_result.policy
        t = summary.samples[-1][0]
        tampered = _tamper_sample(
            policy_result,
            budget_w=3.2,
            target_w=summary.floor_w + 0.2,  # above floor, under budget
            measured_w=50.0,
        )
        assert t > summary.spec.window_s  # sample is past the transient
        violations = [
            v
            for v in check_result(tampered)
            if v.invariant == "budget_tracking"
        ]
        assert violations
        assert "measured trailing mean" in violations[0].message

    def test_floor_pinned_target_exempts_measured_check(self, policy_result):
        floor_w = policy_result.policy.floor_w
        tampered = _tamper_sample(
            policy_result, budget_w=3.2, target_w=floor_w, measured_w=50.0
        )
        assert "budget_tracking" not in invariants_hit(tampered)

    def test_startup_transient_exempt(self, policy_result):
        # Same blowout forged into the first sample: inside the settle
        # window, the measured check must not fire (the target check
        # keeps target_w honest even there).
        summary = policy_result.policy
        first = summary.samples[0]
        samples = (
            (first[0], 3.2, summary.floor_w + 0.2, 50.0),
        ) + summary.samples[1:]
        tampered = replace(
            policy_result, policy=replace(summary, samples=samples)
        )
        assert first[0] < summary.spec.window_s + (
            summary.spec.settle_intervals * summary.spec.interval_s * 1.25
        )
        assert "budget_tracking" not in invariants_hit(tampered)


class TestGovernorFailureInteraction:
    def test_fault_plan_run_passes(self, governor_failed_result):
        assert governor_failed_result.faults.governor_failed
        assert check_result(governor_failed_result) == []

    def test_measured_check_suspended(self, governor_failed_result):
        floor_w = governor_failed_result.policy.floor_w
        tampered = _tamper_sample(
            governor_failed_result,
            budget_w=3.2,
            target_w=floor_w + 0.2,
            measured_w=50.0,
        )
        assert "budget_tracking" not in invariants_hit(tampered)

    def test_target_check_still_fires(self, governor_failed_result):
        """The command side must stay sane even when the device is deaf."""
        tampered = _tamper_sample(
            governor_failed_result, budget_w=3.2, target_w=9.0
        )
        assert "budget_tracking" in invariants_hit(tampered)


class TestCapAdherenceExemption:
    def test_policy_run_exempt_from_whole_window_cap_check(
        self, policy_result
    ):
        """cap_w is only the *last* commanded target under a policy; the
        whole-window mean legitimately exceeds it after a generous phase.
        """
        tampered = replace(
            policy_result, cap_w=policy_result.true_mean_power_w / 2.0
        )
        assert not tampered.cap_respected
        assert "cap_adherence" not in invariants_hit(tampered)

    def test_plain_run_still_checked(self, policy_result):
        stripped = replace(
            policy_result,
            policy=None,
            config=replace(policy_result.config, policy=None),
            cap_w=policy_result.true_mean_power_w / 2.0,
        )
        assert "cap_adherence" in invariants_hit(stripped)


class TestSloAdherence:
    def test_met_slo_passes(self, policy_result):
        summary = policy_result.policy
        generous = replace(
            policy_result,
            policy=replace(
                summary, spec=replace(summary.spec, slo_p99_s=10.0)
            ),
        )
        assert "slo_adherence" not in invariants_hit(generous)

    def test_blown_slo_flagged(self, policy_result):
        summary = policy_result.policy
        strict = replace(
            policy_result,
            policy=replace(
                summary, spec=replace(summary.spec, slo_p99_s=1e-9)
            ),
        )
        violations = [
            v
            for v in check_result(strict)
            if v.invariant == "slo_adherence"
        ]
        assert violations
        assert "p99" in violations[0].message

    def test_no_slo_declared_no_check(self, policy_result):
        assert policy_result.policy.spec.slo_p99_s is None
        assert "slo_adherence" not in invariants_hit(policy_result)


class TestPolicyCapClobberRegression:
    """set_power_state/_wake used to overwrite the policy's governor cap.

    The device now composes the state cap with the policy cap (min wins)
    at every transition; these are the regression pins.
    """

    def _device(self, engine, rngs):
        return SimulatedSSD(engine, tiny_ssd_config(), rng=rngs)

    def test_policy_cap_composes_with_state_cap(self, engine, rngs):
        device = self._device(engine, rngs)
        assert device.governor.cap_w == 20.0  # ps0 resident
        device.set_policy_cap(3.0)
        assert device.governor.cap_w == 3.0
        # A looser policy cap defers to the state cap after ps1 (3.5 W).
        drive(engine, engine.process(device.set_power_state(1)))
        assert device.governor.cap_w == 3.0
        device.set_policy_cap(10.0)
        assert device.governor.cap_w == 3.5

    def test_state_transition_does_not_clobber_policy_cap(
        self, engine, rngs
    ):
        device = self._device(engine, rngs)
        device.set_policy_cap(3.0)
        drive(engine, engine.process(device.set_power_state(1)))
        # Regression: entering ps1 used to write its 3.5 W cap straight
        # through, silently widening the 3.0 W policy budget.
        assert device.governor.cap_w == 3.0

    def test_doze_wake_cycle_preserves_policy_cap(self, engine, rngs):
        device = self._device(engine, rngs)
        drive(engine, engine.process(device.set_power_state(1)))
        device.set_policy_cap(3.0)
        drive(engine, engine.process(device.enter_standby()))
        drive(engine, engine.process(device.exit_standby()))
        # Regression: _wake used to restore the operational state's cap
        # (3.5 W), dropping the policy cap until the next decision tick.
        assert device.governor.cap_w == 3.0

    def test_clearing_policy_cap_restores_state_cap(self, engine, rngs):
        device = self._device(engine, rngs)
        device.set_policy_cap(3.0)
        device.set_policy_cap(None)
        assert device.governor.cap_w == 20.0
