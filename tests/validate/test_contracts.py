"""Monotonicity contracts over synthetic and real sweep results.

The contracts read only four attributes of each result (throughput,
its MiB/s rendering, the intended cap, the realized mean power), so the
synthetic cases use a minimal stand-in dataclass; the real-sweep case
uses a genuine 4-point outcome from the session fixture.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern
from repro.validate import Tolerances
from repro.validate.contracts import CONTRACT_INVARIANTS, check_contracts


@dataclass(frozen=True)
class FakeResult:
    """The slice of ExperimentResult the contracts actually consume."""

    throughput_bps: float
    cap_w: Optional[float] = None
    true_mean_power_w: float = 5.0

    @property
    def throughput_mib_s(self) -> float:
        return self.throughput_bps / (1024 * 1024)


def pt(qd=8, bs=65536, ps=None) -> SweepPoint:
    return SweepPoint(IoPattern.RANDWRITE, bs, qd, ps)


class TestCapMonotonicity:
    def test_ordered_caps_clean(self):
        results = {
            pt(ps=0): FakeResult(900e6, cap_w=12.0),
            pt(ps=1): FakeResult(600e6, cap_w=10.0),
            pt(ps=2): FakeResult(400e6, cap_w=8.0),
        }
        assert check_contracts(results) == []

    def test_tighter_cap_winning_flagged(self):
        results = {
            pt(ps=0): FakeResult(500e6, cap_w=12.0),
            pt(ps=2): FakeResult(900e6, cap_w=8.0),
        }
        violations = check_contracts(results)
        assert [v.invariant for v in violations] == ["cap_monotonicity"]
        assert "8" in violations[0].message

    def test_uncapped_compares_as_loosest(self):
        # An uncapped point outrun by a capped one is an inversion.
        results = {
            pt(ps=None): FakeResult(400e6, cap_w=None),
            pt(ps=2): FakeResult(900e6, cap_w=8.0),
        }
        violations = check_contracts(results)
        assert "cap_monotonicity" in {v.invariant for v in violations}

    def test_slack_absorbs_noise(self):
        # 5% win for the tighter cap: inside the 10% default slack.
        results = {
            pt(ps=0): FakeResult(600e6, cap_w=12.0),
            pt(ps=2): FakeResult(630e6, cap_w=8.0),
        }
        assert check_contracts(results) == []

    def test_equal_caps_carry_no_obligation(self):
        results = {
            pt(bs=4096, ps=0): FakeResult(900e6, cap_w=12.0),
            pt(bs=4096, ps=1): FakeResult(100e6, cap_w=12.0),
        }
        assert check_contracts(results) == []


class TestQdMonotonicity:
    def test_rising_curve_clean(self):
        results = {
            pt(qd=1): FakeResult(100e6),
            pt(qd=8): FakeResult(500e6),
            pt(qd=64): FakeResult(900e6),
        }
        assert check_contracts(results) == []

    def test_collapse_with_depth_flagged(self):
        results = {
            pt(qd=1): FakeResult(800e6),
            pt(qd=64): FakeResult(300e6),
        }
        violations = check_contracts(results)
        assert [v.invariant for v in violations] == ["qd_monotonicity"]

    def test_slack_absorbs_seed_noise(self):
        # A 20% pairwise dip is consistent with two independent short
        # runs of a flat curve; the 25% default slack must absorb it.
        results = {
            pt(qd=8): FakeResult(1000e6),
            pt(qd=64): FakeResult(800e6),
        }
        assert check_contracts(results) == []

    def test_power_limited_points_exempt(self):
        # Under a binding cap a deeper queue legitimately loses
        # throughput to controller/link draw (paper Fig. 9); the
        # contract must not fire there.
        results = {
            pt(qd=1, ps=2): FakeResult(800e6, cap_w=8.0, true_mean_power_w=7.9),
            pt(qd=64, ps=2): FakeResult(300e6, cap_w=8.0, true_mean_power_w=7.95),
        }
        assert check_contracts(results) == []

    def test_non_binding_cap_still_checked(self):
        # A cap far above the realized draw is not the limiter: the
        # exemption must not hide a real collapse.
        results = {
            pt(qd=1, ps=0): FakeResult(800e6, cap_w=12.0, true_mean_power_w=6.0),
            pt(qd=64, ps=0): FakeResult(300e6, cap_w=12.0, true_mean_power_w=6.0),
        }
        violations = check_contracts(results)
        assert [v.invariant for v in violations] == ["qd_monotonicity"]

    def test_groups_isolated_by_block_size(self):
        # Different chunk sizes are different groups: a small-chunk
        # point outrunning a big-chunk one is no inversion.
        results = {
            pt(qd=1, bs=4096): FakeResult(900e6),
            pt(qd=64, bs=2 * 1024 * 1024): FakeResult(100e6),
        }
        assert check_contracts(results) == []


class TestContractPlumbing:
    def test_invariant_registry(self):
        assert CONTRACT_INVARIANTS == ("cap_monotonicity", "qd_monotonicity")

    def test_custom_tolerances_respected(self):
        results = {
            pt(qd=8): FakeResult(1000e6),
            pt(qd=64): FakeResult(800e6),
        }
        strict = Tolerances(qd_slack=0.05)
        assert len(check_contracts(results, strict)) == 1

    def test_real_sweep_contracts_hold(self, ssd3_sweep_outcome):
        _grid, outcome = ssd3_sweep_outcome
        assert check_contracts(outcome.results) == []
