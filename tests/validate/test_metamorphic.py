"""Metamorphic relations: transformed inputs with predictable outputs.

Each relation transforms an input in a way whose effect on the output is
known exactly (often: none at all), which tests global properties no
example-based oracle can pin down -- batching independence, opt-in
subsystems being truly passive, and the step-trace integral's algebra.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.experiment import run_experiment
from repro.core.options import ExecutionOptions
from repro.core.sweep import sweep_outcome
from repro.faults import FaultPlan
from repro.sim.trace import StepTrace

from .conftest import tiny_job


def result_fingerprint(result):
    """The bit-identity surface: every float a physics change would move."""
    return (
        result.true_mean_power_w.hex(),
        result.power.mean_w.hex(),
        result.power.energy_j.hex(),
        result.power.max_w.hex(),
        result.throughput_bps.hex(),
        len(result.job.records),
    )


class TestBatchingIndependence:
    def test_sweep_points_match_solo_runs(self, ssd3_sweep_outcome):
        """Each sweep point must be bit-identical to the same experiment
        run alone: batching, shared caches, and sweep bookkeeping carry
        no physics."""
        grid, outcome = ssd3_sweep_outcome
        for point in grid.points():
            solo = run_experiment(grid.config_for(point))
            swept = outcome.results[point]
            assert result_fingerprint(swept) == result_fingerprint(solo)


class TestPassiveSubsystems:
    def test_validation_is_bit_identical(self, ssd3_sweep_outcome):
        """validate=True must observe, never perturb."""
        grid, validated = ssd3_sweep_outcome
        plain = sweep_outcome(grid, ExecutionOptions(n_workers=1))
        assert plain.validation is None
        assert validated.validation is not None and validated.validation.ok
        for point in grid.points():
            assert result_fingerprint(
                validated.results[point]
            ) == result_fingerprint(plain.results[point])

    def test_inert_fault_plan_is_bit_identical(self):
        """FaultPlan() with no specs must equal faults=None exactly: the
        injector exists but never draws randomness or simulated time."""
        from repro.core.experiment import ExperimentConfig

        base = ExperimentConfig(
            device="ssd3", job=tiny_job(), warmup_fraction=0.25, seed=7
        )
        with_inert = ExperimentConfig(
            device="ssd3",
            job=tiny_job(),
            warmup_fraction=0.25,
            seed=7,
            faults=FaultPlan(),
        )
        bare = run_experiment(base)
        inert = run_experiment(with_inert)
        assert result_fingerprint(bare) == result_fingerprint(inert)
        assert inert.faults is not None and inert.faults.total == 0


class TestStepTraceAlgebra:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=1.0),
                st.floats(min_value=0.0, max_value=50.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.5, max_value=4.0),
    )
    def test_time_scaling_scales_integral(self, steps, scale):
        """Stretching time by k stretches every integral by exactly k
        (values are held, so area scales with width)."""
        plain = StepTrace(t0=0.0, initial=1.0)
        stretched = StepTrace(t0=0.0, initial=1.0)
        t = 0.0
        for dt, watts in steps:
            t += dt
            plain.set(t, watts)
            stretched.set(t * scale, watts)
        end = t + 0.1
        a = plain.integrate(0.0, end)
        b = stretched.integrate(0.0, end * scale)
        assert abs(b - a * scale) <= 1e-9 * max(1.0, abs(b))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=1.0),
                st.floats(min_value=0.0, max_value=50.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_value_scaling_scales_integral(self, steps, gain):
        plain = StepTrace(t0=0.0, initial=1.0)
        scaled = StepTrace(t0=0.0, initial=gain)
        t = 0.0
        for dt, watts in steps:
            t += dt
            plain.set(t, watts)
            scaled.set(t, watts * gain)
        end = t + 0.1
        a = plain.integrate(0.0, end)
        b = scaled.integrate(0.0, end)
        assert abs(b - a * gain) <= 1e-9 * max(1.0, abs(b))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e-4, max_value=1.0),
                st.floats(min_value=0.0, max_value=50.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.1, max_value=0.9),
    )
    def test_window_split_is_additive(self, steps, cut):
        """Integrating [a, m] + [m, b] equals [a, b] for any split."""
        trace = StepTrace(t0=0.0, initial=1.0)
        t = 0.0
        for dt, watts in steps:
            t += dt
            trace.set(t, watts)
        end = t + 0.1
        mid = end * cut
        whole = trace.integrate(0.0, end)
        split = trace.integrate(0.0, mid) + trace.integrate(mid, end)
        assert abs(whole - split) <= 1e-9 * max(1.0, abs(whole))
