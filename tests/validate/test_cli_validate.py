"""The ``repro validate`` subcommand, driven in-process."""

import pytest

from repro.cli import build_parser, main


class TestValidateParser:
    def test_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.device is None  # None = all four paper devices
        assert args.quick is False
        assert args.seed == 0

    def test_device_accumulates(self):
        args = build_parser().parse_args(
            ["validate", "--device", "ssd3", "--device", "hdd"]
        )
        assert args.device == ["ssd3", "hdd"]

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--device", "floppy"])


@pytest.mark.integration
class TestValidateCommand:
    def test_clean_device_exits_zero(self, capsys):
        code = main(["validate", "--device", "ssd3", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants hold" in out
        assert "live audit" in out

    def test_violations_flip_exit_code(self, capsys, monkeypatch):
        # Break the simulator's energy bookkeeping (double the ground
        # truth): the meter checker must catch it and the CLI must
        # report failure -- the acceptance demo from the issue.
        from repro.sim.trace import StepTrace

        true_mean = StepTrace.mean
        monkeypatch.setattr(
            StepTrace,
            "mean",
            lambda self, t0, t1: 2.0 * true_mean(self, t0, t1),
        )
        code = main(["validate", "--device", "ssd3", "--quick"])
        out = capsys.readouterr().out
        assert code == 1
        assert "meter_consistency" in out
        assert "violation" in out
