"""The control-plane invariants: budget_safety_under_faults,
watchdog_liveness, and safe_mode_entry.

Real faulted runs first (the acceptance recipe: a meter dropout against
a watchdog-armed feedback controller must trip safe mode and still
validate; the unsafe fixture against a lying meter must not), then
tamper-style forgeries pinning each checker's trigger.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro._units import KiB
from repro.core.experiment import run_experiment
from repro.faults import parse_fault_plan
from repro.iogen.spec import IoPattern
from repro.policy import WatchdogSpec
from repro.studies.common import QUICK, point_config
from repro.studies.policy_tracking import spec_for
from repro.validate.checkers import RESULT_INVARIANTS, check_result

# Dropout from t=0 covering the whole (bytes-bound, ~10.5 ms) QUICK run:
# early enough that the liveness checker has detection headroom before
# the run ends, long enough that staleness is unmistakable.
DROPOUT = "sensor:drop_at=0.0,drop_dur=0.02"
LYING_METER = "sensor:bias=-1.5"


def invariants_hit(result) -> set[str]:
    return {v.invariant for v in check_result(result)}


def _config(controller: str, faults: str | None, watchdog: bool):
    base = point_config(
        "ssd2", IoPattern.RANDWRITE, 256 * KiB, 8, scale=QUICK, seed=0
    )
    clean = run_experiment(base)
    spec = spec_for("ssd2", controller, clean.true_mean_power_w, QUICK)
    spec = replace(
        spec,
        sense="meter",
        watchdog=(
            WatchdogSpec(stale_after_s=3.0 * spec.interval_s)
            if watchdog
            else None
        ),
    )
    return replace(
        base,
        policy=spec,
        faults=parse_fault_plan(faults) if faults else None,
    )


@pytest.fixture(scope="module")
def dropout_result():
    """Watchdog-armed feedback controller under a meter dropout."""
    return run_experiment(_config("feedback", DROPOUT, watchdog=True))


@pytest.fixture(scope="module")
def unsafe_result():
    """The deliberately-broken fixture against a lying meter."""
    return run_experiment(_config("unsafe", LYING_METER, watchdog=False))


class TestRegistration:
    def test_new_invariants_registered(self):
        for name in (
            "budget_safety_under_faults",
            "watchdog_liveness",
            "safe_mode_entry",
        ):
            assert name in RESULT_INVARIANTS


class TestWatchdogLiveness:
    def test_dropout_trips_the_watchdog(self, dropout_result):
        policy = dropout_result.policy
        assert policy.watchdog_trips >= 1
        assert policy.degraded_fraction > 0.0
        assert policy.watchdog_episodes[0][2] == "stale"

    def test_watchdogged_dropout_run_validates_clean(self, dropout_result):
        assert check_result(dropout_result) == []

    def test_forged_zero_trips_flagged(self, dropout_result):
        asleep = replace(
            dropout_result,
            policy=replace(
                dropout_result.policy, watchdog_trips=0, watchdog_episodes=()
            ),
        )
        assert "watchdog_liveness" in invariants_hit(asleep)


class TestBudgetSafetyUnderFaults:
    def test_unsafe_controller_violates(self, unsafe_result):
        """The seeded bug: an unclamped integrator fed phantom headroom
        by a -1.5 W meter bias walks its target past the budget."""
        assert "budget_safety_under_faults" in invariants_hit(unsafe_result)

    def test_watchdog_cannot_save_the_unsafe_controller(self):
        """The breach detector senses the same lying meter, so arming
        the watchdog must not mask the violation -- this is what makes
        the chaos campaign's seeded check meaningful."""
        result = run_experiment(_config("unsafe", LYING_METER, watchdog=True))
        assert "budget_safety_under_faults" in invariants_hit(result)

    def test_feedback_controller_stays_safe(self):
        result = run_experiment(
            _config("feedback", LYING_METER, watchdog=False)
        )
        assert "budget_safety_under_faults" not in invariants_hit(result)

    def test_checker_requires_faulted_control_plane(self, dropout_result):
        """Without sensor/actuator faults (or a dead governor) the
        invariant defers to plain budget_tracking."""
        summary = dropout_result.policy
        t, budget_w, _, measured_w = summary.samples[-1]
        samples = summary.samples[:-1] + (
            (t, budget_w, summary.ceiling_w + 5.0, measured_w),
        )
        tampered = replace(
            dropout_result,
            config=replace(dropout_result.config, faults=None),
            policy=replace(summary, samples=samples),
        )
        hit = invariants_hit(tampered)
        assert "budget_safety_under_faults" not in hit


class TestSafeModeEntry:
    def test_trip_count_must_match_episodes(self, dropout_result):
        forged = replace(
            dropout_result,
            policy=replace(
                dropout_result.policy,
                watchdog_trips=dropout_result.policy.watchdog_trips + 1,
            ),
        )
        assert "safe_mode_entry" in invariants_hit(forged)

    def test_degraded_samples_must_pin_the_safe_cap(self, dropout_result):
        summary = dropout_result.policy
        t_enter = summary.watchdog_episodes[0][0]
        degraded_idx = next(
            i for i, s in enumerate(summary.samples) if s[0] >= t_enter
        )
        t, budget_w, _, measured_w = summary.samples[degraded_idx]
        samples = (
            summary.samples[:degraded_idx]
            + ((t, budget_w, summary.safe_cap_w + 2.0, measured_w),)
            + summary.samples[degraded_idx + 1 :]
        )
        forged = replace(
            dropout_result, policy=replace(summary, samples=samples)
        )
        assert "safe_mode_entry" in invariants_hit(forged)
