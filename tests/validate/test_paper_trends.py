"""Acceptance tests tying the validators to the paper's own trends.

Two layers:

- **Table 1 vs the envelope bounds** (fast, pure computation): the
  config-derived power envelope each checker enforces must contain the
  paper's measured min/max for every device -- and not by an absurd
  margin, or the envelope check would be vacuous.
- **Fig. 10 mechanism curves** (integration, real sweeps): a validated
  power-state sweep must pass every invariant *and* reproduce the
  paper's monotone structure -- looser caps and bigger chunks buy
  throughput, and the fitted model's budget curve never bends backwards.
"""

import pytest

from repro._units import KiB
from repro.core.model import PowerThroughputModel
from repro.core.options import ExecutionOptions
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.devices.catalog import DEVICE_PRESETS
from repro.iogen.spec import IoPattern
from repro.studies.common import QUICK
from repro.studies.table1 import PAPER_RANGES
from repro.validate.envelope import power_envelope


class TestTable1Envelopes:
    @pytest.mark.parametrize("label", sorted(PAPER_RANGES))
    def test_envelope_contains_paper_range(self, label):
        _proto, _model, paper_min, paper_max = PAPER_RANGES[label]
        env = power_envelope(DEVICE_PRESETS[label]())
        assert env.floor_w <= paper_min
        assert env.peak_w >= paper_max

    @pytest.mark.parametrize("label", sorted(PAPER_RANGES))
    def test_envelope_is_not_vacuous(self, label):
        """A bound the paper's own numbers sit miles inside catches
        nothing; keep it within 2x of the measured range."""
        _proto, _model, paper_min, paper_max = PAPER_RANGES[label]
        env = power_envelope(DEVICE_PRESETS[label]())
        assert env.peak_w <= 2.0 * paper_max
        assert env.floor_w >= 0.5 * paper_min

    def test_envelope_ordering_matches_paper(self):
        """NVMe peaks above SATA SSD; Table 1's ordering survives."""
        peaks = {
            label: power_envelope(DEVICE_PRESETS[label]()).peak_w
            for label in PAPER_RANGES
        }
        assert peaks["ssd2"] > peaks["ssd1"] > peaks["ssd3"]
        assert peaks["ssd2"] > peaks["hdd"]


@pytest.mark.integration
class TestFig10MechanismSweep:
    """A real ssd2 power-state sweep, validated end to end."""

    @pytest.fixture(scope="class")
    def validated_sweep(self):
        grid = SweepGrid(
            device="ssd2",
            patterns=(IoPattern.RANDWRITE,),
            block_sizes=(64 * KiB, 2048 * KiB),
            iodepths=(1, 64),
            power_states=(0, 2),
            base_job=QUICK.job(IoPattern.RANDWRITE, 4096, 1, "ssd2"),
            warmup_fraction=QUICK.warmup("ssd2"),
            seed=0,
        )
        return grid, sweep_outcome(
            grid, ExecutionOptions(n_workers=1, validate=True)
        )

    def test_all_invariants_hold(self, validated_sweep):
        _grid, outcome = validated_sweep
        assert not outcome.failures
        assert outcome.validation is not None
        assert outcome.validation.ok, outcome.validation.render()

    def test_looser_cap_reaches_higher_peak(self, validated_sweep):
        """Fig. 10's mechanism: ps0's frontier dominates ps2's."""
        grid, outcome = validated_sweep
        best = {}
        for point in grid.points():
            tput = outcome.results[point].throughput_bps
            best[point.power_state] = max(
                best.get(point.power_state, 0.0), tput
            )
        assert best[0] > best[2]

    def test_bigger_chunks_buy_throughput(self, validated_sweep):
        """At full power and deep queues, 2 MiB chunks must beat 64 KiB
        (sequentiality amortizes per-op cost -- Fig. 8/10 trend)."""
        grid, outcome = validated_sweep
        tput = {
            (p.block_size, p.iodepth, p.power_state): outcome.results[
                p
            ].throughput_bps
            for p in grid.points()
        }
        assert tput[(2048 * KiB, 64, 0)] > tput[(64 * KiB, 64, 0)]

    def test_fitted_budget_curve_monotone(self, validated_sweep):
        """The model's best-throughput-under-budget curve never bends
        backwards as the budget grows."""
        _grid, outcome = validated_sweep
        model = PowerThroughputModel.from_sweep("ssd2", outcome.results)
        budgets = [
            model.min_power_w + f * (model.max_power_w - model.min_power_w)
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        curve = []
        for budget in budgets:
            point = model.best_under_power_budget(budget)
            curve.append(0.0 if point is None else point.throughput_bps)
        assert curve == sorted(curve)
        assert curve[-1] == model.max_throughput_bps
