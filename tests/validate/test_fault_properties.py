"""Property tests over the fault-injection subsystem.

Faults may slow a device down, abort spin-ups, or break its governor --
but they must never produce unphysical output: negative latencies or
energies, inverted windows, or misordered latency quantiles.  And a
fault plan is part of the experiment's identity: the same (config, plan)
pair must reproduce bit-identically.
"""

from hypothesis import given, settings

from repro.core.experiment import run_experiment
from repro.validate import validate_result
from repro.validate.strategies import experiment_configs, fault_plans, seeds

#: Invariants that must survive *any* fault plan.  (cap_adherence is
#: exempted by the checker itself under injected governor failure;
#: meter/envelope/littles carry window-length caveats covered in
#: test_properties.py.)
FAULT_PROOF = {
    "window_sanity",
    "non_negative_power",
    "energy_consistency",
    "latency_ordering",
}


class TestFaultedPhysics:
    @given(experiment_configs(with_faults=True))
    @settings(max_examples=15)
    def test_faults_never_break_hard_invariants(self, config):
        result = run_experiment(config)
        report = validate_result(result)
        hard = [
            v for v in report.violations if v.invariant in FAULT_PROOF
        ]
        assert hard == [], "\n".join(v.describe() for v in hard)

    @given(experiment_configs(with_faults=True))
    @settings(max_examples=10)
    def test_faulted_latencies_and_energies_non_negative(self, config):
        result = run_experiment(config)
        assert result.power.energy_j >= 0.0
        assert result.true_mean_power_w >= 0.0
        assert all(r.latency >= 0.0 for r in result.job.records)
        assert all(
            r.complete_time >= r.submit_time for r in result.job.records
        )

    @given(experiment_configs(with_faults=True))
    @settings(max_examples=8)
    def test_fault_accounting_is_consistent(self, config):
        result = run_experiment(config)
        if config.faults is None:
            assert result.faults is None
        else:
            assert result.faults is not None
            assert result.faults.total >= 0


class TestFaultDeterminism:
    @given(experiment_configs(with_faults=True))
    @settings(max_examples=8)
    def test_same_plan_same_seed_bit_identical(self, config):
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.true_mean_power_w == second.true_mean_power_w
        assert first.power.energy_j == second.power.energy_j
        assert first.throughput_bps == second.throughput_bps
        if first.faults is not None:
            assert first.faults.total == second.faults.total

    @given(fault_plans(), seeds())
    def test_plans_hash_and_compare(self, plan, _seed):
        # Frozen dataclass: equality and reuse across points must work.
        assert plan == plan
        assert plan in {plan}
