"""Post-hoc result checkers: clean runs pass, tampered physics is caught.

Positive cases run real simulations; negative cases take a clean result
and break exactly one quantity with ``dataclasses.replace`` (results are
frozen, so tampering cannot leak between tests), or monkeypatch the
simulator's own energy bookkeeping and let a live run produce a result
that is wrong from birth.
"""

import dataclasses

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.iogen.spec import IoPattern
from repro.validate import Tolerances, validate_result
from repro.validate.checkers import RESULT_INVARIANTS, check_result

from .conftest import tiny_job


def invariants_hit(result) -> set:
    return {v.invariant for v in check_result(result)}


class TestCleanResults:
    def test_ssd3_clean(self, ssd3_result):
        report = validate_result(ssd3_result)
        assert report.ok, report.render()
        assert report.checked == 1
        assert report.invariants == RESULT_INVARIANTS

    def test_ssd2_capped_clean(self, ssd2_capped_result):
        report = validate_result(ssd2_capped_result)
        assert report.ok, report.render()

    def test_read_workload_clean(self):
        result = run_experiment(
            ExperimentConfig(
                device="ssd1",
                job=tiny_job(pattern=IoPattern.RANDREAD),
                warmup_fraction=0.25,
                seed=5,
            )
        )
        report = validate_result(result)
        assert report.ok, report.render()


class TestTamperedResults:
    """Each test corrupts one physical quantity and names the checker
    that must notice."""

    def test_inflated_energy_caught(self, ssd3_result):
        bad_power = dataclasses.replace(
            ssd3_result.power, energy_j=ssd3_result.power.energy_j * 2.0
        )
        bad = dataclasses.replace(ssd3_result, power=bad_power)
        assert "energy_consistency" in invariants_hit(bad)

    def test_negative_power_caught(self, ssd3_result):
        bad_power = dataclasses.replace(ssd3_result.power, min_w=-0.5)
        bad = dataclasses.replace(ssd3_result, power=bad_power)
        assert "non_negative_power" in invariants_hit(bad)

    def test_meter_drift_caught(self, ssd3_result):
        bad = dataclasses.replace(
            ssd3_result,
            true_mean_power_w=ssd3_result.true_mean_power_w * 1.5,
        )
        assert "meter_consistency" in invariants_hit(bad)

    def test_cap_overshoot_caught(self, ssd3_result):
        bad = dataclasses.replace(
            ssd3_result, cap_w=ssd3_result.true_mean_power_w * 0.5
        )
        assert "cap_adherence" in invariants_hit(bad)

    def test_envelope_escape_caught(self, ssd3_result):
        bad_power = dataclasses.replace(ssd3_result.power, max_w=1000.0)
        bad = dataclasses.replace(ssd3_result, power=bad_power)
        assert "power_envelope" in invariants_hit(bad)

    def test_inverted_window_caught(self, ssd3_result):
        bad_job = dataclasses.replace(
            ssd3_result.job,
            measure_start=ssd3_result.job.end_time + 1.0,
        )
        bad = dataclasses.replace(ssd3_result, job=bad_job)
        assert "window_sanity" in invariants_hit(bad)

    def test_violation_carries_context(self, ssd3_result):
        bad = dataclasses.replace(
            ssd3_result,
            true_mean_power_w=ssd3_result.true_mean_power_w * 1.5,
        )
        report = validate_result(bad)
        violation = report.of_invariant("meter_consistency")[0]
        assert violation.subject == ssd3_result.config.describe()
        assert "ground truth" in violation.message
        assert violation.measured != violation.expected


class TestBrokenEnergyModel:
    """A simulator whose energy bookkeeping is wrong must not validate.

    These monkeypatch the *model*, not the result: the run itself
    produces inconsistent physics and the checkers catch it live.
    """

    def test_ground_truth_inflation_caught(self, monkeypatch):
        from repro.sim.trace import StepTrace

        true_mean = StepTrace.mean
        monkeypatch.setattr(
            StepTrace, "mean", lambda self, t0, t1: 2.0 * true_mean(self, t0, t1)
        )
        result = run_experiment(
            ExperimentConfig(
                device="ssd3", job=tiny_job(), warmup_fraction=0.25, seed=7
            )
        )
        report = validate_result(result)
        assert not report.ok
        assert "meter_consistency" in {v.invariant for v in report.violations}

    def test_broken_governor_feedback_caught(self, monkeypatch):
        from repro.devices.ssd import SimulatedSSD

        # Blind the governor to everything but NAND: it overcommits the
        # budget and the realized mean power escapes the intended cap.
        monkeypatch.setattr(
            SimulatedSSD, "_non_nand_power", lambda self: 0.0
        )
        result = run_experiment(
            ExperimentConfig(
                device="ssd2",
                job=tiny_job(iodepth=16),
                power_state=2,
                warmup_fraction=0.25,
                seed=11,
            )
        )
        report = validate_result(result)
        assert not report.ok
        assert "cap_adherence" in {v.invariant for v in report.violations}


class TestTolerances:
    def test_negative_tolerance_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Tolerances(meter_rel=-0.1)

    def test_zero_meter_tolerance_flags_any_noise(self, ssd3_result):
        # The simulated meter always carries some part tolerance, so a
        # zero-slack comparison must fail -- proving the knob is live.
        violations = check_result(ssd3_result, Tolerances(meter_rel=0.0))
        assert "meter_consistency" in {v.invariant for v in violations}
