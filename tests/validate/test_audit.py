"""Live auditors: rail energy conservation and event-stream invariants.

``RailAudit`` cases run real devices and then also verify the checker
catches a tampered shadow ledger (proof the comparison is live, not
vacuous).  ``LiveAuditor`` cases drive the auditor directly with a
synthetic event stream, which pins each invariant without needing a
simulation to misbehave on cue.
"""

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.obs.events import EventKind, SimEvent, Tracer
from repro.sim.trace import StepTrace
from repro.validate import live_validate
from repro.validate.audit import (
    AUDIT_INVARIANTS,
    LIVE_INVARIANTS,
    LiveAuditor,
    RailAudit,
)

from .conftest import tiny_job


class TestRailAudit:
    def _audited_run(self, **config_kwargs):
        audit = RailAudit()
        config = ExperimentConfig(
            job=tiny_job(), warmup_fraction=0.25, seed=7, **config_kwargs
        )
        result = run_experiment(config, audit=audit)
        return audit, result

    def test_energy_conserved_on_ssd(self):
        audit, _result = self._audited_run(device="ssd3")
        assert audit.attached
        assert audit.check() == []

    def test_energy_conserved_under_cap(self):
        audit, _result = self._audited_run(device="ssd2", power_state=2)
        assert audit.check() == []

    def test_component_energies_sum_to_rail(self):
        audit, result = self._audited_run(device="ssd3")
        energies = audit.component_energy(0.0, result.job.end_time)
        assert energies  # per-component decomposition is non-empty
        assert all(e >= 0.0 for e in energies.values())

    def test_dropped_component_caught(self):
        audit, _result = self._audited_run(device="ssd3")
        # Erase one component's shadow trace: the per-component sum can
        # no longer reach the rail integral.
        name = max(
            audit.component_energy(0.0, 1e9),
            key=lambda n: audit.component_energy(0.0, 1e9)[n],
        )
        del audit._traces[name]
        violations = audit.check()
        assert [v.invariant for v in violations] == ["energy_conservation"]

    def test_negative_component_caught(self):
        audit, _result = self._audited_run(device="ssd3")
        audit._traces["rogue"] = StepTrace(t0=0.0, initial=-1.0)
        violations = audit.check()
        assert "component_non_negative" in {v.invariant for v in violations}

    def test_double_attach_rejected(self):
        audit, _result = self._audited_run(device="ssd3")
        with pytest.raises(RuntimeError):
            audit.attach(object())

    def test_check_before_attach_rejected(self):
        with pytest.raises(RuntimeError):
            RailAudit().check()


def event(kind, time, seq, component="dev", **fields) -> SimEvent:
    return SimEvent(
        time=time, seq=seq, kind=kind, component=component, fields=fields
    )


class TestLiveAuditor:
    def test_ordered_stream_clean(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.GC_START, 0.0, 1))
        auditor(event(EventKind.GC_END, 0.5, 2))
        assert auditor.finalize() == []
        assert auditor.events_seen == 2

    def test_backwards_seq_caught(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.GC_START, 0.0, 5))
        auditor(event(EventKind.GC_END, 0.5, 3))
        violations = auditor.finalize()
        assert "event_ordering" in {v.invariant for v in violations}

    def test_backwards_time_caught(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.GC_START, 1.0, 1))
        auditor(event(EventKind.GC_END, 0.5, 2))
        violations = auditor.finalize()
        assert "event_ordering" in {v.invariant for v in violations}

    def test_scope_mark_restarts_clock(self):
        # Sweeps reuse one tracer across engines that each start at
        # time zero; a scoped MARK must reset the epoch, not violate.
        auditor = LiveAuditor()
        auditor(event(EventKind.GC_START, 5.0, 1))
        auditor(event(EventKind.GC_END, 6.0, 2))
        auditor(event(EventKind.MARK, 6.0, 3, scope="point-2"))
        auditor(event(EventKind.GC_START, 0.0, 4))
        auditor(event(EventKind.GC_END, 1.0, 5))
        assert auditor.finalize() == []

    def test_unmatched_interval_end_caught(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.GC_END, 0.5, 1))
        violations = auditor.finalize()
        assert [v.invariant for v in violations] == ["interval_balance"]

    def test_interval_balance_is_per_component(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.GC_START, 0.0, 1, component="a"))
        auditor(event(EventKind.GC_END, 0.5, 2, component="b"))
        violations = auditor.finalize()
        assert [v.invariant for v in violations] == ["interval_balance"]

    def test_residency_sums_to_span(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.POWER_STATE, 0.0, 1, state="ps0"))
        auditor(event(EventKind.POWER_STATE, 0.4, 2, state="ps2"))
        assert auditor.finalize(end_time=1.0) == []

    def test_residency_gap_caught(self):
        auditor = LiveAuditor()
        auditor(event(EventKind.POWER_STATE, 0.0, 1, state="ps0"))
        ledger = auditor._residency["dev"]
        ledger.durations["ps0"] = 0.1  # forge a hole in the ledger
        ledger.last_time = 0.5
        ledger.state = "ps1"
        violations = auditor.finalize(end_time=1.0)
        assert [v.invariant for v in violations] == ["state_residency"]


class TestLiveValidate:
    @pytest.mark.parametrize("device", ["ssd3", "ssd1"])
    def test_clean_devices_validate_live(self, device):
        config = ExperimentConfig(
            device=device, job=tiny_job(), warmup_fraction=0.25, seed=7
        )
        result, report = live_validate(config)
        assert report.ok, report.render()
        assert result.throughput_bps > 0
        assert set(AUDIT_INVARIANTS) <= set(report.invariants)
        assert set(LIVE_INVARIANTS) <= set(report.invariants)

    def test_live_auditing_is_passive(self):
        # Bit-identity: wiring every auditor in must not change physics.
        config = ExperimentConfig(
            device="ssd3", job=tiny_job(), warmup_fraction=0.25, seed=7
        )
        bare = run_experiment(config)
        audited, _report = live_validate(config)
        assert audited.true_mean_power_w == bare.true_mean_power_w
        assert audited.power.mean_w == bare.power.mean_w
        assert audited.throughput_bps == bare.throughput_bps

    def test_stream_reaches_auditor(self):
        config = ExperimentConfig(
            device="ssd1", job=tiny_job(), warmup_fraction=0.25, seed=7
        )
        tracer = Tracer(keep_events=False)
        auditor = LiveAuditor()
        tracer.subscribe(auditor)
        run_experiment(config, tracer=tracer)
        assert auditor.events_seen > 0
        assert auditor.finalize() == []
