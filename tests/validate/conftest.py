"""Fixtures and Hypothesis profiles for the validation suite.

Profiles are pinned for determinism: ``derandomize=True`` makes every
run explore the same examples in the same order (CI failures reproduce
locally with no shrinking lottery), and ``deadline=None`` keeps slow
simulated examples from flaking on loaded machines.  Example counts are
bounded so the whole property suite stays well under its five-minute
budget; export ``HYPOTHESIS_PROFILE=validate-thorough`` for a deeper
local sweep.

Experiment fixtures are session-scoped: each one runs a real simulation
once and every test that only *reads* the result shares it.  Results are
frozen dataclasses, so sharing is safe by construction; tests that want
a tampered variant build one with ``dataclasses.replace``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.options import ExecutionOptions
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec

settings.register_profile(
    "validate", derandomize=True, deadline=None, max_examples=20
)
settings.register_profile(
    "validate-thorough", derandomize=True, deadline=None, max_examples=100
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "validate"))


def tiny_job(
    pattern: IoPattern = IoPattern.RANDWRITE,
    block_size: int = 64 * KiB,
    iodepth: int = 8,
    runtime_s: float = 0.02,
    size_limit_bytes: int = 8 * MiB,
) -> JobSpec:
    """A job just long enough to reach steady state on an SSD."""
    return JobSpec(
        pattern=pattern,
        block_size=block_size,
        iodepth=iodepth,
        runtime_s=runtime_s,
        size_limit_bytes=size_limit_bytes,
    )


@pytest.fixture(scope="session")
def ssd3_result():
    """One clean consumer-SSD run (no power-state table, no cap)."""
    return run_experiment(
        ExperimentConfig(
            device="ssd3", job=tiny_job(), warmup_fraction=0.25, seed=7
        )
    )


@pytest.fixture(scope="session")
def ssd2_capped_result():
    """One clean run under a binding power state (ps2 caps ssd2).

    The cap is an *average*-power contract: the device's program-
    intensity wave (3 ms period) rides over the governed mean, so the
    measurement window must span many wave periods before the duty-
    cycled average converges.  0.06 s at 25% warmup gives a 45 ms
    window, ~15 periods.
    """
    return run_experiment(
        ExperimentConfig(
            device="ssd2",
            job=tiny_job(iodepth=16, runtime_s=0.06, size_limit_bytes=24 * MiB),
            power_state=2,
            warmup_fraction=0.25,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def ssd3_sweep_outcome():
    """A small real sweep (4 points) with validation enabled."""
    grid = SweepGrid(
        device="ssd3",
        patterns=(IoPattern.RANDWRITE,),
        block_sizes=(64 * KiB, 256 * KiB),
        iodepths=(1, 8),
        base_job=tiny_job(),
        warmup_fraction=0.25,
        seed=3,
    )
    return grid, sweep_outcome(
        grid, ExecutionOptions(n_workers=1, validate=True)
    )
