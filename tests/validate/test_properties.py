"""Property-based validation: physics invariants over generated configs.

Every example is a full (tiny) simulation drawn from the strategy
library; the post-hoc checkers are the oracle.  Profiles are pinned in
``conftest.py`` (derandomized, bounded example counts), so this file is
deterministic and budgeted despite running real simulations per example.
"""

from hypothesis import given, settings

from repro.core.experiment import run_experiment
from repro.devices.catalog import DEVICE_PRESETS
from repro.iogen.spec import JobSpec
from repro.validate import Tolerances, validate_result

#: The strategy library keeps jobs to a few simulated milliseconds, so a
#: measurement window can cover less than one 3 ms program-intensity wave
#: period.  Over such windows the 20 kHz sampled mean legitimately
#: diverges from the continuous mean by the truncated wave fraction; the
#: 5% default is a steady-window (>= tens of ms) contract, exercised by
#: the session fixtures and the ``repro validate`` CLI.
TINY_WINDOW = Tolerances(meter_rel=0.20)
from repro.validate.strategies import (
    PAPER_DEVICES,
    device_labels,
    experiment_configs,
    fault_plans,
    job_specs,
    power_states_for,
    seeds,
)


class TestStrategyValidity:
    """Everything generated must pass the target types' own validation
    by construction -- the build itself is the assertion."""

    @given(job_specs())
    def test_job_specs_construct(self, job):
        assert isinstance(job, JobSpec)
        assert job.block_size > 0 and job.iodepth >= 1
        assert job.runtime_s > 0 and job.size_limit_bytes > 0

    @given(fault_plans())
    def test_fault_plans_construct(self, plan):
        for spike in plan.latency_spikes:
            assert spike.duration_s > 0 and spike.extra_s > 0

    @given(device_labels())
    def test_device_labels_are_catalog_presets(self, label):
        assert label in DEVICE_PRESETS

    @given(seeds())
    def test_seeds_fit_rng_streams(self, seed):
        assert 0 <= seed < 2**31

    @given(device_labels().flatmap(lambda d: power_states_for(d).map(lambda ps: (d, ps))))
    def test_power_states_match_catalog(self, device_and_state):
        device, state = device_and_state
        config = DEVICE_PRESETS[device]()
        states = getattr(config, "power_states", ())
        allowed = {ps.index for ps in states if ps.operational} | {None}
        assert state in allowed


class TestInvariantsOverConfigSpace:
    @given(experiment_configs())
    @settings(max_examples=15)
    def test_generated_experiments_validate(self, config):
        result = run_experiment(config)
        report = validate_result(result, TINY_WINDOW)
        assert report.ok, report.render()

    @given(experiment_configs(devices=("ssd2",)))
    @settings(max_examples=8)
    def test_capped_device_respects_physics(self, config):
        result = run_experiment(config)
        report = validate_result(result, TINY_WINDOW)
        # Cap adherence is average-power: judge it only when the window
        # spans many 3 ms wave periods (see conftest); the rest of the
        # invariants must hold at any window length.
        hard = [
            v
            for v in report.violations
            if v.invariant != "cap_adherence"
            or result.job.measure_window[1] - result.job.measure_window[0]
            > 0.03
        ]
        assert hard == [], "\n".join(v.describe() for v in hard)


class TestDeterminism:
    @given(experiment_configs())
    @settings(max_examples=8)
    def test_same_config_is_bit_identical(self, config):
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.true_mean_power_w == second.true_mean_power_w
        assert first.power.mean_w == second.power.mean_w
        assert first.power.energy_j == second.power.energy_j
        assert first.throughput_bps == second.throughput_bps
        assert len(first.job.records) == len(second.job.records)

    @given(experiment_configs(), seeds())
    @settings(max_examples=8)
    def test_validation_never_mutates_result(self, config, _seed):
        result = run_experiment(config)
        before = (
            result.true_mean_power_w,
            result.power.energy_j,
            result.throughput_bps,
        )
        validate_result(result)
        after = (
            result.true_mean_power_w,
            result.power.energy_j,
            result.throughput_bps,
        )
        assert before == after
