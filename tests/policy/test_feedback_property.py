"""Property: the feedback controller's command never exceeds the budget.

The controller's safety contract (DESIGN.md §12) is that the *commanded*
target is clamped into ``[floor_w, min(ceiling_w, budget_w)]`` at every
decision -- any measured overshoot is device dynamics, never controller
intent.  Hypothesis drives the controller through arbitrary budget and
measurement sequences to pin the clamp, including adversarial cases the
simulation would rarely produce (budgets below the floor, measurements
far above the ceiling, abrupt alternation).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.policy import BudgetSchedule, FeedbackBudgetPolicy, PolicySpec
from repro.policy.api import PolicyObservation

FLOOR_W = 2.0
CEILING_W = 12.0

ticks = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=20.0),  # budget_w
        st.floats(min_value=0.0, max_value=40.0),  # measured_w
    ),
    min_size=1,
    max_size=64,
)
gains = st.floats(min_value=0.0, max_value=2.0)


@given(sequence=ticks, gain=gains, integral_gain=gains)
def test_command_never_exceeds_instantaneous_budget(
    sequence, gain, integral_gain
):
    spec = PolicySpec(
        kind="feedback",
        budget=BudgetSchedule.constant(5.0),
        gain=gain,
        integral_gain=integral_gain,
    )
    policy = FeedbackBudgetPolicy(spec, FLOOR_W, CEILING_W, ())
    policy.reset()
    for i, (budget_w, measured_w) in enumerate(sequence):
        target = policy.decide(
            PolicyObservation(
                now=i * spec.interval_s,
                measured_w=measured_w,
                budget_w=budget_w,
                target_w=None if i == 0 else target,
                inflight=0,
            )
        )
        # The clamp: floor-pinned when the budget dives below the floor,
        # otherwise never above the instantaneous budget (or ceiling).
        assert target >= FLOOR_W
        assert target <= max(FLOOR_W, min(CEILING_W, budget_w))


@given(sequence=ticks)
def test_reset_erases_history(sequence):
    spec = PolicySpec(kind="feedback", budget=BudgetSchedule.constant(5.0))
    policy = FeedbackBudgetPolicy(spec, FLOOR_W, CEILING_W, ())
    policy.reset()
    first_pass = []
    for i, (budget_w, measured_w) in enumerate(sequence):
        first_pass.append(
            policy.decide(
                PolicyObservation(
                    now=i * spec.interval_s,
                    measured_w=measured_w,
                    budget_w=budget_w,
                    target_w=None,
                    inflight=0,
                )
            )
        )
    policy.reset()
    second_pass = []
    for i, (budget_w, measured_w) in enumerate(sequence):
        second_pass.append(
            policy.decide(
                PolicyObservation(
                    now=i * spec.interval_s,
                    measured_w=measured_w,
                    budget_w=budget_w,
                    target_w=None,
                    inflight=0,
                )
            )
        )
    assert first_pass == second_pass
