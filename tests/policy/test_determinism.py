"""Determinism and zero-cost guarantees of the policy subsystem.

Three properties hold by construction and are pinned here:

1. ``repro.core`` never imports ``repro.policy``: a run with
   ``policy=None`` cannot even *load* the package, let alone pay for it
   (the wiring is a lazy import guarded on the config field).
2. A policy run is a pure function of (config, seed): repeating it
   changes nothing, and a policy that never moves the effective cap is
   bit-identical to no policy at all.
3. Policy randomness (the decision-cadence jitter) comes from the keyed
   ``policy.interval`` stream, never the builtin ``hash()`` -- so runs
   are bit-identical across interpreter processes with different
   ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy import BudgetSchedule, PolicySpec
from tests.conftest import tiny_ssd_config

SRC = str(Path(__file__).resolve().parents[2] / "src")

ZERO_IMPORT_SCRIPT = """
import sys
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core import sweep  # the sweep layer must not need it either
from repro.iogen.spec import IoPattern, JobSpec

# The facade (repro/__init__) re-exports repro.policy eagerly, like
# repro.validate.  Evict it and poison any reload: the no-policy
# execution path must never come back for it.
for name in [m for m in sys.modules if m.startswith("repro.policy")]:
    del sys.modules[name]


class Poison:
    def find_spec(self, name, path=None, target=None):
        if name.startswith("repro.policy"):
            raise ImportError(
                "repro.policy loaded on the no-policy path: " + name
            )
        return None


sys.meta_path.insert(0, Poison())
run_experiment(ExperimentConfig(
    device="ssd3",
    job=JobSpec(IoPattern.RANDREAD, block_size=16384, iodepth=4,
                runtime_s=0.005, size_limit_bytes=2 * 1024 * 1024),
))
assert not any(m.startswith("repro.policy") for m in sys.modules)
print("clean")
"""

POLICY_SCRIPT = """
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.faults import parse_fault_plan
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy import BudgetSchedule, PolicySpec

config = ExperimentConfig(
    device="ssd2",
    job=JobSpec(
        IoPattern.RANDWRITE,
        block_size=65536,
        iodepth=8,
        runtime_s=0.02,
        size_limit_bytes=128 * 1024 * 1024,
    ),
    seed=77,
    warmup_fraction=0.25,
    policy=PolicySpec(
        kind="feedback",
        budget=BudgetSchedule.step(high_w=14.0, low_w=9.0, period_s=0.01),
        interval_s=1.5e-3,
        window_s=3e-3,
    ),
    faults=parse_fault_plan("governor:at=0.012"),
)
result = run_experiment(config)
print(repr((
    result.mean_power_w,
    result.true_mean_power_w,
    result.throughput_bps,
    result.policy.decisions,
    result.policy.set_point_changes,
    result.policy.samples,
    result.faults.governor_failed,
)))
"""


def _run_with_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


def _config(policy, seed=3):
    return ExperimentConfig(
        device=tiny_ssd_config(),
        job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=64 * KiB,
            iodepth=8,
            runtime_s=0.02,
            size_limit_bytes=8 * MiB,
        ),
        seed=seed,
        warmup_fraction=0.25,
        policy=policy,
    )


def _fingerprint(result):
    return (
        result.mean_power_w,
        result.true_mean_power_w,
        result.throughput_bps,
        result.job.latency_stats().mean,
    )


class TestZeroImport:
    def test_no_policy_run_never_loads_the_package(self):
        """A policy-free experiment survives a poisoned repro.policy."""
        out = _run_with_hashseed(ZERO_IMPORT_SCRIPT, "0")
        assert out.strip() == "clean"

    def test_core_sources_never_import_policy_at_module_level(self):
        """The lazy import in run_experiment is the only coupling.

        Module-level imports of repro.policy anywhere in repro.core or
        repro.devices would make every run pay for the package; only
        function-local (lazy) imports are allowed there.
        """
        import ast

        src_root = Path(SRC) / "repro"
        offenders = []
        for layer in ("core", "devices", "sim"):
            for path in sorted((src_root / layer).glob("*.py")):
                tree = ast.parse(path.read_text())
                for node in tree.body:  # module level only
                    names = []
                    if isinstance(node, ast.Import):
                        names = [a.name for a in node.names]
                    elif isinstance(node, ast.ImportFrom):
                        names = [node.module or ""]
                    if any(n.startswith("repro.policy") for n in names):
                        offenders.append(f"{path}:{node.lineno}")
        assert not offenders, offenders


class TestInertPolicyIdentity:
    def test_ceiling_pinned_policy_bit_identical_to_no_policy(self):
        """A policy whose target never binds leaves the run untouched.

        The static controller with a generous constant budget commands
        the ceiling once; the effective cap is unchanged, so the device
        must see the exact same grant schedule as a policy-free run.
        """
        without = run_experiment(_config(policy=None))
        pinned = run_experiment(
            _config(
                PolicySpec(
                    kind="static",
                    budget=BudgetSchedule.constant(50.0),
                    interval_s=1e-3,
                    window_s=2e-3,
                )
            )
        )
        assert _fingerprint(pinned) == _fingerprint(without)
        assert without.policy is None
        # The pinned run still reports its (single-set-point) trail.
        assert pinned.policy.set_point_changes == 1
        assert pinned.policy.decisions > 1


class TestMeterSenseIdentity:
    def test_clean_meter_path_bit_identical_to_rail_path(self):
        """``sense="meter"`` with no sensor fault reads the identical
        rail-trace window the legacy ``sense="rail"`` code read: same
        physics, same decisions, bit for bit."""
        spec = PolicySpec(
            kind="feedback",
            budget=BudgetSchedule.step(
                high_w=18.0, low_w=3.2, period_s=0.01
            ),
            interval_s=1e-3,
            window_s=2e-3,
        )
        rail = run_experiment(_config(spec))
        meter = run_experiment(
            _config(dataclasses.replace(spec, sense="meter"))
        )
        assert _fingerprint(rail) == _fingerprint(meter)
        assert rail.policy.samples == meter.policy.samples
        assert rail.policy.decisions == meter.policy.decisions


class TestRepeatDeterminism:
    SPEC = PolicySpec(
        kind="feedback",
        budget=BudgetSchedule.step(high_w=18.0, low_w=3.2, period_s=0.01),
        interval_s=1e-3,
        window_s=2e-3,
    )

    def test_repeat_run_identical(self):
        first = run_experiment(_config(self.SPEC))
        second = run_experiment(_config(self.SPEC))
        assert _fingerprint(first) == _fingerprint(second)
        assert first.policy == second.policy
        assert first.policy.decisions > 5

    def test_different_seeds_jitter_differently(self):
        a = run_experiment(_config(self.SPEC, seed=1))
        b = run_experiment(_config(self.SPEC, seed=2))
        # The decision cadence is seeded: sample timestamps diverge.
        assert a.policy.samples != b.policy.samples


class TestCrossProcessDeterminism:
    def test_policy_run_identical_across_hash_seeds(self):
        outputs = {_run_with_hashseed(POLICY_SCRIPT, hs) for hs in ("1", "2")}
        assert len(outputs) == 1, f"policy runs diverged: {outputs}"
        text = outputs.pop()
        assert "True" in text  # the governor failure fired mid-run
