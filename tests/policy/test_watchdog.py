"""Unit tests for the safe-mode watchdog state machine."""

import pytest

from repro.policy import WatchdogSpec
from repro.policy.watchdog import Watchdog


def _spec(**overrides) -> WatchdogSpec:
    defaults = dict(
        stale_after_s=0.01,
        freeze_ticks=3,
        breach_w=1.0,
        breach_ticks=2,
        rearm_ticks=3,
    )
    defaults.update(overrides)
    return WatchdogSpec(**defaults)


def _healthy_step(wd, now, measured_w=None):
    # Default to a time-varying reading: a constant one would (rightly)
    # look like a frozen meter after freeze_ticks identical pairs.
    if measured_w is None:
        measured_w = 5.0 + now
    return wd.step(
        now, age_s=0.0, measured_w=measured_w, budget_w=8.0, target_w=7.0
    )


class TestWatchdogSpec:
    def test_rejects_nonpositive_staleness(self):
        with pytest.raises(ValueError):
            WatchdogSpec(stale_after_s=0.0)

    def test_rejects_nonpositive_tick_counts(self):
        with pytest.raises(ValueError):
            WatchdogSpec(freeze_ticks=0)
        with pytest.raises(ValueError):
            WatchdogSpec(breach_ticks=0)
        with pytest.raises(ValueError):
            WatchdogSpec(rearm_ticks=0)

    def test_rejects_negative_breach_margin(self):
        with pytest.raises(ValueError):
            WatchdogSpec(breach_w=-0.5)


class TestDetection:
    def test_stale_reading_trips_immediately(self):
        wd = Watchdog(_spec(), safe_cap_w=6.0)
        assert _healthy_step(wd, 0.0) is None
        result = wd.step(
            0.02, age_s=0.02, measured_w=5.0, budget_w=8.0, target_w=7.0
        )
        assert result == "degrade"
        assert wd.last_reason == "stale"
        assert wd.trips == 1
        assert wd.episodes == [[0.02, None, "stale"]]

    def test_frozen_meter_needs_consecutive_identical_pairs(self):
        wd = Watchdog(_spec(freeze_ticks=3), safe_cap_w=6.0)
        # 3 identical *pairs* = 4 identical readings; the first 3 pass.
        for tick in range(3):
            assert _healthy_step(wd, tick * 0.01, measured_w=5.0) is None
        assert _healthy_step(wd, 0.03, measured_w=5.0) == "degrade"
        assert wd.last_reason == "frozen"

    def test_moving_readings_reset_the_freeze_count(self):
        wd = Watchdog(_spec(freeze_ticks=2), safe_cap_w=6.0)
        for tick, measured in enumerate([5.0, 5.0, 5.1, 5.1, 5.2, 5.2]):
            assert _healthy_step(wd, tick * 0.01, measured) is None
        assert wd.trips == 0

    def test_budget_breach_needs_consecutive_ticks(self):
        wd = Watchdog(_spec(breach_ticks=2), safe_cap_w=6.0)
        over = 8.0 + 1.0 + 0.5
        assert _healthy_step(wd, 0.0, measured_w=over) is None
        assert _healthy_step(wd, 0.01, measured_w=over) == "degrade"
        assert wd.last_reason == "breach"

    def test_breach_within_margin_does_not_count(self):
        wd = Watchdog(_spec(breach_ticks=1), safe_cap_w=6.0)
        # Over budget and target, but inside the breach_w margin.
        result = wd.step(
            0.0, age_s=0.0, measured_w=8.9, budget_w=8.0, target_w=8.0
        )
        assert result is None
        assert wd.trips == 0

    def test_actuation_no_response_is_distinguished(self):
        wd = Watchdog(_spec(breach_ticks=1), safe_cap_w=6.0)
        # Under budget (8 W) but far over the 5 W commanded target: the
        # device stopped listening.
        result = wd.step(
            0.0, age_s=0.0, measured_w=7.0, budget_w=8.0, target_w=5.0
        )
        assert result == "degrade"
        assert wd.last_reason == "no_response"


class TestRearm:
    def _degraded(self):
        wd = Watchdog(_spec(rearm_ticks=3), safe_cap_w=6.0)
        wd.step(0.0, age_s=1.0, measured_w=5.0, budget_w=8.0, target_w=7.0)
        assert wd.degraded
        return wd

    def test_rearms_after_consecutive_healthy_ticks(self):
        wd = self._degraded()
        assert _healthy_step(wd, 0.01) is None
        assert _healthy_step(wd, 0.02) is None
        assert _healthy_step(wd, 0.03) == "rearm"
        assert not wd.degraded
        assert wd.episodes == [[0.0, 0.03, "stale"]]

    def test_unhealthy_tick_resets_the_rearm_count(self):
        wd = self._degraded()
        _healthy_step(wd, 0.01)
        _healthy_step(wd, 0.02)
        # Still stale: the healthy streak restarts.
        wd.step(0.03, age_s=1.0, measured_w=5.0, budget_w=8.0, target_w=7.0)
        _healthy_step(wd, 0.04)
        _healthy_step(wd, 0.05)
        assert wd.degraded
        assert _healthy_step(wd, 0.06) == "rearm"

    def test_retrip_opens_a_second_episode(self):
        wd = self._degraded()
        for tick in range(3):
            _healthy_step(wd, 0.01 + tick * 0.01)
        wd.step(0.1, age_s=1.0, measured_w=5.0, budget_w=8.0, target_w=7.0)
        assert wd.trips == 2
        assert [e[2] for e in wd.episodes] == ["stale", "stale"]
        assert wd.episodes[0][1] is not None
        assert wd.episodes[1][1] is None


class TestAccounting:
    def test_degraded_fraction(self):
        wd = Watchdog(_spec(rearm_ticks=100), safe_cap_w=6.0)
        _healthy_step(wd, 0.0)
        wd.step(0.01, age_s=1.0, measured_w=5.0, budget_w=8.0, target_w=7.0)
        _healthy_step(wd, 0.02)
        _healthy_step(wd, 0.03)
        # 3 of 4 ticks degraded (the trip tick counts as degraded).
        assert wd.degraded_fraction == pytest.approx(0.75)

    def test_no_ticks_means_zero_fraction(self):
        wd = Watchdog(_spec(), safe_cap_w=6.0)
        assert wd.degraded_fraction == 0.0
