"""Hypothesis profile for the policy suite.

Pinned for determinism like the validate suite: ``derandomize=True``
makes every run explore the same examples in the same order, and
``deadline=None`` keeps simulated examples from flaking on loaded
machines.  Export ``HYPOTHESIS_PROFILE=policy-thorough`` for a deeper
local sweep.
"""

from __future__ import annotations

import os

from hypothesis import settings

settings.register_profile(
    "policy", derandomize=True, deadline=None, max_examples=20
)
settings.register_profile(
    "policy-thorough", derandomize=True, deadline=None, max_examples=200
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "policy"))
