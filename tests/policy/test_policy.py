"""Unit behaviour of the policy specs, controllers, and runtime."""

from __future__ import annotations

import math
import types

import pytest

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.devices.catalog import build_device
from repro.devices.hdd_drive import IdleCondition
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy import (
    BudgetSchedule,
    FeedbackBudgetPolicy,
    HysteresisLadderPolicy,
    PolicySpec,
    StaticCapPolicy,
    build_policy,
)
from repro.policy.api import PolicyObservation
from repro.policy.runtime import PolicyRuntime
from tests.conftest import tiny_ssd_config


def obs(budget_w, measured_w=0.0, now=0.0, target_w=None, inflight=0):
    return PolicyObservation(
        now=now,
        measured_w=measured_w,
        budget_w=budget_w,
        target_w=target_w,
        inflight=inflight,
    )


def spec_for(kind, budget=None, **kw):
    if budget is None:
        budget = BudgetSchedule.constant(5.0)
    return PolicySpec(kind=kind, budget=budget, **kw)


class TestBudgetSchedule:
    def test_constant(self):
        sched = BudgetSchedule.constant(7.5)
        assert sched.watts_at(0.0) == 7.5
        assert sched.watts_at(123.4) == 7.5
        assert sched.min_w == 7.5

    def test_step_duty_cycle(self):
        sched = BudgetSchedule.step(high_w=10.0, low_w=4.0, period_s=1.0,
                                    duty=0.25)
        assert sched.watts_at(0.0) == 10.0
        assert sched.watts_at(0.24) == 10.0
        assert sched.watts_at(0.26) == 4.0
        assert sched.watts_at(0.99) == 4.0
        # Periodic: one full period later, same value.
        assert sched.watts_at(1.1) == sched.watts_at(0.1)
        assert sched.min_w == 4.0

    def test_diurnal_endpoints(self):
        sched = BudgetSchedule.diurnal(high_w=8.0, low_w=2.0, period_s=2.0)
        assert sched.watts_at(0.0) == pytest.approx(8.0)
        assert sched.watts_at(1.0) == pytest.approx(2.0)  # half period
        assert sched.watts_at(0.5) == pytest.approx(5.0)  # quarter: mid
        # Bounded by [low, high] everywhere.
        for i in range(40):
            value = sched.watts_at(i * 0.05)
            assert 2.0 - 1e-9 <= value <= 8.0 + 1e-9

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shape="sawtooth", high_w=2.0, low_w=1.0),
            dict(shape="step", high_w=2.0, low_w=0.0),
            dict(shape="step", high_w=1.0, low_w=2.0),
            dict(shape="step", high_w=2.0, low_w=1.0, period_s=0.0),
            dict(shape="step", high_w=2.0, low_w=1.0, duty=1.0),
        ],
    )
    def test_invalid_schedules_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BudgetSchedule(**kwargs)


class TestPolicySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            spec_for("pid")

    def test_window_shorter_than_interval_rejected(self):
        with pytest.raises(ValueError, match="window_s"):
            spec_for("static", interval_s=1e-3, window_s=5e-4)

    def test_budget_must_be_schedule(self):
        with pytest.raises(TypeError, match="BudgetSchedule"):
            PolicySpec(kind="static", budget=5.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(gain=-0.1),
            dict(hysteresis_w=-1.0),
            dict(slo_p99_s=0.0),
            dict(settle_intervals=-1),
            dict(sample_limit=8),
        ],
    )
    def test_invalid_tuning_rejected(self, kwargs):
        with pytest.raises(ValueError):
            spec_for("feedback", **kwargs)

    def test_describe_names_kind_and_range(self):
        spec = spec_for(
            "ladder", budget=BudgetSchedule.step(9.0, 3.0, 0.5)
        )
        assert spec.describe() == "ladder[step 3.00-9.00W]"


class TestStaticCapPolicy:
    def test_pins_to_tightest_budget(self):
        spec = spec_for("static", budget=BudgetSchedule.step(10.0, 4.0, 1.0))
        policy = StaticCapPolicy(spec, 2.0, 12.0, (2.0, 12.0))
        policy.reset()
        # The observation (even a generous budget) never moves it.
        assert policy.decide(obs(budget_w=10.0)) == 4.0
        assert policy.decide(obs(budget_w=4.0, measured_w=9.0)) == 4.0

    def test_clamped_to_actuator_range(self):
        spec = spec_for("static", budget=BudgetSchedule.constant(1.0))
        floor_pinned = StaticCapPolicy(spec, 3.0, 12.0, ())
        assert floor_pinned.decide(obs(budget_w=1.0)) == 3.0
        spec_high = spec_for("static", budget=BudgetSchedule.constant(99.0))
        ceiling_pinned = StaticCapPolicy(spec_high, 3.0, 12.0, ())
        assert ceiling_pinned.decide(obs(budget_w=99.0)) == 12.0


class TestFeedbackBudgetPolicy:
    def test_first_decision_starts_at_clamped_budget(self):
        spec = spec_for("feedback")
        policy = FeedbackBudgetPolicy(spec, 2.0, 4.0, ())
        policy.reset()
        # Budget 5 above ceiling 4: clamp to ceiling.
        assert policy.decide(obs(budget_w=5.0)) == 4.0

    def test_descends_on_overshoot(self):
        spec = spec_for("feedback")
        policy = FeedbackBudgetPolicy(spec, 1.0, 10.0, ())
        policy.reset()
        first = policy.decide(obs(budget_w=6.0, measured_w=0.0))
        # Measured above budget: negative error pulls the target down.
        second = policy.decide(obs(budget_w=6.0, measured_w=8.0))
        assert second < first

    def test_commanded_target_never_exceeds_budget(self):
        spec = spec_for("feedback")
        policy = FeedbackBudgetPolicy(spec, 1.0, 10.0, ())
        policy.reset()
        budgets = [6.0, 6.0, 3.0, 3.0, 8.0, 2.0, 9.0, 9.0]
        measured = [0.0, 1.0, 7.0, 2.0, 1.0, 8.0, 1.0, 9.5]
        for budget_w, measured_w in zip(budgets, measured):
            target = policy.decide(obs(budget_w=budget_w, measured_w=measured_w))
            assert 1.0 <= target <= min(10.0, budget_w) + 1e-12

    def test_integral_windup_is_clamped(self):
        spec = spec_for("feedback", integral_gain=0.5)
        policy = FeedbackBudgetPolicy(spec, 1.0, 10.0, ())
        policy.reset()
        policy.decide(obs(budget_w=2.0))
        # A long starved phase (huge persistent negative error) must not
        # accumulate unbounded integral...
        for _ in range(1000):
            policy.decide(obs(budget_w=2.0, measured_w=30.0))
        assert policy._integral == pytest.approx(-(10.0 - 1.0) / 0.5)
        # ...so recovery after the phase ends is still budget-bounded.
        target = policy.decide(obs(budget_w=8.0, measured_w=1.0))
        assert target <= 8.0


class TestHysteresisLadderPolicy:
    RUNGS = (2.8, 3.5, 20.0)

    def _policy(self, hysteresis_w=0.25):
        spec = spec_for("ladder", hysteresis_w=hysteresis_w)
        policy = HysteresisLadderPolicy(spec, 2.8, 20.0, self.RUNGS)
        policy.reset()
        return policy

    def test_initializes_at_highest_admissible_rung(self):
        policy = self._policy()
        assert policy.decide(obs(budget_w=5.0)) == 3.5
        fresh = self._policy()
        assert fresh.decide(obs(budget_w=25.0)) == 20.0

    def test_descends_immediately(self):
        policy = self._policy()
        assert policy.decide(obs(budget_w=25.0)) == 20.0
        assert policy.decide(obs(budget_w=3.0)) == 2.8

    def test_ascent_is_guarded_by_hysteresis(self):
        policy = self._policy(hysteresis_w=0.5)
        assert policy.decide(obs(budget_w=3.0)) == 2.8
        # Budget just above the next rung but inside the guard band.
        assert policy.decide(obs(budget_w=3.6)) == 2.8
        # Clear of the band: one rung per decision.
        assert policy.decide(obs(budget_w=4.0)) == 3.5
        assert policy.decide(obs(budget_w=4.0)) == 3.5  # 20.0 not admissible

    def test_holds_floor_when_no_rung_fits(self):
        policy = self._policy()
        assert policy.decide(obs(budget_w=1.0)) == 2.8
        assert policy.decide(obs(budget_w=1.0)) == 2.8

    def test_empty_rungs_rejected(self):
        spec = spec_for("ladder")
        with pytest.raises(ValueError, match="rung"):
            HysteresisLadderPolicy(spec, 1.0, 2.0, ())


class TestBuildPolicy:
    def test_dispatch(self):
        for kind, cls in (
            ("static", StaticCapPolicy),
            ("feedback", FeedbackBudgetPolicy),
            ("ladder", HysteresisLadderPolicy),
        ):
            policy = build_policy(spec_for(kind), 1.0, 10.0, (1.0, 10.0))
            assert isinstance(policy, cls)

    def test_unknown_kind_raises(self):
        fake = types.SimpleNamespace(kind="bang-bang")
        with pytest.raises(ValueError, match="unknown policy kind"):
            build_policy(fake, 1.0, 10.0, (1.0,))


class TestRuntimeActuatorDiscovery:
    def test_ssd_with_table_uses_operational_states(self, engine, rngs):
        device = build_device(engine, tiny_ssd_config(), rng=rngs)
        runtime = PolicyRuntime(
            engine, device, spec_for("static"), rngs
        )
        assert runtime.rungs == (2.8, 3.5, 20.0)
        assert runtime.floor_w == 2.8
        assert runtime.ceiling_w == 20.0

    def test_ssd_without_table_uses_envelope(self, engine, rngs):
        device = build_device(engine, "ssd3", rng=rngs)
        runtime = PolicyRuntime(
            engine, device, spec_for("feedback"), rngs
        )
        assert runtime.floor_w < runtime.ceiling_w
        assert len(runtime.rungs) == 5
        assert runtime.rungs[0] == pytest.approx(runtime.floor_w)
        assert runtime.rungs[-1] == pytest.approx(runtime.ceiling_w)

    def test_hdd_uses_epc_tiers(self, engine, rngs):
        device = build_device(engine, "hdd", rng=rngs)
        runtime = PolicyRuntime(engine, device, spec_for("ladder"), rngs)
        config = device.config
        idle = config.idle_power_w
        assert runtime.floor_w == pytest.approx(idle - config.idle_c_savings_w)
        assert runtime.ceiling_w == pytest.approx(
            idle + config.seek_power_w + config.transfer_power_w
        )
        assert len(runtime.rungs) == 3

    def test_hdd_actuation_maps_targets_to_idle_conditions(self, engine, rngs):
        device = build_device(engine, "hdd", rng=rngs)
        runtime = PolicyRuntime(engine, device, spec_for("ladder"), rngs)
        config = device.config
        idle = config.idle_power_w
        runtime._actuate(idle - config.idle_c_savings_w)
        assert device.idle_condition is IdleCondition.IDLE_C
        runtime._actuate(idle - config.idle_b_savings_w)
        assert device.idle_condition is IdleCondition.IDLE_B
        runtime._actuate(runtime.ceiling_w)
        assert device.idle_condition is IdleCondition.IDLE_A

    def test_device_without_actuator_rejected(self, engine, rngs):
        with pytest.raises(TypeError, match="actuator"):
            PolicyRuntime(engine, object(), spec_for("static"), rngs)


def _policy_config(kind, **spec_kw):
    budget = spec_kw.pop(
        "budget", BudgetSchedule.step(high_w=18.0, low_w=3.2, period_s=0.01)
    )
    return ExperimentConfig(
        device=tiny_ssd_config(),
        job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=64 * KiB,
            iodepth=8,
            runtime_s=0.02,
            size_limit_bytes=8 * MiB,
        ),
        seed=3,
        warmup_fraction=0.25,
        policy=PolicySpec(
            kind=kind, budget=budget, interval_s=1e-3, window_s=2e-3, **spec_kw
        ),
    )


class TestEndToEnd:
    def test_summary_records_the_run(self):
        result = run_experiment(_policy_config("feedback"))
        summary = result.policy
        assert summary is not None
        assert summary.spec.kind == "feedback"
        assert summary.decisions > 5
        assert 1 <= summary.set_point_changes <= summary.decisions
        assert summary.samples
        assert summary.sample_stride >= 1
        for t, budget_w, target_w, measured_w in summary.samples:
            assert 0.0 <= t
            assert summary.floor_w - 1e-9 <= target_w <= summary.ceiling_w + 1e-9
        assert math.isfinite(summary.mean_abs_error_w())
        assert summary.spec.describe() in summary.describe()

    def test_sample_decimation_respects_limit(self):
        config = _policy_config("static", sample_limit=16)
        result = run_experiment(config)
        summary = result.policy
        assert len(summary.samples) <= 16
        assert summary.decisions > 16  # decimation actually engaged
        assert summary.sample_stride > 1

    def test_static_policy_caps_the_device(self):
        # The tiny test SSD idles below its lowest rung, so a binding cap
        # needs a catalog device: ssd1 draws ~7.4 W on random writes and
        # its power states reach down to 6 W.
        job = JobSpec(
            IoPattern.RANDWRITE,
            block_size=256 * KiB,
            iodepth=8,
            runtime_s=0.02,
            size_limit_bytes=8 * MiB,
        )
        uncapped = run_experiment(
            ExperimentConfig(
                device="ssd1", job=job, seed=3, warmup_fraction=0.25
            )
        )
        capped = run_experiment(
            ExperimentConfig(
                device="ssd1",
                job=job,
                seed=3,
                warmup_fraction=0.25,
                policy=PolicySpec(
                    kind="static",
                    budget=BudgetSchedule.constant(
                        0.9 * uncapped.true_mean_power_w
                    ),
                    interval_s=1e-3,
                    window_s=2e-3,
                ),
            )
        )
        assert capped.true_mean_power_w < uncapped.true_mean_power_w

    def test_config_describe_names_the_policy(self):
        config = _policy_config("ladder")
        assert "ladder[step" in config.describe()
