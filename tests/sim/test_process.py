"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Interrupt, Process
from tests.conftest import drive


class TestProcessBasics:
    def test_process_runs_and_returns_value(self, engine):
        def worker(eng):
            yield eng.timeout(1.0)
            return "done"

        proc = engine.process(worker(engine))
        assert drive(engine, proc) == "done"
        assert engine.now == 1.0

    def test_yield_receives_event_value(self, engine):
        def worker(eng):
            value = yield eng.timeout(1.0, value=99)
            return value

        proc = engine.process(worker(engine))
        assert drive(engine, proc) == 99

    def test_process_waits_on_child_process(self, engine):
        def child(eng):
            yield eng.timeout(2.0)
            return 7

        def parent(eng):
            result = yield eng.process(child(eng))
            return result * 2

        proc = engine.process(parent(engine))
        assert drive(engine, proc) == 14

    def test_non_generator_rejected(self, engine):
        with pytest.raises(TypeError):
            Process(engine, lambda: None)

    def test_yielding_non_event_is_an_error(self, engine):
        def worker(eng):
            yield 42

        engine.process(worker(engine))
        with pytest.raises(SimulationError):
            engine.run()

    def test_is_alive_tracks_lifecycle(self, engine):
        def worker(eng):
            yield eng.timeout(1.0)

        proc = engine.process(worker(engine))
        assert proc.is_alive
        engine.run()
        assert not proc.is_alive

    def test_creation_order_does_not_matter(self, engine):
        log = []

        def worker(eng, tag, delay):
            yield eng.timeout(delay)
            log.append(tag)

        engine.process(worker(engine, "late", 2.0))
        engine.process(worker(engine, "early", 1.0))
        engine.run()
        assert log == ["early", "late"]


class TestProcessErrors:
    def test_exception_fails_process_event(self, engine):
        def worker(eng):
            yield eng.timeout(1.0)
            raise ValueError("inner")

        def parent(eng):
            try:
                yield eng.process(worker(eng))
            except ValueError as error:
                return f"caught {error}"

        proc = engine.process(parent(engine))
        assert drive(engine, proc) == "caught inner"

    def test_failed_event_thrown_into_waiter(self, engine):
        failing = engine.event()

        def worker(eng):
            try:
                yield failing
            except RuntimeError:
                return "handled"

        proc = engine.process(worker(engine))
        failing.fail(RuntimeError("x"))
        assert drive(engine, proc) == "handled"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, engine):
        def sleeper(eng):
            try:
                yield eng.timeout(100.0)
            except Interrupt as interrupt:
                return interrupt.cause

        proc = engine.process(sleeper(engine))
        engine.run(until=1.0)
        proc.interrupt(cause="wake up")
        assert drive(engine, proc) == "wake up"
        assert engine.now < 100.0

    def test_interrupting_finished_process_raises(self, engine):
        def quick(eng):
            yield eng.timeout(0.1)

        proc = engine.process(quick(engine))
        engine.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_unhandled_interrupt_is_an_error(self, engine):
        def sleeper(eng):
            yield eng.timeout(100.0)

        proc = engine.process(sleeper(engine))
        engine.run(until=1.0)
        proc.interrupt()
        with pytest.raises(SimulationError):
            engine.run()

    def test_process_continues_after_handled_interrupt(self, engine):
        def resilient(eng):
            try:
                yield eng.timeout(100.0)
            except Interrupt:
                pass
            yield eng.timeout(1.0)
            return eng.now

        proc = engine.process(resilient(engine))
        engine.run(until=5.0)
        proc.interrupt()
        assert drive(engine, proc) == pytest.approx(6.0)
