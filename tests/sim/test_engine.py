"""Unit tests for the event-loop kernel."""

import pytest

from repro.sim.engine import Engine, Event, SimulationError, Timeout


class TestEvent:
    def test_starts_pending(self, engine):
        event = engine.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, engine):
        event = engine.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_stores_exception(self, engine):
        event = engine.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_double_trigger_rejected(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError())

    def test_fail_requires_exception(self, engine):
        event = engine.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, engine):
        event = engine.event()
        with pytest.raises(SimulationError):
            __ = event.value
        with pytest.raises(SimulationError):
            __ = event.ok

    def test_callback_after_processing_runs_immediately(self, engine):
        event = engine.event()
        event.succeed("x")
        engine.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_run_in_fifo_order(self, engine):
        event = engine.event()
        order = []
        event.add_callback(lambda e: order.append(1))
        event.add_callback(lambda e: order.append(2))
        event.add_callback(lambda e: order.append(3))
        event.succeed()
        engine.run()
        assert order == [1, 2, 3]


class TestTimeout:
    def test_fires_at_delay(self, engine):
        fired = []
        Timeout(engine, 2.5).add_callback(lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, engine):
        fired = []
        engine.timeout(0.0).add_callback(lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [0.0]

    def test_carries_value(self, engine):
        timeout = engine.timeout(1.0, value="payload")
        engine.run()
        assert timeout.value == "payload"


class TestEngineLoop:
    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_events_process_in_time_order(self, engine):
        order = []
        engine.timeout(3.0).add_callback(lambda e: order.append(3))
        engine.timeout(1.0).add_callback(lambda e: order.append(1))
        engine.timeout(2.0).add_callback(lambda e: order.append(2))
        engine.run()
        assert order == [1, 2, 3]

    def test_ties_break_by_schedule_order(self, engine):
        order = []
        for tag in ("a", "b", "c"):
            engine.timeout(1.0).add_callback(
                lambda e, tag=tag: order.append(tag)
            )
        engine.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock_exactly(self, engine):
        engine.timeout(10.0)
        engine.run(until=4.0)
        assert engine.now == 4.0

    def test_run_until_processes_events_at_boundary(self, engine):
        fired = []
        engine.timeout(4.0).add_callback(lambda e: fired.append(True))
        engine.run(until=4.0)
        assert fired == [True]

    def test_run_until_in_past_rejected(self, engine):
        engine.timeout(5.0)
        engine.run(until=5.0)
        with pytest.raises(SimulationError):
            engine.run(until=1.0)

    def test_step_on_empty_queue_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.step()

    def test_peek_reports_next_event_time(self, engine):
        assert engine.peek() == float("inf")
        engine.timeout(7.0)
        assert engine.peek() == 7.0

    def test_call_at_runs_at_absolute_time(self, engine):
        seen = []
        engine.call_at(2.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.0]

    def test_call_at_past_rejected(self, engine):
        engine.timeout(1.0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(0.5, lambda: None)

    def test_stop_inside_callback_halts_run(self, engine):
        engine.timeout(1.0).add_callback(lambda e: engine.stop())
        engine.timeout(2.0)
        engine.run()
        assert engine.now == 1.0


class TestCompositeEvents:
    def test_any_of_fires_on_first(self, engine):
        t1 = engine.timeout(1.0, value="fast")
        t2 = engine.timeout(2.0, value="slow")
        any_event = engine.any_of([t1, t2])
        engine.run()
        assert any_event.value is t1

    def test_any_of_empty_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.any_of([])

    def test_all_of_collects_values_in_order(self, engine):
        t1 = engine.timeout(2.0, value="a")
        t2 = engine.timeout(1.0, value="b")
        all_event = engine.all_of([t1, t2])
        engine.run()
        assert all_event.value == ["a", "b"]

    def test_all_of_empty_succeeds_immediately(self, engine):
        all_event = engine.all_of([])
        assert all_event.triggered
        assert all_event.value == []

    def test_all_of_fails_if_child_fails(self, engine):
        good = engine.timeout(1.0)
        bad = engine.event()
        all_event = engine.all_of([good, bad])

        def watcher(event):
            pass

        all_event.add_callback(watcher)
        bad.fail(RuntimeError("child failed"))
        engine.run()
        assert not all_event.ok
        assert isinstance(all_event.value, RuntimeError)
