"""Unit tests for the fastpath building blocks.

The differential harness in ``tests/equivalence/`` proves end-to-end
equivalence; these tests pin the individual contracts the harness rests
on: offset-stream ``skip()`` fidelity, the stationarity detector's
windowing logic, the eligibility gate's decline reasons, and the
``FastpathOptions`` / ``FastpathSummary`` surfaces.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro._units import KiB
from repro.core.experiment import ExperimentConfig
from repro.devices.catalog import DEVICE_PRESETS, build_device
from repro.devices.link import LinkPowerMode
from repro.iogen.patterns import RandomOffsets, SequentialOffsets
from repro.iogen.spec import IoPattern, JobSpec
from repro.iogen.stats import IoRecord
from repro.obs.events import Tracer
from repro.sim.engine import Engine
from repro.sim.fastpath.detect import StationarityDetector
from repro.sim.fastpath.driver import _batch_eligibility, splice_eligibility
from repro.sim.fastpath.options import FastpathOptions, FastpathSummary
from repro.sim.rng import RngStreams


# -- offset stream skip() ------------------------------------------------


BLOCK = 4 * KiB


def _sequential_pair():
    make = lambda: SequentialOffsets(0, 64 * BLOCK, BLOCK)  # noqa: E731
    return make(), make()


def _random_pair(seed: int = 7):
    make = lambda: RandomOffsets(  # noqa: E731
        0, 4096 * BLOCK, BLOCK, np.random.default_rng(seed)
    )
    return make(), make()


class TestOffsetSkip:
    """skip(n) must equal n discarded next_offset() calls exactly."""

    @pytest.mark.parametrize("n", [0, 1, 7, 64, 100])
    def test_sequential_skip_matches_discards(self, n):
        skipped, stepped = _sequential_pair()
        skipped.skip(n)
        for _ in range(n):
            stepped.next_offset()
        assert [skipped.next_offset() for _ in range(16)] == [
            stepped.next_offset() for _ in range(16)
        ]

    def test_sequential_skip_wraps_like_stepping(self):
        skipped, stepped = _sequential_pair()
        n = 3 * skipped.slots + 5  # several whole laps plus a remainder
        skipped.skip(n)
        for _ in range(n):
            stepped.next_offset()
        assert skipped.next_offset() == stepped.next_offset()

    @pytest.mark.parametrize("n", [0, 1, 100, 4096, 5000, 3 * 4096 + 17])
    def test_random_skip_matches_discards(self, n):
        skipped, stepped = _random_pair()
        skipped.skip(n)
        for _ in range(n):
            stepped.next_offset()
        assert [skipped.next_offset() for _ in range(64)] == [
            stepped.next_offset() for _ in range(64)
        ]

    def test_random_skip_mid_batch_keeps_rng_position(self):
        """A skip that starts mid-batch and crosses the batch boundary
        leaves the underlying generator at the identical stream
        position (the same whole batches are drawn)."""
        skipped, stepped = _random_pair()
        for gen in (skipped, stepped):
            for _ in range(3):
                gen.next_offset()
        n = 4100  # remainder of batch one + most of batch two
        skipped.skip(n)
        for _ in range(n):
            stepped.next_offset()
        assert (
            skipped._rng.bit_generator.state
            == stepped._rng.bit_generator.state
        )
        assert skipped.next_offset() == stepped.next_offset()

    def test_negative_skip_rejected(self):
        for gen in (*_sequential_pair(), *_random_pair()):
            with pytest.raises(ValueError):
                gen.skip(-1)


# -- stationarity detector ----------------------------------------------


class _ConstantTrace:
    """A rail trace stub whose window mean is scripted per probe window."""

    def __init__(self, means):
        self._means = list(means)

    def mean(self, t_start, t_end):
        return self._means.pop(0) if self._means else 5.0


class _RailStub:
    def __init__(self, trace):
        self.trace = trace


class _JobStub:
    def __init__(self, block_size=BLOCK):
        self.records = []
        self._issued_bytes = 0
        self.spec = dataclasses.make_dataclass("Spec", ["block_size"])(
            block_size
        )

    def complete_window(self, n, t_start, latency_s):
        """Append n evenly spaced completions inside [t_start, t_start+1ms)."""
        for i in range(n):
            submit = t_start + i * (1e-3 / n)
            self.records.append(
                IoRecord(submit, submit + latency_s, self.spec.block_size)
            )
            self._issued_bytes += self.spec.block_size


def _opts(**overrides):
    defaults = dict(window_records=8)
    defaults.update(overrides)
    return FastpathOptions(**defaults)


class TestStationarityDetector:
    def _steady(self, detector, job, probes, latency_s=1e-4, start=0.0):
        """Feed ``probes`` steady windows; return the last probe result."""
        result = None
        for k in range(probes):
            job.complete_window(8, start + k * 1e-3, latency_s)
            result = detector.probe(start + (k + 1) * 1e-3, 100 * (k + 1))
        return result

    def test_needs_three_checkpoints(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([])), _opts()
        )
        assert detector.next_probe_len == 8
        assert self._steady(detector, job, probes=2) is None

    def test_steady_run_yields_the_latest_window(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([5.0, 5.0])), _opts()
        )
        stats = self._steady(detector, job, probes=3)
        assert stats is not None
        assert stats.t_start == pytest.approx(2e-3)
        assert stats.t_end == pytest.approx(3e-3)
        assert stats.window_s == pytest.approx(1e-3)
        assert (stats.records_start, stats.records_end) == (16, 24)
        assert stats.records == 8
        assert stats.submissions == 8
        assert stats.events == 100
        assert stats.mean_power_w == 5.0

    def test_probe_advances_the_next_probe_threshold(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([])), _opts()
        )
        self._steady(detector, job, probes=1)
        assert detector.next_probe_len == len(job.records) + 8

    def test_rate_drift_rejected(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([5.0, 5.0])), _opts()
        )
        self._steady(detector, job, probes=2)
        # Third window spans 2.5 ms for the same 8 records: rate falls
        # 60%, far outside the 2% gate.
        job.complete_window(8, 2e-3, 1e-4)
        assert detector.probe(4.5e-3, 300) is None

    def test_latency_drift_rejected(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([5.0, 5.0])), _opts()
        )
        self._steady(detector, job, probes=2)
        job.complete_window(8, 2e-3, 1.5e-4)  # +50% latency, gate is 10%
        assert detector.probe(3e-3, 300) is None

    def test_power_drift_rejected(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([5.0, 6.0])), _opts()
        )
        assert self._steady(detector, job, probes=3) is None

    def test_zero_width_window_rejected(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([])), _opts()
        )
        self._steady(detector, job, probes=2)
        job.complete_window(8, 2e-3, 1e-4)
        assert detector.probe(2e-3, 300) is None  # same instant as probe 2

    def test_reset_forgets_checkpoints_and_rearms(self):
        job = _JobStub()
        detector = StationarityDetector(
            job, _RailStub(_ConstantTrace([5.0] * 8)), _opts()
        )
        assert self._steady(detector, job, probes=3) is not None
        detector.reset()
        assert detector.next_probe_len == len(job.records) + 8
        # Post-reset the detector must re-earn three checkpoints.
        assert self._steady(detector, job, probes=2, start=3e-3) is None
        assert self._steady(detector, job, probes=1, start=5e-3) is not None


# -- eligibility gate ----------------------------------------------------


def _config(pattern=IoPattern.RANDREAD, **overrides):
    return ExperimentConfig(
        device="ssd3",
        job=JobSpec(
            pattern=pattern, block_size=64 * KiB, iodepth=8, runtime_s=4e-3
        ),
        **overrides,
    )


def _device(name="ssd3", engine=None, config=None):
    return build_device(
        engine or Engine(), config or name, rng=RngStreams(7)
    )


class TestEligibilityGate:
    """Each decline clause fires for exactly its own hidden-state hazard."""

    def test_eligible_read_job_passes_both_gates(self):
        device = _device()
        assert splice_eligibility(device, _config()) == ""
        assert _batch_eligibility(device, _config()) == ""

    def test_writes_decline(self):
        reason = splice_eligibility(
            _device(), _config(pattern=IoPattern.RANDWRITE)
        )
        assert "write" in reason

    def test_fault_plans_decline(self):
        from repro.faults import parse_fault_plan

        config = _config(faults=parse_fault_plan("governor:at=0.002"))
        assert "fault" in splice_eligibility(_device(), config)

    def test_policies_decline(self):
        from repro.policy import BudgetSchedule, PolicySpec

        config = _config(
            policy=PolicySpec(
                kind="feedback",
                budget=BudgetSchedule.constant(8.0),
                interval_s=1e-3,
                window_s=2e-3,
            )
        )
        assert "polic" in splice_eligibility(_device(), config)

    def test_power_wave_declines(self):
        assert "wave" in splice_eligibility(_device("ssd1"), _config())

    def test_rail_audit_declines(self):
        from repro.validate.audit import RailAudit

        device = _device()
        device.rail.attach_audit(RailAudit())
        assert "audit" in splice_eligibility(device, _config())

    def test_non_operational_power_state_declines(self):
        device = _device("pm1743")
        device._resident = device.config.power_states[3]
        assert not device.config.power_states[3].operational
        assert "non-operational" in splice_eligibility(device, _config())

    def test_hdd_declines(self):
        assert "not a simulated SSD" in splice_eligibility(
            _device("hdd"), _config()
        )

    def test_batch_declines_low_power_link(self):
        device = _device()
        device.link.mode = LinkPowerMode.SLUMBER
        assert "link" in _batch_eligibility(device, _config())
        # ...but splice still allows it: splice keeps the event kernel.
        assert splice_eligibility(device, _config()) == ""

    def test_batch_declines_apst(self):
        # pm1743 has non-operational states for APST to doze into.
        config = dataclasses.replace(
            DEVICE_PRESETS["pm1743"](), apst_idle_timeout_s=1e-3
        )
        assert "APST" in _batch_eligibility(_device(config=config), _config())

    def test_batch_declines_enabled_tracer(self):
        engine = Engine(tracer=Tracer())
        assert "tracing" in _batch_eligibility(
            _device(engine=engine), _config()
        )


# -- options + summary surfaces -----------------------------------------


class TestFastpathOptions:
    def test_defaults_validate(self):
        assert FastpathOptions().mode == "auto"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "warp"},
            {"window_records": 7},
            {"min_windows": 0},
            {"margin_windows": 0},
            {"rate_rtol": 0.0},
            {"power_rtol": 1.0},
            {"latency_rtol": -0.1},
            {"max_splices": 0},
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            FastpathOptions(**overrides)

    def test_frozen_and_hashable(self):
        opts = FastpathOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.mode = "batch"
        assert hash(opts) == hash(FastpathOptions())


class TestFastpathSummary:
    def test_declined_describe_names_the_reason(self):
        text = FastpathSummary(
            engaged=False, mode="exact", reason="rail audit shadows"
        ).describe()
        assert "declined" in text and "rail audit shadows" in text

    def test_batch_describe_counts_ios_and_events(self):
        text = FastpathSummary(
            engaged=True,
            mode="batch",
            batched_ios=123,
            events_fast_forwarded=4567,
        ).describe()
        assert "batch" in text and "123" in text and "4567" in text

    def test_splice_describe_counts_splices(self):
        text = FastpathSummary(
            engaged=True,
            mode="splice",
            events_fast_forwarded=99,
            time_fast_forwarded_s=2e-3,
        ).describe()
        assert "splice" in text and "2.0 ms" in text and "99" in text
