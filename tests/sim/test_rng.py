"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(seed=7)
        assert streams.get("a") is streams.get("a")

    def test_streams_reproducible_across_instances(self):
        a = RngStreams(seed=7).get("noise").normal(size=8)
        b = RngStreams(seed=7).get("noise").normal(size=8)
        assert (a == b).all()

    def test_different_names_independent(self):
        streams = RngStreams(seed=7)
        a = streams.get("alpha").normal(size=8)
        b = streams.get("beta").normal(size=8)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("x").normal(size=8)
        b = RngStreams(seed=2).get("x").normal(size=8)
        assert not (a == b).all()

    def test_creation_order_does_not_change_draws(self):
        first = RngStreams(seed=3)
        first.get("one")
        order_a = first.get("two").normal(size=4)

        second = RngStreams(seed=3)
        order_b = second.get("two").normal(size=4)
        assert (order_a == order_b).all()

    def test_names_sharing_8_byte_prefix_not_collide(self):
        """Regression: child seeds were once derived from only the first
        8 bytes of the name, so ``"controller.jitter"`` and
        ``"controllerXYZ"`` (identical through ``"controll"``) silently
        shared one stream."""
        streams = RngStreams(seed=7)
        a = streams.get("controller.jitter").normal(size=16)
        b = streams.get("controllerXYZ").normal(size=16)
        assert not (a == b).all()

    def test_long_names_differing_past_prefix_not_collide(self):
        streams = RngStreams(seed=7)
        a = streams.get("device.channel.0.transfer").normal(size=16)
        b = streams.get("device.channel.1.transfer").normal(size=16)
        assert not (a == b).all()

    def test_fork_is_deterministic_and_distinct(self):
        root = RngStreams(seed=5)
        fork_a = root.fork(1).get("x").normal(size=4)
        fork_a2 = RngStreams(seed=5).fork(1).get("x").normal(size=4)
        fork_b = root.fork(2).get("x").normal(size=4)
        assert (fork_a == fork_a2).all()
        assert not (fork_a == fork_b).all()
