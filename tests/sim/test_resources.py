"""Unit tests for resources, stores and gates."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.resources import AdjustableResource, Gate, Resource, Store
from tests.conftest import drive


def holder(engine, resource, hold_time, log, tag):
    yield resource.request()
    log.append(("start", tag, engine.now))
    try:
        yield engine.timeout(hold_time)
    finally:
        resource.release()
    log.append(("end", tag, engine.now))


class TestResource:
    def test_capacity_validated(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_grants_up_to_capacity(self, engine):
        resource = Resource(engine, capacity=2)
        log = []
        for tag in "abc":
            engine.process(holder(engine, resource, 1.0, log, tag))
        engine.run()
        starts = {tag: t for kind, tag, t in log if kind == "start"}
        assert starts["a"] == 0.0
        assert starts["b"] == 0.0
        assert starts["c"] == 1.0  # waited for a release

    def test_fifo_grant_order(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        for tag in "abcd":
            engine.process(holder(engine, resource, 1.0, log, tag))
        engine.run()
        start_order = [tag for kind, tag, __ in log if kind == "start"]
        assert start_order == list("abcd")

    def test_release_without_holder_raises(self, engine):
        resource = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_queued_counts_waiters(self, engine):
        resource = Resource(engine, capacity=1)
        resource.request()
        resource.request()
        resource.request()
        assert resource.in_use == 1
        assert resource.queued == 2


class TestAdjustableResource:
    def test_growing_capacity_grants_waiters(self, engine):
        resource = AdjustableResource(engine, capacity=1)
        log = []
        for tag in "ab":
            engine.process(holder(engine, resource, 5.0, log, tag))
        engine.run(until=1.0)
        assert [t for k, t, __ in log if k == "start"] == ["a"]
        resource.set_capacity(2)
        engine.run(until=2.0)
        assert [t for k, t, __ in log if k == "start"] == ["a", "b"]

    def test_shrinking_does_not_preempt(self, engine):
        resource = AdjustableResource(engine, capacity=2)
        log = []
        for tag in "ab":
            engine.process(holder(engine, resource, 3.0, log, tag))
        engine.run(until=1.0)
        resource.set_capacity(1)
        # Both holders keep running to completion.
        engine.run(until=4.0)
        assert sorted(t for k, t, __ in log if k == "end") == ["a", "b"]

    def test_shrunk_capacity_blocks_new_grants_until_drained(self, engine):
        resource = AdjustableResource(engine, capacity=2)
        log = []
        engine.process(holder(engine, resource, 2.0, log, "a"))
        engine.process(holder(engine, resource, 4.0, log, "b"))
        engine.run(until=1.0)
        resource.set_capacity(1)
        engine.process(holder(engine, resource, 1.0, log, "c"))
        engine.run()
        start_c = [t for k, tag, t in log if k == "start" and tag == "c"][0]
        # c must wait until BOTH a (t=2) and b (t=4) release, since the
        # capacity is now 1 and b alone saturates it.
        assert start_c == 4.0


class TestStore:
    def test_put_get_fifo(self, engine):
        store = Store(engine)
        store.put(1)
        store.put(2)
        first = store.get()
        second = store.get()
        engine.run()
        assert first.value == 1
        assert second.value == 2

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        result = []

        def getter(eng):
            item = yield store.get()
            result.append((item, eng.now))

        def putter(eng):
            yield eng.timeout(2.0)
            yield store.put("late")

        engine.process(getter(engine))
        engine.process(putter(engine))
        engine.run()
        assert result == [("late", 2.0)]

    def test_bounded_put_blocks_when_full(self, engine):
        store = Store(engine, capacity=1)
        times = []

        def producer(eng):
            for i in range(2):
                yield store.put(i)
                times.append(eng.now)

        def consumer(eng):
            yield eng.timeout(3.0)
            yield store.get()

        engine.process(producer(engine))
        engine.process(consumer(engine))
        engine.run()
        assert times[0] == 0.0
        assert times[1] == 3.0

    def test_try_put_respects_capacity(self, engine):
        store = Store(engine, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")
        assert len(store) == 1

    def test_invalid_capacity(self, engine):
        with pytest.raises(SimulationError):
            Store(engine, capacity=0)


class TestGate:
    def test_open_gate_passes_immediately(self, engine):
        gate = Gate(engine, is_open=True)
        event = gate.wait_open()
        assert event.triggered

    def test_closed_gate_blocks_until_open(self, engine):
        gate = Gate(engine, is_open=False)
        passed = []

        def waiter(eng):
            yield gate.wait_open()
            passed.append(eng.now)

        engine.process(waiter(engine))
        engine.run(until=1.0)
        assert passed == []
        gate.open()
        engine.run(until=1.0)
        assert passed == [1.0]

    def test_open_releases_all_waiters(self, engine):
        gate = Gate(engine, is_open=False)
        passed = []

        def waiter(eng, tag):
            yield gate.wait_open()
            passed.append(tag)

        for tag in range(5):
            engine.process(waiter(engine, tag))
        engine.run(until=0.5)
        gate.open()
        engine.run(until=0.5)
        assert sorted(passed) == [0, 1, 2, 3, 4]

    def test_reusable_after_close(self, engine):
        gate = Gate(engine, is_open=True)
        gate.close()
        assert not gate.is_open
        event = gate.wait_open()
        assert not event.triggered
        gate.open()
        assert event.triggered
