"""Unit and property tests for StepTrace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import StepTrace


class TestStepTraceBasics:
    def test_initial_value_holds(self):
        trace = StepTrace(t0=0.0, initial=5.0)
        assert trace.value_at(0.0) == 5.0
        assert trace.value_at(100.0) == 5.0

    def test_set_creates_breakpoints(self):
        trace = StepTrace()
        trace.set(1.0, 2.0)
        trace.set(2.0, 4.0)
        assert trace.value_at(0.5) == 0.0
        assert trace.value_at(1.0) == 2.0
        assert trace.value_at(1.5) == 2.0
        assert trace.value_at(2.0) == 4.0

    def test_set_in_past_rejected(self):
        trace = StepTrace()
        trace.set(2.0, 1.0)
        with pytest.raises(ValueError):
            trace.set(1.0, 5.0)

    def test_same_time_overwrites(self):
        trace = StepTrace()
        trace.set(1.0, 2.0)
        trace.set(1.0, 3.0)
        assert trace.value_at(1.0) == 3.0
        assert len(trace) == 2  # t0 plus the single overwritten breakpoint

    def test_equal_value_collapses(self):
        trace = StepTrace(initial=1.0)
        trace.set(1.0, 1.0)
        assert len(trace) == 1

    def test_sample_vectorized(self):
        trace = StepTrace()
        trace.set(1.0, 10.0)
        values = trace.sample([0.0, 0.99, 1.0, 5.0])
        assert list(values) == [0.0, 0.0, 10.0, 10.0]

    def test_sample_uniform(self):
        trace = StepTrace(initial=3.0)
        times, values = trace.sample_uniform(0.0, 1.0, rate_hz=10)
        assert len(times) == 10
        assert np.allclose(values, 3.0)

    def test_sample_uniform_validates(self):
        trace = StepTrace()
        with pytest.raises(ValueError):
            trace.sample_uniform(1.0, 1.0, 10)
        with pytest.raises(ValueError):
            trace.sample_uniform(0.0, 1.0, 0)


class TestStepTraceIntegration:
    def test_integrate_rectangle(self):
        trace = StepTrace(initial=2.0)
        assert trace.integrate(0.0, 5.0) == pytest.approx(10.0)

    def test_integrate_steps(self):
        trace = StepTrace(initial=1.0)
        trace.set(1.0, 3.0)
        # [0,1) at 1 + [1,2) at 3 = 4
        assert trace.integrate(0.0, 2.0) == pytest.approx(4.0)

    def test_mean_is_time_weighted(self):
        trace = StepTrace(initial=0.0)
        trace.set(9.0, 10.0)  # 10 W only in the last 10% of [0, 10)
        assert trace.mean(0.0, 10.0) == pytest.approx(1.0)

    def test_min_max_over_window(self):
        trace = StepTrace(initial=5.0)
        trace.set(1.0, 2.0)
        trace.set(2.0, 8.0)
        assert trace.min(0.0, 3.0) == 2.0
        assert trace.max(0.0, 3.0) == 8.0
        # Window excluding the 8.0 segment:
        assert trace.max(0.0, 1.5) == 5.0

    def test_invalid_window_rejected(self):
        trace = StepTrace()
        with pytest.raises(ValueError):
            trace.integrate(2.0, 1.0)

    def test_rolling_mean_max_finds_worst_window(self):
        trace = StepTrace(initial=0.0)
        trace.set(5.0, 10.0)
        trace.set(6.0, 0.0)
        worst = trace.rolling_mean_max(
            window=1.0, t_start=0.0, t_end=10.0, step=0.5
        )
        assert worst == pytest.approx(10.0)

    def test_rolling_mean_longer_than_trace_falls_back(self):
        trace = StepTrace(initial=4.0)
        worst = trace.rolling_mean_max(window=100.0, t_start=0.0, t_end=1.0, step=1.0)
        assert worst == pytest.approx(4.0)


@st.composite
def step_traces(draw):
    """Random step traces plus their breakpoints for oracle comparison."""
    n = draw(st.integers(min_value=1, max_value=12))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.01, max_value=9.99),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    trace = StepTrace(t0=0.0, initial=draw(st.floats(0, 100)))
    for t, v in zip(times, values):
        trace.set(t, v)
    return trace


def naive_rolling_mean_max(trace, window, t_start, t_end, step):
    """Pre-optimization oracle: per-window calls to ``mean``."""
    worst = float("-inf")
    t = t_start
    while t + window <= t_end + 1e-12:
        worst = max(worst, trace.mean(t, t + window))
        t += step
    if worst == float("-inf"):
        worst = trace.mean(t_start, t_end)
    return worst


class TestRollingMeanMaxEquivalence:
    @given(
        step_traces(),
        st.floats(min_value=0.1, max_value=5.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_per_window_means(self, trace, window, step):
        fast = trace.rolling_mean_max(window, 0.0, 10.0, step)
        oracle = naive_rolling_mean_max(trace, window, 0.0, 10.0, step)
        assert fast == pytest.approx(oracle, rel=1e-9, abs=1e-9)

    def test_window_past_last_breakpoint_holds_value(self):
        trace = StepTrace(initial=2.0)
        trace.set(1.0, 6.0)
        # Windows extend past the last breakpoint; the value holds.
        assert trace.rolling_mean_max(2.0, 0.0, 20.0, 1.0) == pytest.approx(6.0)

    def test_rejects_degenerate_span(self):
        trace = StepTrace(initial=1.0)
        with pytest.raises(ValueError):
            trace.rolling_mean_max(1.0, 5.0, 5.0, 1.0)


class TestStepTraceProperties:
    @given(step_traces())
    @settings(max_examples=60, deadline=None)
    def test_integral_matches_dense_sampling(self, trace):
        """The analytic integral agrees with a fine Riemann sum."""
        analytic = trace.integrate(0.0, 10.0)
        times = np.linspace(0.0, 10.0, 20001)[:-1]
        riemann = trace.sample(times).sum() * (10.0 / 20000)
        assert analytic == pytest.approx(riemann, rel=1e-2, abs=1e-2)

    @given(step_traces())
    @settings(max_examples=60, deadline=None)
    def test_mean_bounded_by_min_max(self, trace):
        mean = trace.mean(0.0, 10.0)
        assert trace.min(0.0, 10.0) - 1e-9 <= mean <= trace.max(0.0, 10.0) + 1e-9

    @given(step_traces(), st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_value_at_matches_sample(self, trace, t):
        assert trace.value_at(t) == trace.sample([t])[0]
