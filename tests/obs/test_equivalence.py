"""Tracing must be strictly passive: results identical on and off.

The whole observability layer rides on one invariant -- enabling a
tracer, metrics collector, or profiler cannot change a single bit of any
:class:`~repro.core.experiment.ExperimentResult`.  These tests pin it
three ways: byte-identical pickles for one experiment, value-identical
sweeps, and event streams that are stable across ``PYTHONHASHSEED``.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec
from repro.obs.events import Tracer
from repro.obs.metrics import MetricsCollector
from repro.obs.profile import RunProfiler

SRC = str(Path(__file__).resolve().parents[2] / "src")


def quick_config(**overrides):
    defaults = dict(
        device="ssd1",
        job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=64 * KiB,
            iodepth=8,
            runtime_s=0.01,
            size_limit_bytes=2 * MiB,
        ),
        power_state=2,
        seed=11,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestTracerOffEquivalence:
    def test_results_byte_identical_with_and_without_tracer(self):
        baseline = run_experiment(quick_config())
        tracer = Tracer()
        tracer.subscribe(MetricsCollector())
        traced = run_experiment(
            quick_config(), tracer=tracer, profiler=RunProfiler()
        )
        assert len(tracer.events) > 0, "sanity: tracing actually happened"
        assert pickle.dumps(traced) == pickle.dumps(baseline)

    def test_hdd_results_unchanged_by_tracing(self):
        config = quick_config(
            device="hdd",
            power_state=None,
            job=JobSpec(
                IoPattern.RANDREAD,
                block_size=64 * KiB,
                iodepth=4,
                runtime_s=0.02,
                size_limit_bytes=1 * MiB,
            ),
        )
        baseline = run_experiment(config)
        traced = run_experiment(config, tracer=Tracer())
        assert pickle.dumps(traced) == pickle.dumps(baseline)

    def test_sweep_values_unchanged_by_tracing(self):
        grid = SweepGrid(
            device="ssd3",
            patterns=(IoPattern.RANDREAD,),
            block_sizes=(16 * KiB, 64 * KiB),
            iodepths=(1, 8),
            power_states=(None,),
            base_job=JobSpec(
                IoPattern.RANDREAD,
                block_size=4096,
                iodepth=1,
                runtime_s=0.01,
                size_limit_bytes=2 * MiB,
            ),
            seed=5,
        )
        plain = run_sweep(grid)
        traced = run_sweep(grid, tracer=Tracer(), profiler=RunProfiler())
        assert list(traced) == list(plain)
        for point in plain:
            assert pickle.dumps(traced[point]) == pickle.dumps(plain[point])


EVENT_STREAM_SCRIPT = """
from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.iogen.spec import IoPattern, JobSpec
from repro.obs.events import Tracer

tracer = Tracer()
run_experiment(
    ExperimentConfig(
        device="ssd1",
        job=JobSpec(IoPattern.RANDWRITE, block_size=64 * KiB, iodepth=8,
                    runtime_s=0.01, size_limit_bytes=2 * MiB),
        power_state=2,
        seed=11,
    ),
    tracer=tracer,
)
for e in tracer.events:
    print(f"{e.time!r}|{e.seq}|{e.kind.value}|{e.component}|{sorted(e.fields.items())!r}")
"""


class TestEventOrderingDeterminism:
    def test_event_stream_identical_across_hash_seeds(self):
        outputs = set()
        for hashseed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", EVENT_STREAM_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1, "event stream differed across hash seeds"
        assert "|io_submit|" in outputs.pop()

    def test_event_order_is_total_and_stable_in_process(self):
        streams = []
        for _ in range(2):
            tracer = Tracer()
            run_experiment(quick_config(), tracer=tracer)
            streams.append(
                [(e.time, e.seq, e.kind, e.component) for e in tracer.events]
            )
        assert streams[0] == streams[1]
        keys = [(t, s) for t, s, _k, _c in streams[0]]
        assert keys == sorted(keys)
