"""Tests for sim-time metrics instruments and the event-driven collector."""

import pytest

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.iogen.spec import IoPattern, JobSpec
from repro.obs.events import EventKind, Tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    StateTimer,
    TimeWeightedGauge,
)


class TestCounter:
    def test_counts_up(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        assert c.snapshot() == {"type": "counter", "value": 3.5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(4.0)
        g.set(2.0)
        assert g.snapshot() == {"type": "gauge", "value": 2.0}


class TestTimeWeightedGauge:
    def test_mean_is_time_weighted(self):
        g = TimeWeightedGauge()
        g.set(0.0, 0.0)
        g.set(10.0, 1.0)  # value 0 for [0, 1)
        g.set(0.0, 3.0)  # value 10 for [1, 3)
        # integral = 0*1 + 10*2 = 20 over span 3.
        assert g.mean() == pytest.approx(20.0 / 3.0)

    def test_mean_extends_to_end_time(self):
        g = TimeWeightedGauge()
        g.set(4.0, 0.0)
        # value 4 held for [0, 2]: mean is 4 regardless of updates.
        assert g.mean(end_time=2.0) == pytest.approx(4.0)

    def test_clock_reset_starts_new_epoch(self):
        g = TimeWeightedGauge()
        g.set(2.0, 0.0)
        g.set(2.0, 1.0)  # epoch 1: value 2 over 1 s
        g.set(6.0, 0.0)  # sweep moved to its next point: clock reset
        g.set(6.0, 1.0)  # epoch 2: value 6 over 1 s
        # No negative interval, both epochs weighted equally.
        assert g.mean() == pytest.approx(4.0)

    def test_add_is_relative(self):
        g = TimeWeightedGauge()
        g.add(1.0, 0.0)
        g.add(1.0, 1.0)
        g.add(-2.0, 2.0)
        assert g.value == 0.0
        # 1 for [0,1), 2 for [1,2): integral 3 over span 2.
        assert g.mean() == pytest.approx(1.5)


class TestStateTimer:
    def test_durations_and_fractions(self):
        t = StateTimer()
        t.set_state("ps0", 0.0)
        t.set_state("ps4", 1.0)
        t.set_state("ps0", 4.0)
        durations = t.durations(end_time=5.0)
        assert durations == {"ps0": 2.0, "ps4": 3.0}
        fractions = t.fractions(end_time=5.0)
        assert fractions["ps0"] == pytest.approx(0.4)
        assert fractions["ps4"] == pytest.approx(0.6)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_keys_sorted_deterministically(self):
        t = StateTimer()
        t.set_state("zeta", 0.0)
        t.set_state("alpha", 1.0)
        t.set_state("zeta", 2.0)
        assert list(t.durations(end_time=3.0)) == ["alpha", "zeta"]

    def test_clock_reset_keeps_residency(self):
        t = StateTimer()
        t.set_state("ps0", 0.0)
        t.set_state("ps2", 2.0)  # ps0 resident 2 s in epoch 1
        t.set_state("ps0", 0.0)  # clock reset: epoch 2
        t.set_state("ps2", 1.0)  # ps0 resident 1 s more
        assert t.durations()["ps0"] == pytest.approx(3.0)


class TestHistogram:
    def test_snapshot_quantiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(51.0)  # nearest rank
        assert snap["p99"] == pytest.approx(100.0)

    def test_empty_snapshot(self):
        assert Histogram().snapshot() == {"type": "histogram", "count": 0}

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_empty_quantile_is_zero(self):
        """Nearest-rank on zero samples degrades to 0.0, never raises:
        a collector that saw no IOs must still snapshot cleanly."""
        h = Histogram()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.0

    def test_single_sample_quantiles_all_return_it(self):
        """With one sample every nearest-rank quantile IS that sample --
        the index min(count - 1, int(q * count)) clamps to 0."""
        h = Histogram()
        h.observe(42.5)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 42.5
        snap = h.snapshot()
        assert snap["p50"] == 42.5
        assert snap["p99"] == 42.5
        assert snap["min"] == snap["max"] == 42.5


class TestMetricsRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("io.submitted", component="ssd.io", kind="read")
        b = reg.counter("io.submitted", kind="read", component="ssd.io")
        c = reg.counter("io.submitted", component="ssd.io", kind="write")
        assert a is b  # label order is irrelevant
        assert a is not c
        assert len(reg) == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", device="d")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x", device="d")

    def test_snapshot_shape_and_ordering(self):
        reg = MetricsRegistry()
        reg.counter("b.metric", device="d2").inc()
        reg.counter("b.metric", device="d1").inc()
        reg.gauge("a.metric").set(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.metric", "b.metric"]
        assert list(snap["b.metric"]) == ["device=d1", "device=d2"]
        assert snap["a.metric"]["_"] == {"type": "gauge", "value": 1.0}


class TestMetricsCollector:
    class _Clock:
        def __init__(self) -> None:
            self.now = 0.0

    def _traced(self):
        clock = self._Clock()
        tracer = Tracer(keep_events=False)
        tracer.attach(clock)
        collector = MetricsCollector()
        tracer.subscribe(collector)
        return clock, tracer, collector

    def test_io_counters_and_outstanding_depth(self):
        clock, tracer, collector = self._traced()
        tracer.emit(EventKind.IO_SUBMIT, "d.io", kind="read")
        clock.now = 1.0
        tracer.emit(EventKind.IO_SUBMIT, "d.io", kind="read")
        clock.now = 2.0
        tracer.emit(
            EventKind.IO_COMPLETE, "d.io", kind="read", latency_s=2.0
        )
        snap = collector.snapshot()
        label = "component=d.io,kind=read"
        assert snap["io.submitted"][label]["value"] == 2.0
        assert snap["io.completed"][label]["value"] == 1.0
        assert snap["io.latency_s"][label]["count"] == 1
        # Depth: 1 over [0,1), 2 over [1,2) -> mean 1.5 at t=2.
        assert snap["io.outstanding"]["component=d.io"]["mean"] == pytest.approx(
            1.5
        )

    def test_power_state_residency(self):
        clock, tracer, collector = self._traced()
        tracer.emit(EventKind.POWER_STATE, "d.power", state="ps0")
        clock.now = 1.0
        tracer.emit(EventKind.POWER_STATE, "d.power", state="ps4")
        clock.now = 4.0
        tracer.emit(EventKind.MARK, "tick")  # advances last_time only
        snap = collector.snapshot()
        fractions = snap["power.state"]["component=d.power"]["fractions"]
        assert fractions == {"ps0": 0.25, "ps4": 0.75}

    def test_mechanism_counters(self):
        clock, tracer, collector = self._traced()
        tracer.emit(EventKind.GC_START, "d.gc", block=1)
        tracer.emit(EventKind.GC_END, "d.gc", block=1, relocated=17)
        tracer.emit(EventKind.SPINUP_START, "h.spindle")
        tracer.emit(EventKind.SPINDOWN_START, "h.spindle")
        tracer.emit(EventKind.ALPM_END, "d.alpm", mode="slumber")
        tracer.emit(EventKind.CACHE_HIT, "d.wbuf")
        tracer.emit(EventKind.CACHE_MISS, "d.wbuf")
        snap = collector.snapshot()
        assert snap["gc.collections"]["component=d.gc"]["value"] == 1.0
        assert snap["gc.pages_relocated"]["component=d.gc"]["value"] == 17.0
        assert snap["spindle.spinups"]["component=h.spindle"]["value"] == 1.0
        assert snap["spindle.spindowns"]["component=h.spindle"]["value"] == 1.0
        assert snap["alpm.transitions"]["component=d.alpm"]["value"] == 1.0
        assert snap["cache.hits"]["component=d.wbuf"]["value"] == 1.0
        assert snap["cache.misses"]["component=d.wbuf"]["value"] == 1.0

    def test_collector_over_real_experiment(self):
        tracer = Tracer(keep_events=False)
        collector = MetricsCollector()
        tracer.subscribe(collector)
        config = ExperimentConfig(
            device="ssd1",
            job=JobSpec(
                IoPattern.RANDREAD,
                block_size=16 * KiB,
                iodepth=4,
                runtime_s=0.01,
                size_limit_bytes=2 * MiB,
            ),
            power_state=2,
        )
        result = run_experiment(config, tracer=tracer)
        snap = collector.snapshot()
        io = snap["io.completed"]["component=ssd1.io,kind=read"]
        assert io["value"] == len(result.job.records)
        fractions = snap["power.state"]["component=ssd1.power"]["fractions"]
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert "ps2" in fractions
        assert collector.events_seen > 0
        assert collector.last_time > 0.0
