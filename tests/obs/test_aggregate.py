"""Tests for mergeable cross-point metrics (repro.obs.aggregate)."""

import random

import pytest

from repro.obs.aggregate import (
    DEFAULT_BOUNDS,
    BucketedHistogram,
    SweepRollup,
    merge_snapshots,
)


def exact_nearest_rank(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def assert_snapshots_close(a, b):
    """Recursive equality, tolerating float summation-order ulps.

    Bucket *counts* merge exactly; float *sums* may differ in the last
    bit depending on accumulation order, which is fine -- the honesty
    contract is about counts and bounds, not about bitwise sums.
    """
    assert type(a) is type(b), (a, b)
    if isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            assert_snapshots_close(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_snapshots_close(x, y)
    elif isinstance(a, float):
        assert a == pytest.approx(b)
    else:
        assert a == b


class TestBucketedHistogram:
    def test_basic_accounting(self):
        h = BucketedHistogram()
        for v in (1e-5, 2e-5, 3e-5):
            h.observe(v)
        assert h.count == 3
        assert h.min == 1e-5
        assert h.max == 3e-5
        assert h.mean == pytest.approx(2e-5)

    def test_empty_quantile_is_zero(self):
        h = BucketedHistogram()
        assert h.quantile(0.5) == 0.0
        assert h.min == 0.0 and h.max == 0.0 and h.mean == 0.0

    def test_single_sample_quantiles_return_it(self):
        h = BucketedHistogram()
        h.observe(3.7e-4)
        # Clamped to the observed max: with one sample the bucket edge
        # would over-report, the clamp makes the bound tight.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 3.7e-4

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            BucketedHistogram().quantile(1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            BucketedHistogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            BucketedHistogram(bounds=())

    def test_quantile_never_under_reports(self):
        """The honesty contract: the bucketed quantile is an upper bound
        on the exact nearest-rank quantile of the same population."""
        rng = random.Random(7)
        samples = [rng.lognormvariate(-8.0, 2.0) for _ in range(500)]
        h = BucketedHistogram.from_samples(samples)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert h.quantile(q) >= exact_nearest_rank(samples, q)
            assert h.quantile(q) <= max(samples)

    def test_overflow_bucket_reports_observed_max(self):
        h = BucketedHistogram(bounds=(1.0, 2.0))
        h.observe(50.0)
        h.observe(60.0)
        assert h.quantile(0.99) == 60.0

    def test_merge_equals_pooled_population(self):
        rng = random.Random(11)
        first = [rng.uniform(1e-6, 1e-2) for _ in range(100)]
        second = [rng.uniform(1e-4, 1.0) for _ in range(150)]
        merged = BucketedHistogram.from_samples(first).merge(
            BucketedHistogram.from_samples(second)
        )
        pooled = BucketedHistogram.from_samples(first + second)
        assert merged.counts == pooled.counts
        assert_snapshots_close(merged.snapshot(), pooled.snapshot())

    def test_merge_is_associative_and_commutative(self):
        rng = random.Random(13)
        shards = [
            BucketedHistogram.from_samples(
                rng.uniform(1e-6, 1e-1) for _ in range(50)
            )
            for _ in range(3)
        ]
        a, b, c = shards
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a.merge(b))
        assert left.snapshot() == right.snapshot() == swapped.snapshot()

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            BucketedHistogram(bounds=(1.0, 2.0)).merge(BucketedHistogram())

    def test_snapshot_round_trip(self):
        h = BucketedHistogram.from_samples([1e-5, 4e-4, 0.2, 7.0])
        clone = BucketedHistogram.from_snapshot(h.snapshot())
        assert clone.snapshot() == h.snapshot()
        assert clone.bounds == h.bounds

    def test_empty_snapshot_round_trip(self):
        snap = BucketedHistogram().snapshot()
        assert snap == {"type": "bucketed_histogram", "count": 0}
        clone = BucketedHistogram.from_snapshot(snap)
        assert clone.count == 0
        assert clone.bounds == DEFAULT_BOUNDS


@pytest.fixture(scope="module")
def two_results():
    from repro.core.experiment import run_experiment
    from repro.iogen.spec import IoPattern
    from repro.studies.common import QUICK, point_config

    return [
        run_experiment(
            point_config(
                "ssd2", IoPattern.RANDREAD, 64 * 1024, depth, scale=QUICK
            )
        )
        for depth in (4, 16)
    ]


class TestSweepRollup:
    def test_groups_by_device_and_power_state(self, two_results):
        rollup = SweepRollup.from_results(two_results)
        assert rollup.group_by == ("device", "power_state")
        assert set(rollup.groups) == {("ssd2", "None")}
        stats = rollup.groups[("ssd2", "None")]
        assert stats.points == 2
        assert stats.ios == sum(len(r.job.records) for r in two_results)
        assert stats.latency.count == stats.ios
        assert stats.energy_j > 0

    def test_accepts_mapping_like_sweep_results(self, two_results):
        keyed = {i: r for i, r in enumerate(two_results)}
        rollup = SweepRollup.from_results(keyed)
        assert rollup.groups[("ssd2", "None")].points == 2

    def test_alternate_grouping_separates_iodepths(self, two_results):
        rollup = SweepRollup.from_results(two_results, group_by=("iodepth",))
        assert set(rollup.groups) == {("4",), ("16",)}

    def test_unknown_dimension_rejected(self, two_results):
        with pytest.raises(ValueError):
            SweepRollup.from_results(two_results, group_by=("color",))

    def test_merge_accumulates_across_shards(self, two_results):
        first = SweepRollup.from_results(two_results[:1])
        second = SweepRollup.from_results(two_results[1:])
        merged = first.merge(second)
        pooled = SweepRollup.from_results(two_results)
        assert_snapshots_close(merged.snapshot(), pooled.snapshot())

    def test_merge_rejects_different_grouping(self, two_results):
        a = SweepRollup.from_results(two_results)
        b = SweepRollup.from_results(two_results, group_by=("iodepth",))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_is_json_shaped(self, two_results):
        snap = SweepRollup.from_results(two_results).snapshot()
        assert snap["group_by"] == ["device", "power_state"]
        group = snap["groups"]["ssd2/None"]
        assert group["points"] == 2
        assert group["latency"]["type"] == "bucketed_histogram"


class TestMergeSnapshots:
    def test_counters_add(self):
        a = {"io.done": {"_": {"type": "counter", "value": 3.0}}}
        b = {"io.done": {"_": {"type": "counter", "value": 4.0}}}
        assert merge_snapshots(a, b)["io.done"]["_"]["value"] == 7.0

    def test_disjoint_series_pass_through(self):
        a = {"io.done": {"_": {"type": "counter", "value": 1.0}}}
        b = {"gc.runs": {"_": {"type": "counter", "value": 2.0}}}
        merged = merge_snapshots(a, b)
        assert merged["io.done"]["_"]["value"] == 1.0
        assert merged["gc.runs"]["_"]["value"] == 2.0

    def test_exact_histogram_percentiles_dropped(self):
        """Merged p99s cannot be derived from two p99s; reporting one
        anyway is the lie this module exists to prevent."""
        a = {
            "lat": {
                "_": {
                    "type": "histogram", "count": 2, "sum": 3.0,
                    "min": 1.0, "max": 2.0, "mean": 1.5,
                    "p50": 1.0, "p99": 2.0,
                }
            }
        }
        b = {
            "lat": {
                "_": {
                    "type": "histogram", "count": 1, "sum": 9.0,
                    "min": 9.0, "max": 9.0, "mean": 9.0,
                    "p50": 9.0, "p99": 9.0,
                }
            }
        }
        merged = merge_snapshots(a, b)["lat"]["_"]
        assert merged["count"] == 3
        assert merged["mean"] == pytest.approx(4.0)
        assert merged["min"] == 1.0 and merged["max"] == 9.0
        assert "p50" not in merged and "p99" not in merged

    def test_bucketed_histogram_percentiles_survive(self):
        a = BucketedHistogram.from_samples([1e-5, 2e-5]).snapshot()
        b = BucketedHistogram.from_samples([5e-3]).snapshot()
        merged = merge_snapshots(
            {"lat": {"_": a}}, {"lat": {"_": b}}
        )["lat"]["_"]
        pooled = BucketedHistogram.from_samples([1e-5, 2e-5, 5e-3])
        assert merged == pooled.snapshot()
        assert "p99" in merged

    def test_empty_histogram_merges_cleanly(self):
        empty = BucketedHistogram().snapshot()
        full = BucketedHistogram.from_samples([1e-4]).snapshot()
        merged = merge_snapshots(
            {"lat": {"_": empty}}, {"lat": {"_": full}}
        )["lat"]["_"]
        assert merged == full

    def test_state_timer_durations_add_fractions_recompute(self):
        a = {
            "ps": {
                "_": {
                    "type": "state_timer", "state": "ps0",
                    "durations_s": {"ps0": 3.0, "ps2": 1.0},
                    "fractions": {"ps0": 0.75, "ps2": 0.25},
                }
            }
        }
        b = {
            "ps": {
                "_": {
                    "type": "state_timer", "state": "ps2",
                    "durations_s": {"ps2": 4.0},
                    "fractions": {"ps2": 1.0},
                }
            }
        }
        merged = merge_snapshots(a, b)["ps"]["_"]
        assert merged["durations_s"] == {"ps0": 3.0, "ps2": 5.0}
        assert merged["fractions"]["ps2"] == pytest.approx(5.0 / 8.0)
        assert merged["state"] is None  # no single current state exists

    def test_gauges_keep_conservative_max(self):
        a = {"depth": {"_": {"type": "gauge", "value": 3.0}}}
        b = {"depth": {"_": {"type": "gauge", "value": 7.0}}}
        assert merge_snapshots(a, b)["depth"]["_"]["value"] == 7.0

    def test_type_mismatch_raises(self):
        a = {"x": {"_": {"type": "counter", "value": 1.0}}}
        b = {"x": {"_": {"type": "gauge", "value": 1.0}}}
        with pytest.raises(ValueError):
            merge_snapshots(a, b)

    def test_merge_is_associative(self):
        shards = [
            {"io": {"_": {"type": "counter", "value": float(v)}}}
            for v in (1, 2, 3)
        ]
        left = merge_snapshots(merge_snapshots(shards[0], shards[1]), shards[2])
        right = merge_snapshots(shards[0], merge_snapshots(shards[1], shards[2]))
        assert left == right
