"""Tests for the structured event tracer."""

import pytest

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.obs.events import (
    INTERVAL_PAIRS,
    NULL_TRACER,
    EventKind,
    NullTracer,
    SimEvent,
    Tracer,
)
from repro.iogen.spec import IoPattern, JobSpec
from repro.sim.engine import Engine


class FakeEngine:
    """Just a clock: what a tracer actually needs from an engine."""

    def __init__(self) -> None:
        self.now = 0.0


def quick_config(**overrides):
    defaults = dict(
        device="ssd3",
        job=JobSpec(
            IoPattern.RANDREAD,
            block_size=16 * KiB,
            iodepth=4,
            runtime_s=0.01,
            size_limit_bytes=2 * MiB,
        ),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.attach(object())
        tracer.emit(EventKind.MARK, "x", anything=1)
        tracer.subscribe(lambda e: pytest.fail("null tracer delivered"))
        tracer.emit(EventKind.MARK, "x")
        assert tracer.events == ()

    def test_engine_default_is_shared_singleton(self):
        assert Engine().tracer is NULL_TRACER
        assert Engine().tracer is Engine().tracer

    def test_explicit_tracer_is_attached(self):
        tracer = Tracer()
        engine = Engine(tracer=tracer)
        assert engine.tracer is tracer
        engine.timeout(1.5)
        engine.step()
        tracer.emit(EventKind.MARK, "probe")
        assert tracer.events[-1].time == 1.5


class TestTracer:
    def test_emit_records_time_and_monotone_seq(self):
        clock = FakeEngine()
        tracer = Tracer()
        tracer.attach(clock)
        tracer.emit(EventKind.IO_SUBMIT, "dev.io", kind="read")
        clock.now = 2.0
        tracer.emit(EventKind.IO_COMPLETE, "dev.io", kind="read")
        first, second = tracer.events
        assert (first.time, first.seq) == (0.0, 1)
        assert (second.time, second.seq) == (2.0, 2)
        assert second.fields == {"kind": "read"}

    def test_field_names_may_shadow_parameters(self):
        # ``kind`` and ``component`` are positional-only on emit() exactly
        # so payloads can use those natural names.
        tracer = Tracer()
        tracer.emit(EventKind.IO_SUBMIT, "dev", kind="write", component="q0")
        assert tracer.events[0].fields == {"kind": "write", "component": "q0"}

    def test_subscriber_fan_out_in_emit_order(self):
        tracer = Tracer(keep_events=False)
        seen_a, seen_b = [], []
        tracer.subscribe(seen_a.append)
        tracer.subscribe(seen_b.append)
        tracer.emit(EventKind.GC_START, "gc", block=1)
        tracer.emit(EventKind.GC_END, "gc", block=1)
        assert [e.kind for e in seen_a] == [EventKind.GC_START, EventKind.GC_END]
        assert seen_a == seen_b
        # keep_events=False: fan-out only, no buffer.
        assert tracer.events == ()

    def test_scope_labels_subsequent_events(self):
        tracer = Tracer()
        tracer.emit(EventKind.MARK, "before")
        tracer.set_scope("point A")
        tracer.emit(EventKind.MARK, "during")
        events = tracer.events
        assert events[0].scope is None
        assert events[-1].scope == "point A"
        # set_scope itself drops a MARK carrying the new scope.
        assert any(
            e.kind is EventKind.MARK and e.fields.get("scope") == "point A"
            for e in events
        )

    def test_of_kind_and_components(self):
        tracer = Tracer()
        tracer.emit(EventKind.IO_SUBMIT, "b.io")
        tracer.emit(EventKind.GC_START, "a.gc")
        tracer.emit(EventKind.IO_COMPLETE, "b.io")
        assert [e.kind for e in tracer.of_kind(EventKind.GC_START)] == [
            EventKind.GC_START
        ]
        assert len(tracer.of_kind(EventKind.IO_SUBMIT, EventKind.IO_COMPLETE)) == 2
        # First-appearance order, not alphabetical.
        assert tracer.components() == ["b.io", "a.gc"]

    def test_clear_keeps_sequence_numbering(self):
        tracer = Tracer()
        tracer.emit(EventKind.MARK, "x")
        tracer.clear()
        tracer.emit(EventKind.MARK, "x")
        assert tracer.events[0].seq == 2

    def test_describe_is_readable(self):
        event = SimEvent(
            time=0.5, seq=3, kind=EventKind.GC_START, component="ssd.gc",
            fields={"block": 7},
        )
        text = event.describe()
        assert "ssd.gc" in text and "gc_start" in text and "block=7" in text

    def test_interval_pairs_are_bijective(self):
        assert len(set(INTERVAL_PAIRS.values())) == len(INTERVAL_PAIRS)
        for start, end in INTERVAL_PAIRS.items():
            assert start.value.endswith("_start")
            assert end.value.endswith("_end")


class TestExperimentTracing:
    def test_experiment_emits_ordered_io_stream(self):
        tracer = Tracer()
        run_experiment(quick_config(), tracer=tracer)
        events = tracer.events
        assert events, "an instrumented experiment must emit events"
        # Total order: (time, seq) is sorted as emitted.
        keys = [(e.time, e.seq) for e in events]
        assert keys == sorted(keys)
        submits = tracer.of_kind(EventKind.IO_SUBMIT)
        completes = tracer.of_kind(EventKind.IO_COMPLETE)
        assert len(submits) == len(completes) > 0
        assert all(e.scope == quick_config().describe() for e in events)

    def test_power_state_transitions_traced(self):
        tracer = Tracer()
        run_experiment(quick_config(device="ssd1", power_state=2), tracer=tracer)
        states = [
            e.fields["state"] for e in tracer.of_kind(EventKind.POWER_STATE)
        ]
        assert states[0] == "ps0"  # baseline residency at t=0
        assert "ps2" in states

    def test_governor_admissions_balance_releases(self):
        tracer = Tracer()
        run_experiment(
            quick_config(
                device="ssd1",
                job=JobSpec(
                    IoPattern.RANDWRITE,
                    block_size=256 * KiB,
                    iodepth=16,
                    runtime_s=0.01,
                    size_limit_bytes=4 * MiB,
                ),
            ),
            tracer=tracer,
        )
        admissions = tracer.of_kind(EventKind.GOV_REQUEST)
        releases = tracer.of_kind(EventKind.GOV_RELEASE)
        assert len(admissions) > 0
        # Ops still in flight at the end of the run hold their grants, so
        # releases may trail admissions but can never exceed them.
        assert 0 < len(releases) <= len(admissions)
        assert all("committed_w" in e.fields for e in admissions)
        assert all(isinstance(e.fields["queued"], bool) for e in admissions)
