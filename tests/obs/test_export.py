"""Tests for trace/metrics export formats (JSONL, Chrome, metrics JSON)."""

import json

import pytest

from repro.obs.events import EventKind, SimEvent, Tracer
from repro.obs.export import (
    event_to_dict,
    events_to_chrome_trace,
    load_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
)


def make_events():
    """A small synthetic trace exercising every export shape."""
    return [
        SimEvent(0.0, 1, EventKind.MARK, "tracer", "pt A", {"scope": "pt A"}),
        SimEvent(0.0, 2, EventKind.POWER_STATE, "d.power", "pt A",
                 {"state": "ps0", "state_index": 0}),
        SimEvent(0.001, 3, EventKind.IO_SUBMIT, "d.io", "pt A",
                 {"kind": "read", "nbytes": 4096}),
        SimEvent(0.002, 4, EventKind.GC_START, "d.gc", "pt A", {"block": 9}),
        SimEvent(0.003, 5, EventKind.GC_END, "d.gc", "pt A",
                 {"block": 9, "relocated": 12}),
        SimEvent(0.004, 6, EventKind.IO_COMPLETE, "d.io", "pt A",
                 {"kind": "read", "latency_s": 0.003}),
        # Second scope: a sweep's next point, clock restarted.
        SimEvent(0.0, 7, EventKind.SPINUP_START, "h.spindle", "pt B",
                 {"surge_w": 24.0}),
        SimEvent(0.005, 8, EventKind.SPINUP_END, "h.spindle", "pt B", {}),
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = make_events()
        assert write_events_jsonl(events, path) == len(events)
        loaded = load_jsonl(path)
        assert len(loaded) == len(events)
        for original, parsed in zip(events, loaded):
            assert parsed == event_to_dict(original)
            assert parsed["t"] == original.time
            assert parsed["seq"] == original.seq
            assert parsed["kind"] == original.kind.value
            assert parsed["component"] == original.component
            assert parsed["scope"] == original.scope

    def test_lines_are_independent_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(make_events(), path)
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            assert isinstance(json.loads(line), dict)  # each parses alone

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_events_jsonl(make_events(), a)
        write_events_jsonl(make_events(), b)
        assert a.read_bytes() == b.read_bytes()


class TestChromeTrace:
    def test_structure(self):
        payload = events_to_chrome_trace(make_events())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        for entry in payload["traceEvents"]:
            assert entry["ph"] in {"M", "B", "E", "i", "C"}

    def test_one_process_per_scope_one_thread_per_component(self):
        payload = events_to_chrome_trace(make_events())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert process_names == {"pt A", "pt B"}
        assert thread_names == {"d.power", "d.io", "d.gc", "h.spindle"}

    def test_interval_pairs_become_balanced_slices(self):
        payload = events_to_chrome_trace(make_events())
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "E"]
        assert [e["name"] for e in begins] == ["gc", "spin_up"]
        assert len(begins) == len(ends)
        for b, e in zip(begins, ends):
            assert (b["pid"], b["tid"]) == (e["pid"], e["tid"])
            assert b["ts"] <= e["ts"]

    def test_unmatched_end_degrades_to_instant(self):
        orphan = [SimEvent(0.0, 1, EventKind.GC_END, "d.gc", None, {})]
        payload = events_to_chrome_trace(orphan)
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert "E" not in phases
        assert "i" in phases

    def test_marks_are_skipped(self):
        only_mark = [SimEvent(0.0, 1, EventKind.MARK, "tracer", None, {})]
        assert events_to_chrome_trace(only_mark)["traceEvents"] == []

    def test_power_state_emits_counter_series(self):
        payload = events_to_chrome_trace(make_events())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "d.power state"
        assert counters[0]["args"] == {"state": 0}

    def test_timestamps_in_microseconds(self):
        payload = events_to_chrome_trace(make_events())
        submit = next(
            e for e in payload["traceEvents"] if e.get("name") == "io_submit"
        )
        assert submit["ts"] == pytest.approx(1000.0)  # 0.001 s

    def test_write_returns_count_and_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(make_events(), path)
        loaded = json.loads(path.read_text())
        assert count == len(loaded["traceEvents"])

    def test_round_trip_slices_balance_per_track(self, tmp_path):
        """Written-then-reloaded traces keep B/E slices balanced on every
        (pid, tid) track, with stack discipline -- Perfetto refuses or
        misrenders tracks whose begin/end counts drift."""
        events = make_events() + [
            # A second, interleaved interval pair on another component of
            # the same scope, so one track closing cannot mask another.
            SimEvent(0.006, 9, EventKind.GC_START, "d.gc", "pt A",
                     {"block": 10}),
            SimEvent(0.008, 10, EventKind.GC_END, "d.gc", "pt A",
                     {"block": 10, "relocated": 3}),
        ]
        path = tmp_path / "trace.json"
        write_chrome_trace(events, path)
        loaded = json.loads(path.read_text())
        tracks = {}
        for entry in loaded["traceEvents"]:
            if entry["ph"] in ("B", "E"):
                tracks.setdefault((entry["pid"], entry["tid"]), []).append(
                    entry
                )
        assert tracks, "expected at least one slice track"
        for track_entries in tracks.values():
            depth = 0
            for entry in sorted(track_entries, key=lambda e: e["ts"]):
                depth += 1 if entry["ph"] == "B" else -1
                assert depth >= 0, "E before matching B on a track"
            assert depth == 0, "unbalanced B/E slices on a track"

    def test_non_json_fields_stringified(self):
        weird = [
            SimEvent(0.0, 1, EventKind.IO_SUBMIT, "d.io", None,
                     {"pattern": EventKind.MARK}),
        ]
        payload = events_to_chrome_trace(weird)
        entry = payload["traceEvents"][-1]  # after process/thread metadata
        assert entry["ph"] == "i"
        assert isinstance(entry["args"]["pattern"], str)


class TestMetricsJson:
    def test_sections(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(
            {"io.completed": {"_": {"type": "counter", "value": 3.0}}},
            path,
            profile={"n_points": 1},
            cache={"hits": 2, "misses": 1},
        )
        payload = json.loads(path.read_text())
        assert set(payload) == {"metrics", "profile", "cache"}
        assert payload["metrics"]["io.completed"]["_"]["value"] == 3.0

    def test_optional_sections_omitted(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json({}, path)
        assert set(json.loads(path.read_text())) == {"metrics"}


class TestTracerToExport:
    def test_real_tracer_events_export_cleanly(self, tmp_path):
        tracer = Tracer()
        tracer.set_scope("demo")
        tracer.emit(EventKind.ALPM_START, "d.alpm", from_mode="active",
                    to_mode="slumber")
        tracer.emit(EventKind.ALPM_END, "d.alpm", mode="slumber")
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert write_events_jsonl(tracer.events, jsonl) == 3
        write_chrome_trace(tracer.events, chrome)
        payload = json.loads(chrome.read_text())
        slices = [e for e in payload["traceEvents"] if e["ph"] in "BE"]
        assert [e["name"] for e in slices] == ["alpm", "alpm"]
