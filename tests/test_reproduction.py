"""Integration tests: the paper's findings, as shape assertions.

These run the actual figure pipelines at CI scale (``QUICK``) and assert
the *relationships* the paper reports -- who wins, in which direction, by
roughly what factor.  Exact magnitudes live in EXPERIMENTS.md; these bands
are deliberately loose so the tests check mechanisms, not calibration
decimals.
"""

import pytest

from repro._units import KiB
from repro.iogen.spec import IoPattern
from repro.studies import fig10, fig4, fig7, fig9, table1
from repro.studies.common import QUICK, run_point


pytestmark = pytest.mark.integration


class TestTable1Ranges:
    """Table 1: measured power ranges straddle the paper's figures."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {row.label: row for row in table1.run(QUICK)}

    @pytest.mark.parametrize("label", ["ssd1", "ssd2", "ssd3", "hdd"])
    def test_min_power_close_to_paper(self, rows, label):
        row = rows[label]
        assert row.measured_min_w == pytest.approx(row.paper_min_w, abs=0.4)

    @pytest.mark.parametrize("label", ["ssd1", "ssd2", "ssd3", "hdd"])
    def test_max_power_close_to_paper(self, rows, label):
        row = rows[label]
        assert row.measured_max_w == pytest.approx(row.paper_max_w, rel=0.15)

    def test_nvme_ssds_have_widest_absolute_range(self, rows):
        nvme_span = rows["ssd2"].measured_max_w - rows["ssd2"].measured_min_w
        sata_span = rows["ssd3"].measured_max_w - rows["ssd3"].measured_min_w
        hdd_span = rows["hdd"].measured_max_w - rows["hdd"].measured_min_w
        assert nvme_span > sata_span
        assert nvme_span > hdd_span


class TestFig4PowerCapAsymmetry:
    """Fig. 4: caps crush writes, leave reads alone."""

    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(QUICK)

    def test_write_throughput_drops_under_ps1(self, result):
        ratio = result.mean_state_ratio(IoPattern.WRITE, 1)
        assert 0.50 <= ratio <= 0.90  # paper: 0.74

    def test_write_throughput_drops_more_under_ps2(self, result):
        r1 = result.mean_state_ratio(IoPattern.WRITE, 1)
        r2 = result.mean_state_ratio(IoPattern.WRITE, 2)
        assert r2 < r1
        assert 0.30 <= r2 <= 0.70  # paper: 0.55

    def test_read_throughput_insensitive_to_caps(self, result):
        for ps in (1, 2):
            ratio = result.mean_state_ratio(IoPattern.READ, ps)
            assert ratio == pytest.approx(1.0, abs=0.05)


class TestFig5And6Latency:
    """Figs. 5/6: capped write latency inflates; read latency does not."""

    def test_capped_write_latency_inflates_at_large_chunks(self):
        l0 = run_point(
            "ssd2", IoPattern.RANDWRITE, 1024 * KiB, 1,
            power_state=0, scale=QUICK, latency_study=True,
        ).latency()
        l2 = run_point(
            "ssd2", IoPattern.RANDWRITE, 1024 * KiB, 1,
            power_state=2, scale=QUICK, latency_study=True,
        ).latency()
        assert l2.mean / l0.mean > 1.5  # paper: up to ~2x
        assert l2.p99 / l0.p99 > 1.8  # paper: up to 6.19x

    def test_small_chunk_write_latency_unaffected(self):
        l0 = run_point(
            "ssd2", IoPattern.RANDWRITE, 4 * KiB, 1,
            power_state=0, scale=QUICK, latency_study=True,
        ).latency()
        l2 = run_point(
            "ssd2", IoPattern.RANDWRITE, 4 * KiB, 1,
            power_state=2, scale=QUICK, latency_study=True,
        ).latency()
        assert l2.mean / l0.mean == pytest.approx(1.0, abs=0.1)

    def test_read_latency_unaffected_by_caps(self):
        l0 = run_point(
            "ssd2", IoPattern.RANDREAD, 64 * KiB, 1, power_state=0, scale=QUICK
        ).latency()
        l2 = run_point(
            "ssd2", IoPattern.RANDREAD, 64 * KiB, 1, power_state=2, scale=QUICK
        ).latency()
        assert l2.mean / l0.mean == pytest.approx(1.0, abs=0.02)
        assert l2.p99 / l0.p99 == pytest.approx(1.0, abs=0.05)


class TestFig7Standby:
    """Fig. 7: the EVO's ALPM transition."""

    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run()

    def test_slumber_halves_idle_power(self, result):
        assert result.idle_power_w == pytest.approx(0.35, abs=0.02)
        assert result.slumber_power_w == pytest.approx(0.17, abs=0.02)

    def test_transitions_complete_within_half_second(self, result):
        assert result.enter_settle_s <= 0.5
        assert result.exit_settle_s <= 0.5

    def test_transition_draws_transient_power(self, result):
        # The bump above the idle level during the transition (Fig. 7's
        # visible transient).
        assert result.enter_trace.max() > result.idle_power_w + 0.2


class TestFig8And9IoShaping:
    """Figs. 8/9: chunk size and queue depth modulate power and throughput."""

    def test_small_chunks_save_power_and_cost_throughput(self):
        small = run_point("ssd2", IoPattern.RANDWRITE, 4 * KiB, 64, scale=QUICK)
        large = run_point("ssd2", IoPattern.RANDWRITE, 2048 * KiB, 64, scale=QUICK)
        power_saving = 1 - small.mean_power_w / large.mean_power_w
        throughput_loss = 1 - small.throughput_bps / large.throughput_bps
        assert 0.15 <= power_saving <= 0.45  # paper: up to 30 %
        assert 0.30 <= throughput_loss <= 0.80  # paper: up to 50 %

    def test_shallow_queue_saves_power_and_costs_throughput(self):
        result = fig9.run(QUICK)
        saving = result.power_saving_qd1("ssd2")
        fraction = result.throughput_fraction_qd1("ssd2")
        assert 0.20 <= saving <= 0.55  # paper: up to 40 %
        assert fraction <= 0.15  # paper: ~10 %

    def test_power_monotone_in_queue_depth(self):
        result = fig9.run(QUICK)
        series = result.power_w["ssd2"]
        assert series[0] == min(series)
        assert max(series) == pytest.approx(max(series[-2:]), rel=0.1)


class TestFig10Model:
    """Fig. 10: the power-throughput model's headline numbers."""

    @pytest.fixture(scope="class")
    def ssd2_model(self):
        return fig10.build_model(
            "ssd2",
            scale=QUICK,
            chunks=(4 * KiB, 256 * KiB, 2048 * KiB),
            depths=(1, 64),
        )

    @pytest.fixture(scope="class")
    def hdd_model(self):
        return fig10.build_model(
            "hdd",
            scale=QUICK,
            chunks=(4 * KiB, 2048 * KiB),
            depths=(1, 64),
        )

    def test_ssd2_dynamic_range_near_paper(self, ssd2_model):
        # Paper: 59.4 % of maximum power.
        assert 0.45 <= ssd2_model.dynamic_range_fraction <= 0.70

    def test_hdd_throughput_floor_small(self, hdd_model):
        # Paper: throughput can drop to ~4 % of maximum (1/25).
        assert hdd_model.min_normalized_throughput <= 0.10

    def test_hdd_dynamic_range_narrow(self, hdd_model, ssd2_model):
        """HDDs have a narrow operating power range (paper section 2)."""
        assert hdd_model.dynamic_range_fraction < ssd2_model.dynamic_range_fraction

    def test_worked_example_direction(self, ssd2_model):
        """A 20 % power cut costs a disproportionate throughput share."""
        __, curtailed = ssd2_model.throughput_cost_of_power_cut(0.20)
        assert curtailed >= 0.2


class TestMeterAccuracy:
    """Section 3: the measurement system's <1 % relative error claim."""

    @pytest.mark.parametrize("device", ["ssd1", "ssd2", "ssd3"])
    def test_meter_error_below_one_percent(self, device):
        result = run_point(device, IoPattern.RANDWRITE, 256 * KiB, 64, scale=QUICK)
        assert result.meter_relative_error < 0.01
