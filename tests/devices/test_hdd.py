"""Tests for the assembled HDD device model."""

import pytest

from repro._units import KiB, MiB
from repro.devices.base import IOKind, IORequest
from repro.devices.hdd_drive import HddConfig, SimulatedHDD
from repro.hdd.geometry import HddGeometry
from repro.hdd.mechanics import SeekModel
from repro.hdd.spindle import SpindleConfig
from tests.conftest import drive


def small_hdd_config(**overrides) -> HddConfig:
    defaults = dict(
        name="testhdd",
        geometry=HddGeometry(capacity_bytes=10_000_000_000),
        seek=SeekModel(),
        spindle=SpindleConfig(spinup_time_s=2.0, spindown_time_s=0.5),
        cache_bytes=1 * MiB,
        rpo_window=8,
    )
    defaults.update(overrides)
    return HddConfig(**defaults)


@pytest.fixture
def hdd(engine):
    return SimulatedHDD(engine, small_hdd_config())


def submit_and_wait(engine, device, kind, offset, nbytes):
    event = device.submit(IORequest(kind, offset, nbytes))
    while not event.processed:
        engine.step()
    return event.value


class TestHddIo:
    def test_read_includes_mechanical_latency(self, engine, hdd):
        result = submit_and_wait(engine, hdd, IOKind.READ, 5_000_000_000, 4 * KiB)
        # Seek + rotational wait dominate: well over a millisecond.
        assert result.latency > 1e-3

    def test_cached_write_acks_fast(self, engine, hdd):
        result = submit_and_wait(engine, hdd, IOKind.WRITE, 1_000_000, 4 * KiB)
        assert result.latency < 1e-3

    def test_cache_drains_to_media(self, engine, hdd):
        submit_and_wait(engine, hdd, IOKind.WRITE, 1_000_000, 4 * KiB)
        assert len(hdd.cache) == 1
        engine.run(until=engine.now + 0.1)
        assert hdd.cache.is_empty
        assert hdd.media_ops_served == 1

    def test_write_through_mode_waits_for_media(self, engine):
        device = SimulatedHDD(
            engine, small_hdd_config(write_cache_enabled=False)
        )
        result = submit_and_wait(engine, device, IOKind.WRITE, 1_000_000, 4 * KiB)
        assert result.latency > 1e-3

    def test_sequential_reads_stream_at_media_rate(self, engine, hdd):
        chunk = 1 * MiB
        t0 = engine.now
        for i in range(16):
            submit_and_wait(engine, hdd, IOKind.READ, i * chunk, chunk)
        duration = engine.now - t0
        throughput = 16 * chunk / duration
        # Within a factor of ~2 of the outer-zone streaming rate (first
        # access pays a seek; host link adds per-IO time).
        assert throughput > hdd.config.geometry.outer_bandwidth / 2

    def test_random_reads_much_slower_than_sequential(self, engine, hdd):
        import numpy as np

        rng = np.random.default_rng(0)
        chunk = 4 * KiB
        t0 = engine.now
        for _ in range(10):
            offset = int(rng.integers(0, hdd.capacity_bytes - chunk))
            offset -= offset % chunk
            submit_and_wait(engine, hdd, IOKind.READ, offset, chunk)
        random_rate = 10 * chunk / (engine.now - t0)
        assert random_rate < hdd.config.geometry.outer_bandwidth / 50

    def test_out_of_range_rejected(self, engine, hdd):
        with pytest.raises(ValueError):
            hdd.submit(IORequest(IOKind.READ, hdd.capacity_bytes, 4096))


class TestHddPower:
    def test_idle_power(self, engine, hdd):
        engine.run(until=0.2)
        assert hdd.rail.mean_power(0.05, 0.2) == pytest.approx(
            hdd.config.idle_power_w, rel=1e-6
        )

    def test_active_power_above_idle_but_narrow(self, engine, hdd):
        import numpy as np

        rng = np.random.default_rng(1)
        t0 = engine.now
        for _ in range(20):
            offset = int(rng.integers(0, hdd.capacity_bytes - 4096))
            offset -= offset % 4096
            submit_and_wait(engine, hdd, IOKind.READ, offset, 4096)
        active = hdd.rail.mean_power(t0, engine.now)
        idle = hdd.config.idle_power_w
        assert idle < active < idle + hdd.config.seek_power_w + 0.5

    def test_standby_power_drops_spindle_draw(self, engine, hdd):
        drive(engine, engine.process(hdd.enter_standby()))
        t0 = engine.now
        engine.run(until=t0 + 0.2)
        assert hdd.rail.mean_power(t0, t0 + 0.2) == pytest.approx(
            hdd.config.standby_power_w, rel=1e-6
        )


class TestHddStandby:
    def test_standby_flushes_cache_first(self, engine, hdd):
        submit_and_wait(engine, hdd, IOKind.WRITE, 1_000_000, 4 * KiB)
        drive(engine, engine.process(hdd.enter_standby()))
        assert hdd.cache.is_empty
        assert hdd.is_standby

    def test_io_triggers_spin_up(self, engine, hdd):
        drive(engine, engine.process(hdd.enter_standby()))
        result = submit_and_wait(engine, hdd, IOKind.READ, 0, 4 * KiB)
        # Spin-up (2 s in this config) dominates the latency.
        assert result.latency >= 2.0
        assert not hdd.is_standby

    def test_explicit_exit_standby(self, engine, hdd):
        drive(engine, engine.process(hdd.enter_standby()))
        drive(engine, engine.process(hdd.exit_standby()))
        assert hdd.spindle.is_ready
        # IO after spin-up is back to normal latency.
        result = submit_and_wait(engine, hdd, IOKind.READ, 0, 4 * KiB)
        assert result.latency < 0.1

    def test_io_mid_flush_cancels_standby(self, engine, hdd):
        # Queue enough writes that the flush takes a while.
        for i in range(50):
            submit_and_wait(engine, hdd, IOKind.WRITE, i * 1_000_000, 4 * KiB)
        standby_proc = engine.process(hdd.enter_standby())
        # Interleave a new IO while the flush is in progress.
        submit_and_wait(engine, hdd, IOKind.READ, 0, 4 * KiB)
        while standby_proc.is_alive:
            engine.step()
        assert hdd.spindle.is_ready  # stayed up


class TestRpoScheduling:
    def test_deep_queue_improves_throughput(self, engine):
        """The RPO mechanism: QD16 random reads finish faster per IO."""
        import numpy as np

        def run_batch(qd):
            from repro.sim.engine import Engine

            eng = Engine()
            device = SimulatedHDD(eng, small_hdd_config())
            rng = np.random.default_rng(7)
            offsets = [
                int(o) - int(o) % 4096
                for o in rng.integers(0, device.capacity_bytes - 4096, size=48)
            ]
            t0 = eng.now
            pending = []
            index = 0
            while index < len(offsets) or pending:
                while index < len(offsets) and len(pending) < qd:
                    pending.append(
                        device.submit(IORequest(IOKind.READ, offsets[index], 4096))
                    )
                    index += 1
                first = eng.any_of(pending)
                while not first.processed:
                    eng.step()
                pending = [e for e in pending if not e.triggered]
            return eng.now - t0

        assert run_batch(16) < run_batch(1) * 0.8
