"""Tests for the host link and the device preset catalog."""

import pytest

from repro.devices.catalog import (
    DEVICE_PRESETS,
    build_device,
    hdd_exos_7e2000,
    ssd_860evo,
    ssd_d7p5510,
)
from repro.devices.hdd_drive import SimulatedHDD
from repro.devices.link import HostLink, LinkPowerMode, LinkPowerTable
from repro.devices.ssd import SimulatedSSD
from repro.power.rail import PowerRail
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import drive


class TestHostLink:
    def _link(self, engine, bandwidth=1e9):
        rail = PowerRail(engine)
        return rail, HostLink(
            engine, rail, bandwidth=bandwidth, transfer_power_w=0.5, name="l"
        )

    def test_transfer_takes_bandwidth_time(self, engine):
        __, link = self._link(engine)

        def xfer(eng):
            yield from link.transfer(1_000_000)

        drive(engine, engine.process(xfer(engine)))
        assert engine.now == pytest.approx(1e-3)
        assert link.bytes_transferred == 1_000_000

    def test_transfer_draws_power(self, engine):
        rail, link = self._link(engine)
        seen = []

        def watcher(eng):
            yield eng.timeout(0.5e-3)
            seen.append(rail.draw_of("l.xfer"))

        def xfer(eng):
            yield from link.transfer(1_000_000)

        engine.process(watcher(engine))
        drive(engine, engine.process(xfer(engine)))
        assert seen == [pytest.approx(0.5)]
        assert rail.draw_of("l.xfer") == 0.0

    def test_transfers_serialize_on_bus(self, engine):
        __, link = self._link(engine)

        def xfer(eng):
            yield from link.transfer(1_000_000)

        engine.process(xfer(engine))
        engine.process(xfer(engine))
        engine.run()
        assert engine.now == pytest.approx(2e-3)

    def test_low_power_mode_cuts_phy_draw(self, engine):
        rail, link = self._link(engine)
        active = rail.draw_of("l.phy")
        link.set_mode(LinkPowerMode.SLUMBER)
        assert rail.draw_of("l.phy") < active / 5

    def test_transfer_wakes_link_with_exit_latency(self, engine):
        __, link = self._link(engine)
        link.set_mode(LinkPowerMode.SLUMBER)
        exit_latency = link.power_table.exit_latency_s[LinkPowerMode.SLUMBER]

        def xfer(eng):
            yield from link.transfer(1_000_000)

        drive(engine, engine.process(xfer(engine)))
        assert engine.now == pytest.approx(exit_latency + 1e-3)
        assert link.mode is LinkPowerMode.ACTIVE

    def test_invalid_bandwidth(self, engine):
        rail = PowerRail(engine)
        with pytest.raises(ValueError):
            HostLink(engine, rail, bandwidth=0.0, transfer_power_w=0.1)


class TestCatalog:
    def test_all_presets_build(self):
        for label in DEVICE_PRESETS:
            engine = Engine()
            device = build_device(engine, label, rng=RngStreams(0))
            assert device.name == label

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            build_device(Engine(), "floppy")

    def test_explicit_config_accepted(self):
        engine = Engine()
        device = build_device(engine, ssd_d7p5510(), rng=RngStreams(0))
        assert isinstance(device, SimulatedSSD)

    def test_hdd_preset_builds_hdd(self):
        device = build_device(Engine(), hdd_exos_7e2000())
        assert isinstance(device, SimulatedHDD)

    def test_ssd2_idle_power_is_five_watts(self):
        assert ssd_d7p5510().idle_power_w == pytest.approx(5.0, abs=0.05)

    def test_evo_idle_power(self):
        assert ssd_860evo().idle_power_w == pytest.approx(0.35, abs=0.01)

    def test_hdd_idle_and_standby_power(self):
        config = hdd_exos_7e2000()
        assert config.idle_power_w == pytest.approx(3.76, abs=0.02)
        assert config.standby_power_w == pytest.approx(1.1, abs=0.02)

    def test_sata_presets_have_no_power_states(self):
        from repro.devices.catalog import ssd_d3s4510

        assert ssd_d3s4510().power_states == ()
        assert ssd_860evo().power_states == ()

    def test_nvme_presets_have_ascending_caps(self):
        for label in ("ssd1", "ssd2", "pm1743"):
            config = DEVICE_PRESETS[label]()
            operational = [ps for ps in config.power_states if ps.operational]
            caps = [ps.max_power_w for ps in operational]
            assert caps == sorted(caps, reverse=True)

    def test_devices_isolated_across_engines(self):
        """Two devices from the same preset do not share state."""
        engine_a, engine_b = Engine(), Engine()
        a = build_device(engine_a, "ssd2", rng=RngStreams(0))
        b = build_device(engine_b, "ssd2", rng=RngStreams(0))
        a.rail.set_draw("test", 1.0)
        assert b.rail.draw_of("test") == 0.0
