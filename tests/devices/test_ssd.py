"""Tests for the assembled SSD device model."""

import pytest

from repro._units import KiB
from repro.devices.base import IOKind, IORequest
from repro.devices.ssd import SimulatedSSD
from repro.sim.rng import RngStreams
from tests.conftest import drive, tiny_ssd_config


def submit_and_wait(engine, device, kind, offset, nbytes):
    event = device.submit(IORequest(kind, offset, nbytes))
    while not event.processed:
        engine.step()
    return event.value


class TestBasicIo:
    def test_read_completes_with_latency(self, engine, tiny_ssd):
        result = submit_and_wait(engine, tiny_ssd, IOKind.READ, 0, 16 * KiB)
        assert result.latency > 0
        assert tiny_ssd.ios_completed == 1
        assert tiny_ssd.bytes_read == 16 * KiB

    def test_write_completes(self, engine, tiny_ssd):
        result = submit_and_wait(engine, tiny_ssd, IOKind.WRITE, 0, 64 * KiB)
        assert result.latency > 0
        assert tiny_ssd.bytes_written == 64 * KiB

    def test_out_of_range_io_rejected(self, engine, tiny_ssd):
        with pytest.raises(ValueError):
            tiny_ssd.submit(
                IORequest(IOKind.READ, tiny_ssd.capacity_bytes, 4096)
            )

    def test_write_ack_faster_than_read(self, engine, tiny_ssd):
        """Write-back buffering: the ack beats a media read."""
        write = submit_and_wait(engine, tiny_ssd, IOKind.WRITE, 0, 16 * KiB)
        read = submit_and_wait(engine, tiny_ssd, IOKind.READ, 0, 16 * KiB)
        assert write.latency < read.latency

    def test_large_read_fans_out_over_dies(self, engine, rngs):
        """A multi-page read finishes far faster than pages x t_read."""
        device = SimulatedSSD(engine, tiny_ssd_config(), rng=rngs)
        pages = 8
        nbytes = pages * device.config.geometry.page_size
        result = submit_and_wait(engine, device, IOKind.READ, 0, nbytes)
        assert result.latency < pages * device.config.timings.t_read

    def test_sub_page_write_coalesced(self, engine, tiny_ssd):
        """Eight 4 KiB writes program at most a few 16 KiB pages."""
        from repro.nand.ops import OpKind

        for i in range(8):
            submit_and_wait(engine, tiny_ssd, IOKind.WRITE, i * 4096, 4096)
        engine.run(until=engine.now + 0.01)
        programs = tiny_ssd.array.op_counts()[OpKind.PROGRAM]
        assert programs <= 3  # 32 KiB of data in 16 KiB pages, not 8 pages

    def test_write_amplification_near_one_without_gc(self, engine, tiny_ssd):
        for i in range(16):
            submit_and_wait(
                engine, tiny_ssd, IOKind.WRITE, i * 16 * KiB, 16 * KiB
            )
        engine.run(until=engine.now + 0.01)
        assert tiny_ssd.wear.write_amplification == pytest.approx(1.0, abs=0.1)


class TestMappingThroughDevice:
    def test_aligned_write_binds_lpns(self, engine, tiny_ssd):
        page = tiny_ssd.config.geometry.page_size
        submit_and_wait(engine, tiny_ssd, IOKind.WRITE, 0, 4 * page)
        engine.run(until=engine.now + 0.01)
        for lpn in range(4):
            assert tiny_ssd.page_map.lookup(lpn) is not None

    def test_overwrite_invalidates_old_page(self, engine, tiny_ssd):
        page = tiny_ssd.config.geometry.page_size
        submit_and_wait(engine, tiny_ssd, IOKind.WRITE, 0, page)
        engine.run(until=engine.now + 0.01)
        first = tiny_ssd.page_map.lookup(0)
        submit_and_wait(engine, tiny_ssd, IOKind.WRITE, 0, page)
        engine.run(until=engine.now + 0.01)
        second = tiny_ssd.page_map.lookup(0)
        assert first != second
        assert tiny_ssd.allocator.block_of_ppn(first).valid_count < (
            tiny_ssd.config.geometry.pages_per_block
        )


class TestPowerBehaviour:
    def test_idle_power_matches_config(self, engine, tiny_ssd):
        engine.run(until=0.1)
        assert tiny_ssd.rail.mean_power(0.0, 0.1) == pytest.approx(
            tiny_ssd.config.idle_power_w, rel=1e-6
        )

    def test_writes_raise_power_above_idle(self, engine, tiny_ssd):
        t0 = engine.now
        for i in range(8):
            submit_and_wait(engine, tiny_ssd, IOKind.WRITE, i * 64 * KiB, 64 * KiB)
        busy_power = tiny_ssd.rail.mean_power(t0, engine.now)
        assert busy_power > tiny_ssd.config.idle_power_w

    def test_reads_cost_less_power_than_writes(self, engine, rngs):
        def mean_power(kind):
            local_engine_cfg = tiny_ssd_config()
            from repro.sim.engine import Engine

            eng = Engine()
            dev = SimulatedSSD(eng, local_engine_cfg, rng=RngStreams(0))
            t0 = eng.now
            events = [
                dev.submit(IORequest(kind, i * 64 * KiB, 64 * KiB))
                for i in range(16)
            ]
            done = eng.all_of(events)
            while not done.processed:
                eng.step()
            return dev.rail.mean_power(t0, eng.now)

        assert mean_power(IOKind.READ) < mean_power(IOKind.WRITE)


class TestPowerStates:
    def test_set_power_state_changes_cap(self, engine, tiny_ssd):
        drive(engine, engine.process(tiny_ssd.set_power_state(1)))
        assert tiny_ssd.governor.cap_w == pytest.approx(3.5)
        assert tiny_ssd.current_power_state.index == 1

    def test_unknown_state_rejected(self, engine, tiny_ssd):
        with pytest.raises(ValueError):
            drive(engine, engine.process(tiny_ssd.set_power_state(9)))

    def test_cap_respected_under_write_load(self, engine, tiny_ssd):
        drive(engine, engine.process(tiny_ssd.set_power_state(2)))
        t0 = engine.now
        events = [
            tiny_ssd.submit(IORequest(IOKind.WRITE, i * 64 * KiB, 64 * KiB))
            for i in range(32)
        ]
        done = engine.all_of(events)
        while not done.processed:
            engine.step()
        mean = tiny_ssd.rail.mean_power(t0, engine.now)
        assert mean <= 2.8 + 0.15  # cap + small tolerance

    def test_capped_writes_slower(self, engine, rngs):
        from repro.sim.engine import Engine

        def write_duration(ps):
            eng = Engine()
            dev = SimulatedSSD(eng, tiny_ssd_config(), rng=RngStreams(1))
            proc = eng.process(dev.set_power_state(ps))
            while proc.is_alive:
                eng.step()
            t0 = eng.now
            events = [
                dev.submit(IORequest(IOKind.WRITE, i * 64 * KiB, 64 * KiB))
                for i in range(32)
            ]
            done = eng.all_of(events)
            while not done.processed:
                eng.step()
            return eng.now - t0

        assert write_duration(2) > write_duration(0) * 1.3

    def test_reads_unaffected_by_cap(self, engine, rngs):
        from repro.sim.engine import Engine

        def read_duration(ps):
            eng = Engine()
            dev = SimulatedSSD(eng, tiny_ssd_config(), rng=RngStreams(1))
            proc = eng.process(dev.set_power_state(ps))
            while proc.is_alive:
                eng.step()
            t0 = eng.now
            events = [
                dev.submit(IORequest(IOKind.READ, i * 64 * KiB, 64 * KiB))
                for i in range(32)
            ]
            done = eng.all_of(events)
            while not done.processed:
                eng.step()
            return eng.now - t0

        assert read_duration(2) == pytest.approx(read_duration(0), rel=0.05)


class TestNonOperationalStates:
    def test_standby_drops_idle_power(self, engine, tiny_ssd):
        drive(engine, engine.process(tiny_ssd.enter_standby()))
        t0 = engine.now
        engine.run(until=t0 + 0.1)
        standby_power = tiny_ssd.rail.mean_power(t0, t0 + 0.1)
        assert standby_power < tiny_ssd.config.idle_power_w / 2

    def test_io_wakes_standby_device(self, engine, tiny_ssd):
        drive(engine, engine.process(tiny_ssd.enter_standby()))
        result = submit_and_wait(engine, tiny_ssd, IOKind.READ, 0, 16 * KiB)
        # Wake costs at least the exit latency.
        assert result.latency >= tiny_ssd.config.power_states[3].exit_latency_s
        assert tiny_ssd.current_power_state.operational

    def test_exit_standby_restores_idle_draws(self, engine, tiny_ssd):
        drive(engine, engine.process(tiny_ssd.enter_standby()))
        drive(engine, engine.process(tiny_ssd.exit_standby()))
        t0 = engine.now
        engine.run(until=t0 + 0.05)
        assert tiny_ssd.rail.mean_power(t0, t0 + 0.05) == pytest.approx(
            tiny_ssd.config.idle_power_w, rel=1e-6
        )

    def test_concurrent_ios_during_wake_share_one_exit(self, engine, tiny_ssd):
        drive(engine, engine.process(tiny_ssd.enter_standby()))
        t0 = engine.now
        events = [
            tiny_ssd.submit(IORequest(IOKind.READ, i * 16 * KiB, 16 * KiB))
            for i in range(4)
        ]
        done = engine.all_of(events)
        while not done.processed:
            engine.step()
        # All four complete well within two exit latencies.
        assert engine.now - t0 < 2 * tiny_ssd.config.power_states[3].exit_latency_s


class TestBufferBackpressure:
    def test_buffer_fills_under_capped_flush(self, engine, rngs):
        config = tiny_ssd_config(write_buffer_bytes=64 * 1024)
        device = SimulatedSSD(engine, config, rng=rngs)
        drive(engine, engine.process(device.set_power_state(2)))
        events = [
            device.submit(IORequest(IOKind.WRITE, i * 64 * KiB, 64 * KiB))
            for i in range(16)
        ]
        # While writes are in flight the buffer hits its cap.
        peak = 0
        done = engine.all_of(events)
        while not done.processed:
            engine.step()
            peak = max(peak, device.buffer_used_bytes)
        assert peak == 64 * 1024
