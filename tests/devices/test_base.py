"""Tests for the device base types."""

import pytest

from repro.devices.base import IOKind, IORequest, IOResult


class TestIORequest:
    def test_end_offset(self):
        request = IORequest(IOKind.READ, 4096, 8192)
        assert request.end == 12288

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            IORequest(IOKind.READ, -1, 4096)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            IORequest(IOKind.WRITE, 0, 0)

    def test_frozen(self):
        request = IORequest(IOKind.READ, 0, 4096)
        with pytest.raises(AttributeError):
            request.offset = 1


class TestIOResult:
    def test_latency(self):
        request = IORequest(IOKind.READ, 0, 4096)
        result = IOResult(request, submit_time=1.0, complete_time=1.5)
        assert result.latency == pytest.approx(0.5)
