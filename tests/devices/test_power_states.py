"""Tests for the NVMe power state table and the power governor."""

import pytest

from repro.devices.power_states import NvmePowerState, PowerGovernor
from repro.sim.engine import Engine


class TestNvmePowerState:
    def test_valid_state(self):
        ps = NvmePowerState(0, 25.0, True, 0.0, 0.0, 5.0)
        assert ps.max_power_w == 25.0

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            NvmePowerState(-1, 25.0, True, 0.0, 0.0, 5.0)
        with pytest.raises(ValueError):
            NvmePowerState(0, 0.0, True, 0.0, 0.0, 5.0)
        with pytest.raises(ValueError):
            NvmePowerState(0, 25.0, True, -1.0, 0.0, 5.0)


class TestGovernorStatic:
    def test_uncapped_grants_everything(self, engine):
        gov = PowerGovernor(engine, baseline_w=5.0, cap_w=None)
        for _ in range(100):
            assert gov.request(0.3).triggered
        assert gov.granted_ops == 100

    def test_cap_limits_concurrent_grants(self, engine):
        gov = PowerGovernor(engine, baseline_w=5.0, cap_w=8.0)
        # Budget 3 W at 1 W/op: 3 concurrent grants.
        events = [gov.request(1.0) for _ in range(5)]
        granted = sum(1 for e in events if e.triggered)
        assert granted == 3
        assert gov.queued == 2

    def test_release_grants_next_in_fifo_order(self, engine):
        gov = PowerGovernor(engine, baseline_w=5.0, cap_w=7.0)
        first = gov.request(2.0)
        second = gov.request(2.0)
        third = gov.request(2.0)
        assert first.triggered and not second.triggered
        gov.release(2.0)
        assert second.triggered and not third.triggered

    def test_never_deadlocks_on_oversized_op(self, engine):
        """An op bigger than the whole budget still runs (one at a time)."""
        gov = PowerGovernor(engine, baseline_w=5.0, cap_w=6.0)
        big = gov.request(10.0)
        assert big.triggered
        queued = gov.request(10.0)
        assert not queued.triggered
        gov.release(10.0)
        assert queued.triggered

    def test_release_without_grant_rejected(self, engine):
        gov = PowerGovernor(engine, baseline_w=5.0, cap_w=8.0)
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError):
            gov.release(1.0)

    def test_negative_request_rejected(self, engine):
        gov = PowerGovernor(engine, baseline_w=5.0)
        with pytest.raises(ValueError):
            gov.request(-0.1)

    def test_set_cap_tighter_stops_new_grants(self, engine):
        gov = PowerGovernor(engine, baseline_w=0.0, cap_w=3.0)
        for _ in range(3):
            gov.request(1.0)
        gov.set_cap(1.0)
        assert not gov.request(1.0).triggered
        assert gov.committed_w == pytest.approx(3.0)

    def test_set_cap_looser_drains_queue(self, engine):
        gov = PowerGovernor(engine, baseline_w=0.0, cap_w=1.0)
        gov.request(1.0)
        waiting = gov.request(1.0)
        assert not waiting.triggered
        gov.set_cap(5.0)
        assert waiting.triggered

    def test_uncap_via_none(self, engine):
        gov = PowerGovernor(engine, baseline_w=0.0, cap_w=1.0)
        gov.request(1.0)
        waiting = [gov.request(1.0) for _ in range(5)]
        gov.set_cap(None)
        assert all(e.triggered for e in waiting)

    def test_stall_statistics(self, engine):
        gov = PowerGovernor(engine, baseline_w=0.0, cap_w=1.0)
        gov.request(1.0)
        gov.request(1.0)
        assert gov.total_grants == 1
        assert gov.total_stalls == 1


class TestGovernorFeedback:
    def test_budget_tracks_live_other_power(self, engine):
        other = {"watts": 2.0}
        gov = PowerGovernor(
            engine,
            baseline_w=0.0,
            cap_w=10.0,
            other_power_fn=lambda: other["watts"],
        )
        assert gov.budget_w == pytest.approx(8.0)
        other["watts"] = 6.0
        assert gov.budget_w == pytest.approx(4.0)

    def test_feedback_admission(self, engine):
        other = {"watts": 8.0}
        gov = PowerGovernor(
            engine,
            baseline_w=0.0,
            cap_w=10.0,
            other_power_fn=lambda: other["watts"],
        )
        first = gov.request(1.5)
        assert first.triggered  # 8 + 1.5 <= 10 fails? budget=2, 1.5 fits
        second = gov.request(1.5)
        assert not second.triggered
        # Non-NAND power drops; a release re-examines the queue.
        other["watts"] = 2.0
        gov.release(1.5)
        assert second.triggered

    def test_headroom_reserves_margin(self, engine):
        gov = PowerGovernor(engine, baseline_w=5.0, cap_w=8.0, headroom_w=1.0)
        # Budget = 8 - 5 - 1 = 2 at 1 W/op.
        events = [gov.request(1.0) for _ in range(3)]
        assert sum(1 for e in events if e.triggered) == 2

    def test_invalid_parameters(self, engine):
        with pytest.raises(ValueError):
            PowerGovernor(engine, baseline_w=-1.0)
        with pytest.raises(ValueError):
            PowerGovernor(engine, baseline_w=1.0, headroom_w=-0.5)
        gov = PowerGovernor(engine, baseline_w=1.0)
        with pytest.raises(ValueError):
            gov.set_cap(0.0)
