"""Property-based tests for the power governor.

Random request/release interleavings must preserve the governor's
invariants regardless of order, cap changes, or op sizes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.power_states import PowerGovernor
from repro.sim.engine import Engine


@st.composite
def governor_scripts(draw):
    """A random script of (request w | release | set_cap w) operations."""
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("request"),
                    st.floats(min_value=0.01, max_value=2.0),
                ),
                st.tuples(st.just("release"), st.just(0.0)),
                st.tuples(
                    st.just("set_cap"),
                    st.floats(min_value=1.0, max_value=30.0),
                ),
            ),
            min_size=1,
            max_size=60,
        )
    )
    baseline = draw(st.floats(min_value=0.0, max_value=10.0))
    cap = draw(st.one_of(st.none(), st.floats(min_value=1.0, max_value=30.0)))
    return ops, baseline, cap


class TestGovernorProperties:
    @given(governor_scripts())
    @settings(max_examples=120, deadline=None)
    def test_invariants_under_random_interleavings(self, script):
        ops, baseline, cap = script
        engine = Engine()
        governor = PowerGovernor(engine, baseline_w=baseline, cap_w=cap)
        held: list[float] = []  # watts of ops currently granted
        waiting: list[tuple[object, float]] = []

        for op, value in ops:
            if op == "request":
                committed_before = governor.committed_w
                grants_before = governor.granted_ops
                budget_before = governor.budget_w
                event = governor.request(value)
                if event.triggered:
                    # Invariant 2 (admission-time): a grant either fit the
                    # budget or was the deadlock-avoidance sole grant.
                    # (Cap *shrinks* never preempt, so committed power may
                    # legitimately sit above a newly lowered budget.)
                    assert (
                        grants_before == 0
                        or committed_before + value <= budget_before + 1e-9
                    )
                    held.append(value)
                else:
                    waiting.append((event, value))
            elif op == "release" and held:
                watts = held.pop()
                governor.release(watts)
                # A release may have granted waiters; collect them.
                still_waiting = []
                for event, w in waiting:
                    if event.triggered:
                        held.append(w)
                    else:
                        still_waiting.append((event, w))
                waiting = still_waiting
            elif op == "set_cap":
                governor.set_cap(value)
                still_waiting = []
                for event, w in waiting:
                    if event.triggered:
                        held.append(w)
                    else:
                        still_waiting.append((event, w))
                waiting = still_waiting

            # Invariant 1: bookkeeping matches our model of it.
            assert governor.granted_ops == len(held)
            assert abs(governor.committed_w - sum(held)) < 1e-6
            # Invariant 3: the queue is never stranded with zero grants --
            # the deadlock-avoidance rule always admits at least one op.
            assert not (waiting and governor.granted_ops == 0), (
                "queue stranded with zero grants"
            )

        # Drain: releasing everything must leave the governor empty.
        while held or waiting:
            if not held:
                # All remaining are waiting with zero grants: impossible
                # per invariant 3, but guard against infinite loops.
                raise AssertionError("stranded waiters")
            governor.release(held.pop())
            still_waiting = []
            for event, w in waiting:
                if event.triggered:
                    held.append(w)
                else:
                    still_waiting.append((event, w))
            waiting = still_waiting
        assert governor.granted_ops == 0
        assert governor.committed_w == 0.0

    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=30),
        st.floats(min_value=1.0, max_value=5.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_fifo_grant_order(self, op_watts, cap):
        """Grants always fire in request order, whatever the op sizes."""
        engine = Engine()
        governor = PowerGovernor(engine, baseline_w=0.0, cap_w=cap)
        order: list[int] = []
        events = []
        for index, watts in enumerate(op_watts):
            event = governor.request(watts)
            event.add_callback(lambda e, i=index: order.append(i))
            events.append((event, watts))
        engine.run()
        # Release everything in grant order; record the sequence.
        remaining = list(events)
        while any(not e.triggered for e, __ in remaining):
            for event, watts in list(remaining):
                if event.triggered:
                    governor.release(watts)
                    remaining.remove((event, watts))
                    break
            engine.run()
        assert order == sorted(order)
