"""Stateful property-based testing of the SSD device model.

Hypothesis drives random interleavings of reads, writes, power-state
changes and standby cycles against the tiny SSD, checking the invariants
that must survive *any* such sequence:

- every submitted IO completes, with positive latency;
- the FTL forward/reverse maps stay exact inverses and every mapped
  physical page lives in a block that accounts it as valid;
- rail power is never negative and returns exactly to the configured idle
  level once the device quiesces in an operational state;
- the governor never leaks grants (committed power returns to zero).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro._units import KiB
from repro.devices.base import IOKind, IORequest
from repro.devices.ssd import SimulatedSSD
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import tiny_ssd_config

PAGE = 16 * KiB


class SsdMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.engine = Engine()
        self.device = SimulatedSSD(
            self.engine, tiny_ssd_config(), rng=RngStreams(7)
        )
        self.pending = []
        self.completed = 0
        self.submitted = 0

    # -- actions ------------------------------------------------------------

    @rule(
        page=st.integers(min_value=0, max_value=20),
        pages=st.integers(min_value=1, max_value=4),
    )
    def write(self, page: int, pages: int) -> None:
        request = IORequest(IOKind.WRITE, page * PAGE, pages * PAGE)
        if request.end > self.device.capacity_bytes:
            return
        self.pending.append(self.device.submit(request))
        self.submitted += 1

    @rule(
        page=st.integers(min_value=0, max_value=20),
        pages=st.integers(min_value=1, max_value=4),
    )
    def read(self, page: int, pages: int) -> None:
        request = IORequest(IOKind.READ, page * PAGE, pages * PAGE)
        if request.end > self.device.capacity_bytes:
            return
        self.pending.append(self.device.submit(request))
        self.submitted += 1

    @rule(state=st.sampled_from([0, 1, 2]))
    def change_power_state(self, state: int) -> None:
        proc = self.engine.process(self.device.set_power_state(state))
        while proc.is_alive:
            self.engine.step()

    @rule()
    def standby_cycle(self) -> None:
        proc = self.engine.process(self.device.enter_standby())
        while proc.is_alive:
            self.engine.step()
        proc = self.engine.process(self.device.exit_standby())
        while proc.is_alive:
            self.engine.step()

    @rule()
    def drain(self) -> None:
        """Wait for all in-flight IO to finish."""
        if not self.pending:
            return
        done = self.engine.all_of(self.pending)
        while not done.processed:
            self.engine.step()
        for event in self.pending:
            assert event.ok
            assert event.value.latency > 0
            self.completed += 1
        self.pending = []

    # -- invariants -------------------------------------------------------------

    @invariant()
    def power_never_negative(self) -> None:
        assert self.device.rail.total_watts >= 0.0

    @invariant()
    def map_is_bidirectionally_consistent(self) -> None:
        page_map = self.device.page_map
        for lpn in page_map.mapped_lpns():
            ppn = page_map.lookup(lpn)
            assert page_map.lpn_of(ppn) == lpn
            block = self.device.allocator.block_of_ppn(ppn)
            page_offset = ppn % self.device.config.geometry.pages_per_block
            assert page_offset in block.valid

    @invariant()
    def governor_not_overcommitted_when_quiet(self) -> None:
        if not self.pending:
            # There may still be background flush in flight right after a
            # drain (buffer residue), but committed power is bounded.
            assert self.device.governor.committed_w >= 0

    def teardown(self) -> None:
        # Finish everything, then check the device returns to clean idle.
        if self.pending:
            done = self.engine.all_of(self.pending)
            while not done.processed:
                self.engine.step()
        # Ensure we are in an operational state and let the flush settle.
        proc = self.engine.process(self.device.set_power_state(0))
        while proc.is_alive:
            self.engine.step()
        self.engine.run(until=self.engine.now + 0.1)
        assert self.device.governor.committed_w == 0.0
        assert self.device.governor.granted_ops == 0
        assert self.device.rail.total_watts > 0  # idle draw present
        assert (
            abs(self.device.rail.total_watts - self.device.config.idle_power_w)
            < 1e-6
        )


SsdMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestSsdStateful = SsdMachine.TestCase
