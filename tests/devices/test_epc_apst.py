"""Tests for ATA EPC idle conditions and NVMe APST."""

import dataclasses

import pytest

from repro._units import KiB
from repro.devices.base import IOKind, IORequest
from repro.devices.catalog import hdd_exos_7e2000
from repro.devices.hdd_drive import IdleCondition, SimulatedHDD
from repro.devices.ssd import SimulatedSSD
from repro.sata.epc import set_power_condition, standby_z
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import drive, tiny_ssd_config


@pytest.fixture
def hdd(engine):
    return SimulatedHDD(engine, hdd_exos_7e2000())


def submit_and_wait(engine, device, kind, offset, nbytes):
    event = device.submit(IORequest(kind, offset, nbytes))
    while not event.processed:
        engine.step()
    return event.value


class TestEpcIdleConditions:
    def test_idle_b_saves_power(self, engine, hdd):
        engine.run(until=0.1)
        idle_a = hdd.rail.mean_power(0.05, 0.1)
        hdd.set_idle_condition(IdleCondition.IDLE_B)
        engine.run(until=0.2)
        idle_b = hdd.rail.mean_power(0.12, 0.2)
        assert idle_b == pytest.approx(
            idle_a - hdd.config.idle_b_savings_w, abs=0.01
        )

    def test_idle_c_saves_more(self, engine, hdd):
        hdd.set_idle_condition(IdleCondition.IDLE_C)
        engine.run(until=0.1)
        idle_c = hdd.rail.mean_power(0.02, 0.1)
        assert idle_c == pytest.approx(
            hdd.config.idle_power_w - hdd.config.idle_c_savings_w, abs=0.01
        )

    def test_power_ladder_ordering(self, engine, hdd):
        """idle_a > idle_b > idle_c > standby: the EPC rungs."""
        levels = {}
        engine.run(until=0.1)
        levels["a"] = hdd.rail.mean_power(0.05, 0.1)
        hdd.set_idle_condition(IdleCondition.IDLE_B)
        engine.run(until=0.2)
        levels["b"] = hdd.rail.mean_power(0.15, 0.2)
        hdd.set_idle_condition(IdleCondition.IDLE_C)
        engine.run(until=0.3)
        levels["c"] = hdd.rail.mean_power(0.25, 0.3)
        drive(engine, engine.process(standby_z(hdd)))
        t0 = engine.now
        engine.run(until=t0 + 0.1)
        levels["z"] = hdd.rail.mean_power(t0 + 0.05, t0 + 0.1)
        assert levels["a"] > levels["b"] > levels["c"] > levels["z"]

    def test_access_pays_recovery_and_restores(self, engine, hdd):
        hdd.set_idle_condition(IdleCondition.IDLE_B)
        result = submit_and_wait(engine, hdd, IOKind.READ, 1 << 30, 4 * KiB)
        assert result.latency >= hdd.config.idle_b_recovery_s
        assert hdd.idle_condition is IdleCondition.IDLE_A

    def test_idle_c_recovery_longer_than_b(self, engine):
        def first_read_latency(condition):
            local = Engine()
            device = SimulatedHDD(local, hdd_exos_7e2000())
            device.set_idle_condition(condition)
            event = device.submit(IORequest(IOKind.READ, 1 << 30, 4 * KiB))
            while not event.processed:
                local.step()
            return event.value.latency

        assert first_read_latency(IdleCondition.IDLE_C) > first_read_latency(
            IdleCondition.IDLE_B
        )

    def test_recovery_much_cheaper_than_spinup(self, engine, hdd):
        assert hdd.config.idle_b_recovery_s < hdd.config.spindle.spinup_time_s / 10

    def test_epc_command_interface(self, engine, hdd):
        set_power_condition(hdd, "idle_b")
        assert hdd.idle_condition is IdleCondition.IDLE_B
        with pytest.raises(ValueError):
            set_power_condition(hdd, "idle_z")

    def test_derating_survives_spin_cycle(self, engine, hdd):
        hdd.set_idle_condition(IdleCondition.IDLE_B)
        drive(engine, engine.process(hdd.enter_standby()))
        drive(engine, engine.process(hdd.exit_standby()))
        t0 = engine.now
        engine.run(until=t0 + 0.1)
        assert hdd.rail.mean_power(t0 + 0.05, t0 + 0.1) == pytest.approx(
            hdd.config.idle_power_w - hdd.config.idle_b_savings_w, abs=0.01
        )

    def test_invalid_epc_config(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                hdd_exos_7e2000(), idle_b_savings_w=2.0, idle_c_savings_w=1.0
            )


class TestApst:
    def _apst_ssd(self, engine, timeout=0.02):
        config = tiny_ssd_config(apst_idle_timeout_s=timeout)
        return SimulatedSSD(engine, config, rng=RngStreams(0))

    def test_idle_device_enters_standby(self, engine):
        device = self._apst_ssd(engine)
        engine.run(until=0.1)
        assert not device.current_power_state.operational
        # Power is at the non-operational level.
        assert device.rail.total_watts < device.config.idle_power_w / 2

    def test_io_wakes_and_timer_rearms(self, engine):
        device = self._apst_ssd(engine)
        engine.run(until=0.1)  # now in standby
        result = submit_and_wait(engine, device, IOKind.READ, 0, 16 * KiB)
        assert result.latency >= device.config.power_states[3].exit_latency_s
        assert device.current_power_state.operational
        engine.run(until=engine.now + 0.1)  # idles out again
        assert not device.current_power_state.operational

    def test_busy_device_stays_operational(self, engine):
        device = self._apst_ssd(engine, timeout=0.005)

        def keep_busy(eng):
            for i in range(100):
                yield device.submit(IORequest(IOKind.READ, i * 16 * KiB, 16 * KiB))
                yield eng.timeout(0.5e-3)

        proc = engine.process(keep_busy(engine))
        while proc.is_alive:
            engine.step()
        assert device.current_power_state.operational

    def test_apst_requires_non_operational_state(self):
        with pytest.raises(ValueError):
            tiny_ssd_config(
                apst_idle_timeout_s=0.01,
                power_states=tiny_ssd_config().power_states[:3],  # op only
            )

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            tiny_ssd_config(apst_idle_timeout_s=0.0)
