"""The diurnal, tenant-skewed front-end stream."""

import pytest

from repro.fleet.workload import FrontEnd
from repro.studies.common import QUICK


def front(**kwargs):
    defaults = dict(n_devices=4, tenants=16, skew=1.1, seed=0)
    defaults.update(kwargs)
    return FrontEnd(**defaults)


class TestValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            front(n_devices=0)
        with pytest.raises(ValueError):
            front(tenants=0)
        with pytest.raises(ValueError):
            front(skew=-0.1)


class TestTenants:
    def test_weights_normalize_and_decay(self):
        weights = front().tenant_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert list(weights) == sorted(weights, reverse=True)
        assert weights[0] > weights[-1]

    def test_zero_skew_is_uniform(self):
        weights = front(skew=0.0).tenant_weights()
        assert all(w == pytest.approx(1.0 / 16) for w in weights)

    def test_placement_is_deterministic_and_in_range(self):
        a, b = front().placement(), front().placement()
        assert a == b
        assert all(0 <= slot < 4 for slot in a)

    def test_placement_varies_with_seed(self):
        assert front(seed=0).placement() != front(seed=12345).placement()


class TestDiurnal:
    def test_intensity_bounds_and_shape(self):
        f = front()
        values = [f.intensity(e, 8) for e in range(8)]
        assert all(0.0 < v <= 1.0 for v in values)
        # Peak at the edges of the day, trough in the middle.
        assert min(values[0], values[-1]) > max(values[3], values[4])

    def test_intensity_rejects_out_of_range_epoch(self):
        with pytest.raises(ValueError):
            front().intensity(8, 8)

    def test_demands_scale_with_intensity(self):
        f = front()
        peak = sum(f.demands(0, 8))
        trough = sum(f.demands(4, 8))
        assert trough < peak
        # Demand sums to intensity * n_devices by construction.
        assert peak == pytest.approx(f.intensity(0, 8) * 4)


class TestJobs:
    def test_job_is_deterministic(self):
        f = front()
        a = f.job_for(1, 0, 4, QUICK, "ssd2")
        b = f.job_for(1, 0, 4, QUICK, "ssd2")
        assert a == b

    def test_iodepth_tracks_demand(self):
        f = front(tenants=64, skew=1.4)
        demands = f.demands(0, 4)
        hot = max(range(4), key=lambda s: demands[s])
        cold = min(range(4), key=lambda s: demands[s])
        hot_job = f.job_for(hot, 0, 4, QUICK, "ssd2")
        cold_job = f.job_for(cold, 0, 4, QUICK, "ssd2")
        assert hot_job.iodepth >= cold_job.iodepth
        assert 1 <= cold_job.iodepth <= 16
        assert 1 <= hot_job.iodepth <= 16
