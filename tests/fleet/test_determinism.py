"""Determinism and zero-cost guarantees of the fleet subsystem.

Mirrors ``tests/policy/test_determinism.py`` for the fleet layer:

1. A fleet run's digest is byte-identical across interpreter processes
   with different ``PYTHONHASHSEED`` values -- placement, per-run seeds
   and the governor arithmetic all derive from keyed ``blake2b``, never
   the builtin ``hash()``.
2. ``repro.core`` never imports ``repro.fleet``: a non-fleet run (a
   plain experiment, a pooled batch) cannot even *load* the package,
   so single-device users pay nothing for the cluster layer.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

FLEET_SCRIPT = """
from repro._units import MiB
from repro.fleet.cluster import FleetSpec, run_fleet
from repro.studies.common import StudyScale

spec = FleetSpec.sized(
    3, mix=("ssd1", "ssd2", "ssd3"), epochs=2, tenants=8, skew=1.0, seed=9
)
scale = StudyScale(ssd_runtime_s=0.02, ssd_bytes=12 * MiB)
result = run_fleet(spec, scale)
print(result.digest())
print(repr(sorted(result.summary().items())))
"""

ZERO_IMPORT_SCRIPT = """
import sys
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.options import ExecutionOptions
from repro.core.parallel import run_configs
from repro.iogen.spec import IoPattern, JobSpec

# The facade (repro/__init__) re-exports repro.fleet eagerly.  Evict it
# and poison any reload: the non-fleet execution path -- one experiment
# plus a pooled batch -- must never come back for it.
for name in [m for m in sys.modules if m.startswith("repro.fleet")]:
    del sys.modules[name]


class Poison:
    def find_spec(self, name, path=None, target=None):
        if name.startswith("repro.fleet"):
            raise ImportError(
                "repro.fleet loaded on the non-fleet path: " + name
            )
        return None


sys.meta_path.insert(0, Poison())
config = ExperimentConfig(
    device="ssd3",
    job=JobSpec(IoPattern.RANDREAD, block_size=16384, iodepth=4,
                runtime_s=0.005, size_limit_bytes=2 * 1024 * 1024),
)
run_experiment(config)
run_configs([config], ExecutionOptions(n_workers=1))
assert not any(m.startswith("repro.fleet") for m in sys.modules)
print("clean")
"""


def _run_with_hashseed(script: str, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


class TestCrossProcessDeterminism:
    def test_fleet_digest_identical_across_hash_seeds(self):
        outputs = {_run_with_hashseed(FLEET_SCRIPT, hs) for hs in ("1", "2")}
        assert len(outputs) == 1, f"fleet runs diverged: {outputs}"


class TestZeroImport:
    def test_non_fleet_run_never_loads_the_package(self):
        """Plain experiments and pooled batches survive a poisoned
        repro.fleet."""
        out = _run_with_hashseed(ZERO_IMPORT_SCRIPT, "0")
        assert out.strip() == "clean"

    def test_core_sources_never_import_fleet_at_module_level(self):
        """Only the deprecated ``repro.core.fleet`` alias may touch the
        fleet package from inside repro.core; everything else in the
        single-device layers must stay decoupled."""
        src_root = Path(SRC) / "repro"
        offenders = []
        for layer in ("core", "devices", "sim", "policy", "obs"):
            for path in sorted((src_root / layer).glob("*.py")):
                if layer == "core" and path.name == "fleet.py":
                    continue  # the deprecation shim is the alias itself
                tree = ast.parse(path.read_text())
                for node in tree.body:  # module level only
                    names = []
                    if isinstance(node, ast.Import):
                        names = [a.name for a in node.names]
                    elif isinstance(node, ast.ImportFrom):
                        names = [node.module or ""]
                    if any(n.startswith("repro.fleet") for n in names):
                        offenders.append(f"{path}:{node.lineno}")
        assert not offenders, offenders
