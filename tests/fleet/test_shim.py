"""The ``repro.core.fleet`` deprecation shim: warns but works."""

import sys
import warnings

import pytest


def _evict(prefix: str) -> None:
    for name in [m for m in sys.modules if m.startswith(prefix)]:
        del sys.modules[name]


class TestShim:
    def test_old_import_warns_and_aliases_the_new_module(self):
        # The module-level warning fires once per process; evict any
        # cached import so this test sees it regardless of ordering.
        _evict("repro.core.fleet")
        with pytest.warns(DeprecationWarning, match="repro.fleet.model"):
            import repro.core.fleet as old

        from repro.fleet.model import FleetAllocation, FleetModel

        assert old.FleetModel is FleetModel
        assert old.FleetAllocation is FleetAllocation
        assert set(old.__all__) == {"FleetAllocation", "FleetModel"}

    def test_new_path_does_not_warn(self):
        import importlib

        # Restore the original module object afterwards: a fresh import
        # would otherwise give later tests a different FleetModel class
        # than the one the facade captured at startup.
        saved = {
            name: module
            for name, module in sys.modules.items()
            if name.startswith("repro.fleet.model")
        }
        try:
            _evict("repro.fleet.model")
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                module = importlib.import_module("repro.fleet.model")
            assert hasattr(module, "FleetModel")
        finally:
            sys.modules.update(saved)

    def test_facade_exports_come_from_the_new_home(self):
        import repro
        from repro.fleet.model import FleetModel

        assert repro.FleetModel is FleetModel
