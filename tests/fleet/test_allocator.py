"""The BudgetAllocator protocol and both of its implementations."""

import pytest

from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.sweep import SweepPoint
from repro.fleet.api import BudgetAllocator, BudgetSplit, DeviceView
from repro.fleet.governor import ClusterGovernor
from repro.fleet.model import FleetModel
from repro.iogen.spec import IoPattern


def mk(power, tput):
    return ModelPoint(
        SweepPoint(IoPattern.RANDWRITE, 4096, 1, None),
        power_w=power,
        throughput_bps=tput,
        latency_p99_s=1e-3,
    )


def view(floor, ceiling, measured=0.0, demand=0.0, label="dev"):
    return DeviceView(
        label=label,
        floor_w=floor,
        ceiling_w=ceiling,
        measured_w=measured,
        demand=demand,
    )


@pytest.fixture
def fleet_model():
    a = PowerThroughputModel("a", [mk(5.0, 100e6), mk(10.0, 400e6)])
    b = PowerThroughputModel("b", [mk(3.0, 50e6), mk(7.0, 600e6)])
    return FleetModel([a, b])


class TestProtocol:
    def test_both_allocators_satisfy_the_protocol(self, fleet_model):
        assert isinstance(ClusterGovernor(), BudgetAllocator)
        assert isinstance(fleet_model, BudgetAllocator)

    def test_protocol_rejects_strangers(self):
        class NotAnAllocator:
            def divide(self, budget):
                return ()

        assert not isinstance(NotAnAllocator(), BudgetAllocator)

    def test_both_results_expose_the_split_contract(self, fleet_model):
        views = [view(1.0, 5.0, demand=1.0), view(2.0, 8.0, demand=1.0)]
        for result in (
            ClusterGovernor().allocate(10.0, views),
            fleet_model.allocate(12.0),
        ):
            assert len(result.caps_w) == 2
            assert result.total_power_w == pytest.approx(sum(result.caps_w))


class TestDeviceView:
    def test_validates_ranges(self):
        with pytest.raises(ValueError):
            view(0.0, 5.0)
        with pytest.raises(ValueError):
            view(5.0, 4.0)
        with pytest.raises(ValueError):
            DeviceView(label="d", floor_w=1.0, ceiling_w=2.0, demand=-1.0)


class TestGovernor:
    def test_needs_views(self):
        with pytest.raises(ValueError, match="DeviceView"):
            ClusterGovernor().allocate(10.0)
        with pytest.raises(ValueError, match="DeviceView"):
            ClusterGovernor().allocate(10.0, [])

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterGovernor().allocate(0.0, [view(1.0, 2.0)])

    def test_caps_stay_inside_actuator_ranges(self):
        views = [view(1.0, 5.0, demand=3.0), view(2.0, 8.0, demand=1.0)]
        for budget in (3.5, 6.0, 9.0, 13.0, 50.0):
            split = ClusterGovernor().allocate(budget, views)
            for cap, v in zip(split.caps_w, views):
                assert v.floor_w - 1e-12 <= cap <= v.ceiling_w + 1e-12

    def test_feasible_budget_fully_allocated_until_saturation(self):
        views = [view(1.0, 5.0, demand=1.0), view(2.0, 8.0, demand=1.0)]
        split = ClusterGovernor().allocate(10.0, views)
        assert split.total_power_w == pytest.approx(10.0)
        assert split.deficit_w == 0.0
        # Beyond the ceiling sum, allocation saturates at the ceilings.
        split = ClusterGovernor().allocate(100.0, views)
        assert split.caps_w == pytest.approx((5.0, 8.0))

    def test_infeasible_budget_reports_deficit_not_exception(self):
        views = [view(2.0, 5.0), view(3.0, 8.0)]
        split = ClusterGovernor().allocate(1.0, views)
        assert split.caps_w == pytest.approx((2.0, 3.0))  # pinned at floors
        assert split.deficit_w == pytest.approx(4.0)
        assert "deficit" in split.describe()

    def test_demand_weighting_steers_the_pour(self):
        views = [
            view(1.0, 10.0, demand=3.0),
            view(1.0, 10.0, demand=1.0),
        ]
        split = ClusterGovernor().allocate(6.0, views)
        # 4 W above floors poured 3:1.
        assert split.caps_w == pytest.approx((4.0, 2.0))

    def test_ceiling_overflow_recycles_to_open_devices(self):
        views = [
            view(1.0, 2.0, demand=10.0),  # hot but tiny ceiling
            view(1.0, 10.0, demand=1.0),
        ]
        split = ClusterGovernor().allocate(8.0, views)
        assert split.caps_w[0] == pytest.approx(2.0)
        assert split.caps_w[1] == pytest.approx(6.0)

    def test_weight_precedence_demand_then_meters_then_headroom(self):
        governor = ClusterGovernor()
        demand = [view(1.0, 5.0, measured=4.0, demand=2.0),
                  view(1.0, 5.0, measured=1.0, demand=0.0)]
        assert governor.weights(demand) == (2.0, 0.0)
        meters = [view(1.0, 5.0, measured=4.0),
                  view(1.0, 5.0, measured=0.5)]
        assert governor.weights(meters) == (3.0, 0.0)
        cold = [view(1.0, 5.0), view(1.0, 9.0)]
        assert governor.weights(cold) == (4.0, 8.0)

    def test_allocation_is_monotone_in_budget(self):
        views = [view(1.0, 6.0, demand=2.0), view(2.0, 9.0, demand=1.0)]
        totals = [
            ClusterGovernor().allocate(b, views).total_power_w
            for b in (4.0, 6.0, 9.0, 12.0, 20.0)
        ]
        assert totals == sorted(totals)

    def test_pure_function_of_inputs(self):
        views = [view(1.0, 5.0, demand=1.3), view(2.0, 8.0, demand=0.7)]
        a = ClusterGovernor().allocate(9.0, views)
        b = ClusterGovernor().allocate(9.0, list(views))
        assert a == b


class TestFleetModelAsAllocator:
    def test_views_are_ignored(self, fleet_model):
        views = [view(1.0, 5.0, demand=100.0), view(1.0, 5.0)]
        with_views = fleet_model.allocate(12.0, views)
        without = fleet_model.allocate(12.0)
        assert with_views == without

    def test_caps_w_mirrors_assignments(self, fleet_model):
        allocation = fleet_model.allocate(17.0)
        assert allocation.caps_w == tuple(
            a.power_w for a in allocation.assignments
        )
        assert allocation.total_power_w == pytest.approx(
            sum(allocation.caps_w)
        )

    def test_offline_planner_refuses_infeasible_budget(self, fleet_model):
        with pytest.raises(ValueError, match="below fleet floor"):
            fleet_model.allocate(5.0)


class TestBudgetSplit:
    def test_describe(self):
        split = BudgetSplit(caps_w=(1.0, 2.0), budget_w=5.0)
        assert "3.0 W of 5.0 W" in split.describe()
