"""End-to-end fleet runs: governor loop, ledger, report, study render."""

import pytest

from repro._units import MiB
from repro.core.ledger import RunLedger
from repro.core.report import build_report, render_markdown
from repro.fleet.cluster import (
    DEFAULT_MIX,
    FleetSpec,
    device_power_range,
    run_fleet,
)
from repro.fleet.model import FleetModel
from repro.studies import fleet_scale
from repro.studies.common import StudyScale

#: Small stop rules: mechanisms intact, CI-speed walls.
TINY = StudyScale(
    ssd_runtime_s=0.02,
    ssd_bytes=12 * MiB,
    hdd_runtime_s=1.0,
    hdd_bytes=12 * MiB,
)

SSD_MIX = ("ssd1", "ssd2", "ssd3")


def tiny_spec(n=4, **kwargs):
    defaults = dict(mix=SSD_MIX, epochs=3, tenants=12, skew=1.0, seed=3)
    defaults.update(kwargs)
    return FleetSpec.sized(n, **defaults)


@pytest.fixture(scope="module")
def tiny_result():
    return run_fleet(tiny_spec(), TINY)


class TestSpec:
    def test_sized_cycles_the_mix(self):
        spec = FleetSpec.sized(6, mix=DEFAULT_MIX)
        assert spec.devices == (
            "ssd1", "ssd2", "ssd3", "hdd", "ssd1", "ssd2"
        )

    def test_validates_fields(self):
        with pytest.raises(ValueError, match="at least one device"):
            FleetSpec(devices=())
        with pytest.raises(ValueError, match="unknown device preset"):
            FleetSpec(devices=("floppy",))
        with pytest.raises(ValueError, match="epochs"):
            tiny_spec(epochs=0)
        with pytest.raises(ValueError, match="budget"):
            tiny_spec(budget_low=0.9, budget_high=0.6)
        with pytest.raises(ValueError, match="fraction"):
            tiny_spec(budget_high=1.2)

    def test_budget_schedule_spans_the_fraction_envelope(self):
        spec = tiny_spec()
        ceiling = sum(device_power_range(d)[1] for d in spec.devices)
        schedule = spec.budget_schedule()
        watts = [schedule.watts_at(t / 16) for t in range(16)]
        assert max(watts) <= spec.budget_high * ceiling + 1e-6
        assert min(watts) >= spec.budget_low * ceiling - 1e-6

    def test_device_power_range_orders_floor_and_ceiling(self):
        for label in DEFAULT_MIX:
            floor, ceiling = device_power_range(label)
            assert 0 < floor < ceiling


class TestRunFleet:
    def test_tiny_fleet_validates_clean(self, tiny_result):
        assert tiny_result.ok, tiny_result.validation.render()
        assert len(tiny_result.epochs) == 3
        assert len(tiny_result.floors_w) == 4

    def test_epoch_accounting_is_coherent(self, tiny_result):
        for e in tiny_result.epochs:
            assert e.allocated_w <= e.budget_w + 1e-6
            assert e.deficit_w == 0.0
            assert e.measured_w > 0
            assert e.baseline_w > 0
            assert 0 < e.intensity <= 1.0

    def test_headline_properties(self, tiny_result):
        assert tiny_result.baseline_power_w > 0
        assert tiny_result.governed_power_w <= (
            tiny_result.baseline_power_w * 1.05
        )
        assert tiny_result.p99_blowup >= 1.0
        assert tiny_result.dynamic_range_w >= 0.0

    def test_digest_is_repeat_stable(self, tiny_result):
        again = run_fleet(tiny_spec(), TINY)
        assert again.digest() == tiny_result.digest()
        assert len(tiny_result.digest()) == 32

    def test_metrics_fold_across_epochs(self, tiny_result):
        metrics = tiny_result.metrics
        assert metrics["fleet.ios"]["all"]["value"] > 0
        assert metrics["fleet.bytes"]["all"]["value"] > 0
        hist = metrics["fleet.latency_s"]["all"]
        assert hist["type"] == "bucketed_histogram"
        assert hist["count"] == metrics["fleet.ios"]["all"]["value"]

    def test_rollup_groups_by_device(self, tiny_result):
        assert set(tiny_result.rollup["groups"]) <= {
            "ssd1", "ssd2", "ssd3", "hdd"
        }

    def test_summary_is_json_ready(self, tiny_result):
        import json

        summary = tiny_result.summary()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["devices"] == 4
        assert summary["digest"] == tiny_result.digest()

    def test_rejects_non_allocator(self):
        with pytest.raises(TypeError, match="BudgetAllocator"):
            run_fleet(tiny_spec(), TINY, allocator=object())

    def test_offline_fleet_model_drops_in_as_allocator(self):
        """The protocol's point: a FleetModel drives the same loop."""
        from repro.core.model import ModelPoint, PowerThroughputModel
        from repro.core.sweep import SweepPoint
        from repro.iogen.spec import IoPattern

        spec = tiny_spec()

        def model_for(label):
            floor, ceiling = device_power_range(label)
            points = [
                ModelPoint(
                    SweepPoint(IoPattern.RANDWRITE, 4096, 1, None),
                    power_w=floor,
                    throughput_bps=50e6,
                    latency_p99_s=1e-3,
                ),
                ModelPoint(
                    SweepPoint(IoPattern.RANDWRITE, 4096, 8, None),
                    power_w=ceiling,
                    throughput_bps=400e6,
                    latency_p99_s=2e-3,
                ),
            ]
            return PowerThroughputModel(label, points)

        model = FleetModel([model_for(d) for d in spec.devices])
        result = run_fleet(spec, TINY, allocator=model)
        assert len(result.epochs) == 3
        for epoch, caps_sum in zip(
            result.epochs, (e.allocated_w for e in result.epochs)
        ):
            assert caps_sum <= epoch.budget_w + 1e-6


class TestLedgerAndReport:
    def test_fleet_run_feeds_the_report(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        run_fleet(tiny_spec(), TINY, ledger=ledger_path)
        records = RunLedger.load(ledger_path)
        kinds = {r.get("rec") for r in records}
        assert {"point", "fleet", "run"} <= kinds

        report = build_report(records)
        assert report["ok"] is True
        assert report["overview"]["skipped_records"] == 0
        assert "fleet" in report
        assert len(report["fleet"]["epochs"]) == 3
        summary = report["fleet"]["summary"]
        assert summary["devices"] == 4

        text = render_markdown(report)
        assert "## Fleet" in text
        assert "harvested" in text
        assert "skipped" not in text

    def test_unknown_record_kinds_are_counted_not_dropped(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(ledger_path)
        run_fleet(tiny_spec(n=2, mix=("ssd3",), epochs=2), TINY,
                  ledger=ledger)
        ledger.append({"rec": "from_the_future", "payload": 1})
        ledger.append({"rec": "also_unknown"})
        report = build_report(RunLedger.load(ledger_path))
        assert report["overview"]["skipped_records"] == 2
        text = render_markdown(report)
        assert "skipped 2 unrecognized record(s)" in text


class TestStudy:
    def test_render_has_table_headline_and_digest(self, monkeypatch):
        monkeypatch.setattr(fleet_scale, "TOLERANCES", None)
        result = fleet_scale.run(
            scale=TINY, n_devices=3, epochs=3, tenants=9, skew=1.0,
            mix=SSD_MIX, seed=5,
        )
        text = fleet_scale.render(result)
        assert "Fleet of 3 devices" in text
        assert "harvested" in text
        assert "digest " in text
        assert "Epoch" in text

    def test_render_is_repeat_stable(self):
        kwargs = dict(
            scale=TINY, n_devices=3, epochs=3, tenants=9, skew=1.0,
            mix=SSD_MIX, seed=5,
        )
        assert fleet_scale.render(fleet_scale.run(**kwargs)) == (
            fleet_scale.render(fleet_scale.run(**kwargs))
        )
