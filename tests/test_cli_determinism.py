"""Hash-seed determinism of every CLI subcommand.

Python randomizes ``hash()`` per process via ``PYTHONHASHSEED``, so any
code path that lets builtin hashing leak into simulation state (seed
derivation, set/dict iteration feeding a grid, cache-key digests) will
produce different numbers in different interpreter invocations while
looking perfectly deterministic inside one test process.  These tests
spawn a real subprocess per hash seed -- 0, 1, and fully randomized --
for *each* of the ten CLI subcommands and require the complete stdout
(plus exit status) to be bit-identical across them.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

HASH_SEEDS = ("0", "1", "random")

#: One cheap, seeded invocation per subcommand.  ``{cache}`` is filled
#: with a per-test temporary directory; ``report`` reads the fixed
#: ledger a prior sweep subprocess wrote there, so its render must be a
#: pure function of the ledger bytes.
COMMANDS = {
    "devices": ["devices"],
    "run": [
        "run", "--device", "ssd3", "--rw", "randread", "--bs", "64k",
        "--iodepth", "4", "--runtime", "0.005", "--size", "2M",
        "--seed", "7",
    ],
    "sweep": [
        "sweep", "--device", "ssd3", "--rw", "randread", "--bs", "16k",
        "--iodepth", "2", "--runtime", "0.004", "--size", "2M",
        "--seed", "7", "--workers", "1",
    ],
    "figure": ["figure", "table1", "--quick"],
    "validate": [
        "validate", "--device", "ssd3", "--quick", "--seed", "7",
        "--workers", "1",
    ],
    "policy": [
        "policy", "--device", "ssd3", "--policy", "static", "--quick",
        "--seed", "7", "--workers", "1",
    ],
    "chaos": [
        "chaos", "--device", "ssd2", "--quick", "--seed", "7",
        "--workers", "1", "--controllers", "feedback",
        "--budget-cells", "2",
    ],
    "fleet": [
        "fleet", "--quick", "--devices", "4", "--epochs", "2",
        "--tenants", "8", "--seed", "7", "--workers", "1",
    ],
    "report": ["report", "--cache", "{cache}"],
    "plan": ["plan", "--device", "ssd3", "--cut", "0.2"],
}


def _invoke(args: list[str], hashseed: str) -> tuple[int, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, (
        f"repro {' '.join(args)} failed under PYTHONHASHSEED={hashseed}:\n"
        f"{proc.stderr}"
    )
    return proc.returncode, proc.stdout


def _digest(code: int, out: str) -> str:
    return hashlib.sha256(f"{code}\n{out}".encode()).hexdigest()


@pytest.fixture(scope="module")
def report_cache(tmp_path_factory) -> Path:
    """A cache directory holding one fixed sweep ledger for ``report``."""
    cache = tmp_path_factory.mktemp("det-cache")
    _invoke(
        [
            "sweep", "--device", "ssd3", "--rw", "randread", "--bs", "16k",
            "--iodepth", "2", "--runtime", "0.004", "--size", "2M",
            "--seed", "7", "--workers", "1", "--cache", str(cache),
        ],
        hashseed="1",
    )
    assert (cache / "ledger.jsonl").exists()
    return cache


class TestHashSeedDeterminism:
    @pytest.mark.parametrize("command", sorted(COMMANDS))
    def test_subcommand_output_survives_hash_randomization(
        self, command, report_cache
    ):
        args = [a.format(cache=report_cache) for a in COMMANDS[command]]
        digests = {}
        for hashseed in HASH_SEEDS:
            code, out = _invoke(args, hashseed)
            assert out.strip(), f"repro {command} printed nothing"
            digests[hashseed] = _digest(code, out)
        assert len(set(digests.values())) == 1, (
            f"repro {command} output depends on the interpreter hash "
            f"seed: {digests}"
        )
