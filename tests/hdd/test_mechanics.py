"""Tests for seek/rotation models and RPO selection."""

import numpy as np
import pytest

from repro.hdd.geometry import HddGeometry
from repro.hdd.mechanics import (
    RotationModel,
    SeekModel,
    pick_next_rpo,
    positioning_time,
)

GEOM = HddGeometry(capacity_bytes=1_000_000_000)
SEEK = SeekModel(settle_time=0.5e-3, average_seek_read=4.16e-3, write_settle_extra=0.4e-3)


class TestSeekModel:
    def test_zero_distance_read_is_free(self):
        assert SEEK.seek_time(0.0) == 0.0

    def test_zero_distance_write_costs_settle_extra(self):
        assert SEEK.seek_time(0.0, is_write=True) == pytest.approx(0.4e-3)

    def test_sqrt_law_monotone(self):
        times = [SEEK.seek_time(d) for d in (0.01, 0.1, 0.5, 1.0)]
        assert times == sorted(times)

    def test_average_random_seek_matches_datasheet(self):
        """Calibration: E[seek over random pairs] ~ the datasheet figure."""
        rng = np.random.default_rng(0)
        xs, ys = rng.uniform(size=20000), rng.uniform(size=20000)
        mean_seek = np.mean([SEEK.seek_time(abs(x - y)) for x, y in zip(xs, ys)])
        assert mean_seek == pytest.approx(4.16e-3, rel=0.02)

    def test_full_stroke_exceeds_average(self):
        assert SEEK.full_stroke > SEEK.average_seek_read

    def test_writes_slower_than_reads(self):
        assert SEEK.seek_time(0.3, is_write=True) > SEEK.seek_time(0.3)

    def test_distance_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SEEK.seek_time(1.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SeekModel(settle_time=0.0)
        with pytest.raises(ValueError):
            SeekModel(settle_time=5e-3, average_seek_read=4e-3)


class TestRotation:
    def test_angle_wraps_each_revolution(self):
        rotation = RotationModel(GEOM)
        rev = GEOM.revolution_time
        assert rotation.angle_at(0.0) == pytest.approx(0.0)
        assert rotation.angle_at(rev) == pytest.approx(0.0, abs=1e-9)
        assert rotation.angle_at(rev / 2) == pytest.approx(0.5)

    def test_rotational_wait_bounded_by_revolution(self):
        rotation = RotationModel(GEOM)
        for target in np.linspace(0, 0.999, 17):
            wait = rotation.rotational_wait(0.123, 2e-3, float(target))
            assert 0.0 <= wait < GEOM.revolution_time

    def test_wait_accounts_for_seek_duration(self):
        rotation = RotationModel(GEOM)
        # Target angle exactly where the head lands after the seek: no wait.
        seek = 3e-3
        target = rotation.angle_at(1.0 + seek)
        wait = rotation.rotational_wait(1.0, seek, target)
        assert wait == pytest.approx(0.0, abs=1e-9)


class TestPositioningTime:
    def test_sequential_hint_is_free(self):
        rotation = RotationModel(GEOM)
        cost = positioning_time(
            GEOM, SEEK, rotation, 0.0, 0, 500_000_000, False, sequential_hint=True
        )
        assert cost == 0.0

    def test_random_position_cost_positive(self):
        rotation = RotationModel(GEOM)
        cost = positioning_time(GEOM, SEEK, rotation, 0.0, 0, 500_000_000, False)
        assert cost > SEEK.settle_time


class TestRpo:
    def test_picks_minimum_cost(self):
        index, item = pick_next_rpo([5.0, 2.0, 7.0], cost=lambda x: x)
        assert (index, item) == (1, 2.0)

    def test_ties_go_to_earliest(self):
        index, __ = pick_next_rpo([3.0, 3.0, 3.0], cost=lambda x: x)
        assert index == 0

    def test_window_limits_lookahead(self):
        index, item = pick_next_rpo([5.0, 4.0, 0.1], cost=lambda x: x, window=2)
        assert item == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pick_next_rpo([], cost=lambda x: x)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            pick_next_rpo([1.0], cost=lambda x: x, window=0)

    def test_deeper_window_cuts_expected_service_time(self):
        """The mechanism behind the paper's HDD random-write floor: a
        deeper pool gives RPO more choice, shrinking per-op positioning."""
        rng = np.random.default_rng(1)
        rotation = RotationModel(GEOM)

        def mean_cost(window):
            total = 0.0
            for trial in range(200):
                offsets = rng.integers(0, GEOM.capacity_bytes - 4096, size=window)
                costs = [
                    positioning_time(
                        GEOM, SEEK, rotation, trial * 1e-2, 0, int(o), True
                    )
                    for o in offsets
                ]
                total += min(costs)
            return total / 200

        assert mean_cost(16) < mean_cost(2) < mean_cost(1)
