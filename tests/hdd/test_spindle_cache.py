"""Tests for the spindle state machine and the write-back cache."""

import pytest

from repro.hdd.cache import CachedWrite, WriteCache
from repro.hdd.spindle import Spindle, SpindleConfig, SpindleState
from repro.power.rail import PowerRail
from tests.conftest import drive

CONFIG = SpindleConfig(
    rotation_power_w=2.5,
    spinup_surge_w=2.0,
    spinup_time_s=4.0,
    spindown_time_s=1.0,
)


class TestSpindle:
    def test_starts_spinning_with_rotation_power(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG)
        assert spindle.state is SpindleState.SPINNING
        assert rail.draw_of("spindle") == pytest.approx(2.5)

    def test_spin_down_unpowers_motor(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG)
        drive(engine, engine.process(spindle.spin_down()))
        assert spindle.state is SpindleState.STANDBY
        assert rail.draw_of("spindle") == 0.0
        assert engine.now == pytest.approx(1.0)

    def test_spin_up_takes_time_and_surges(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG, start_spinning=False)
        surge_seen = []

        def watcher(eng):
            yield eng.timeout(2.0)
            surge_seen.append(rail.draw_of("spindle"))

        engine.process(watcher(engine))
        proc = engine.process(spindle.spin_up())
        drive(engine, proc)
        assert engine.now == pytest.approx(4.0)
        assert surge_seen == [pytest.approx(4.5)]
        assert rail.draw_of("spindle") == pytest.approx(2.5)

    def test_gate_closed_until_ready(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG, start_spinning=False)
        assert not spindle.ready_gate.is_open
        drive(engine, engine.process(spindle.spin_up()))
        assert spindle.ready_gate.is_open

    def test_spin_up_while_spinning_is_noop(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG)
        drive(engine, engine.process(spindle.spin_up()))
        assert engine.now == 0.0
        assert spindle.spinups == 0

    def test_concurrent_spin_up_joins(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG, start_spinning=False)
        engine.process(spindle.spin_up())
        second = engine.process(spindle.spin_up())
        drive(engine, second)
        assert spindle.spinups == 1
        assert engine.now == pytest.approx(4.0)

    def test_spin_down_while_transitioning_rejected(self, engine):
        rail = PowerRail(engine)
        spindle = Spindle(engine, rail, CONFIG, start_spinning=False)
        engine.process(spindle.spin_up())
        engine.run(until=1.0)
        proc = engine.process(spindle.spin_down())
        while proc.is_alive:
            engine.step()
        assert not proc.ok
        assert isinstance(proc.value, RuntimeError)


class TestWriteCache:
    def test_put_tracks_bytes(self, engine):
        cache = WriteCache(engine, capacity_bytes=10_000)
        cache.put(0, 4096)
        assert cache.used_bytes == 4096
        assert len(cache) == 1

    def test_fits_respects_capacity(self, engine):
        cache = WriteCache(engine, capacity_bytes=8192)
        cache.put(0, 4096)
        assert cache.fits(4096)
        cache.put(4096, 4096)
        assert not cache.fits(1)

    def test_overflow_put_rejected(self, engine):
        cache = WriteCache(engine, capacity_bytes=4096)
        cache.put(0, 4096)
        with pytest.raises(RuntimeError):
            cache.put(4096, 4096)

    def test_entries_kept_sorted_by_offset(self, engine):
        cache = WriteCache(engine, capacity_bytes=1_000_000)
        for offset in (500, 100, 300):
            cache.put(offset, 10)
        window = cache.window(3)
        assert [e.offset for e in window] == [100, 300, 500]

    def test_window_wraps_around(self, engine):
        cache = WriteCache(engine, capacity_bytes=1_000_000)
        for offset in (100, 200, 300):
            cache.put(offset, 10)
        cache.remove(cache.window(1)[0])  # removes 100, sweep at index 0
        cache.remove(cache.window(1)[0])  # removes 200
        window = cache.window(2)
        assert [e.offset for e in window] == [300]

    def test_remove_frees_space_and_wakes_waiters(self, engine):
        cache = WriteCache(engine, capacity_bytes=4096)
        cache.put(0, 4096)
        woken = []

        def waiter(eng):
            yield cache.wait_for_space()
            woken.append(eng.now)

        engine.process(waiter(engine))
        engine.run(until=1.0)
        assert woken == []
        cache.remove(cache.window(1)[0])
        engine.run(until=1.0)
        assert woken == [1.0]

    def test_remove_missing_entry_rejected(self, engine):
        cache = WriteCache(engine, capacity_bytes=4096)
        cache.put(0, 100)
        with pytest.raises(ValueError):
            cache.remove(CachedWrite(999, 1))

    def test_invalid_capacity(self, engine):
        with pytest.raises(ValueError):
            WriteCache(engine, capacity_bytes=0)
