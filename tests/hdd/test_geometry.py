"""Tests for HDD zoned layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdd.geometry import HddGeometry

GEOM = HddGeometry(
    capacity_bytes=1_000_000_000,
    rpm=7200,
    outer_bandwidth=200e6,
    inner_bandwidth=100e6,
)


class TestHddGeometry:
    def test_revolution_time(self):
        assert GEOM.revolution_time == pytest.approx(60.0 / 7200)

    def test_radial_fraction_endpoints(self):
        assert GEOM.radial_fraction(0) == 0.0
        assert GEOM.radial_fraction(GEOM.capacity_bytes - 1) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_bandwidth_zbr_profile(self):
        assert GEOM.bandwidth_at(0) == pytest.approx(200e6)
        mid = GEOM.bandwidth_at(GEOM.capacity_bytes // 2)
        assert mid == pytest.approx(150e6, rel=1e-3)

    def test_transfer_time_uses_local_bandwidth(self):
        outer = GEOM.transfer_time(0, 1_000_000)
        inner = GEOM.transfer_time(GEOM.capacity_bytes - 2_000_000, 1_000_000)
        assert inner > outer

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GEOM.radial_fraction(GEOM.capacity_bytes)
        with pytest.raises(ValueError):
            GEOM.bandwidth_at(-1)

    def test_invalid_bandwidth_order(self):
        with pytest.raises(ValueError):
            HddGeometry(outer_bandwidth=50e6, inner_bandwidth=100e6)

    def test_angular_offset_deterministic(self):
        assert GEOM.angular_offset(4096) == GEOM.angular_offset(4096)

    def test_angular_offset_scatters_neighbours(self):
        """Adjacent sectors land at well-separated angles (interleaving)."""
        a = GEOM.angular_offset(0)
        b = GEOM.angular_offset(GEOM.sector_size)
        assert abs(a - b) > 0.01

    @given(st.integers(min_value=0, max_value=GEOM.capacity_bytes - 1))
    @settings(max_examples=100, deadline=None)
    def test_angular_offset_in_unit_interval(self, offset):
        angle = GEOM.angular_offset(offset)
        assert 0.0 <= angle < 1.0

    @given(st.integers(min_value=0, max_value=GEOM.capacity_bytes - 1))
    @settings(max_examples=100, deadline=None)
    def test_bandwidth_within_zone_limits(self, offset):
        bw = GEOM.bandwidth_at(offset)
        assert 100e6 <= bw <= 200e6
