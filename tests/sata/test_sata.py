"""Tests for ALPM and the ATA power command set."""

import pytest

from repro.devices.catalog import build_device
from repro.devices.link import LinkPowerMode
from repro.sata.alpm import AlpmController, AlpmTransition
from repro.sata.ata import (
    AtaPowerMode,
    check_power_mode,
    idle_immediate,
    standby_immediate,
)
from repro.sim.rng import RngStreams
from tests.conftest import drive


@pytest.fixture
def evo(engine):
    return build_device(engine, "860evo", rng=RngStreams(0))


@pytest.fixture
def hdd(engine):
    return build_device(engine, "hdd")


class TestAlpm:
    def test_slumber_cuts_idle_power_in_half(self, engine, evo):
        engine.run(until=0.1)
        idle = evo.rail.mean_power(0.05, 0.1)
        alpm = AlpmController(evo)
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.SLUMBER)))
        t0 = engine.now
        engine.run(until=t0 + 0.1)
        slumber = evo.rail.mean_power(t0 + 0.01, t0 + 0.1)
        assert slumber == pytest.approx(0.17, abs=0.01)
        assert slumber < 0.6 * idle

    def test_transition_draws_extra_power(self, engine, evo):
        alpm = AlpmController(
            evo,
            enter_slumber=AlpmTransition(duration_s=0.1, extra_power_w=0.6),
        )
        proc = engine.process(alpm.set_mode(LinkPowerMode.SLUMBER))
        engine.run(until=0.05)
        assert evo.rail.draw_of("alpm.transition") == pytest.approx(0.6)
        drive(engine, proc)
        assert evo.rail.draw_of("alpm.transition") == 0.0

    def test_transition_duration(self, engine, evo):
        alpm = AlpmController(evo)
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.SLUMBER)))
        assert engine.now == pytest.approx(0.15)  # ENTER_SLUMBER default

    def test_same_mode_is_noop(self, engine, evo):
        alpm = AlpmController(evo)
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.ACTIVE)))
        assert engine.now == 0.0
        assert alpm.transitions_completed == 0

    def test_exit_restores_idle_power(self, engine, evo):
        alpm = AlpmController(evo)
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.SLUMBER)))
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.ACTIVE)))
        t0 = engine.now
        engine.run(until=t0 + 0.1)
        assert evo.rail.mean_power(t0 + 0.01, t0 + 0.1) == pytest.approx(
            0.35, abs=0.01
        )

    def test_partial_mode(self, engine, evo):
        alpm = AlpmController(evo)
        drive(engine, engine.process(alpm.set_mode(LinkPowerMode.PARTIAL)))
        assert alpm.mode is LinkPowerMode.PARTIAL

    def test_invalid_transition_parameters(self):
        with pytest.raises(ValueError):
            AlpmTransition(duration_s=-1.0, extra_power_w=0.1)


class TestAta:
    def test_check_power_mode_active(self, hdd):
        assert check_power_mode(hdd) is AtaPowerMode.ACTIVE_OR_IDLE

    def test_standby_immediate_spins_down(self, engine, hdd):
        drive(engine, engine.process(standby_immediate(hdd)))
        assert check_power_mode(hdd) is AtaPowerMode.STANDBY

    def test_idle_immediate_spins_up(self, engine, hdd):
        drive(engine, engine.process(standby_immediate(hdd)))
        drive(engine, engine.process(idle_immediate(hdd)))
        assert check_power_mode(hdd) is AtaPowerMode.ACTIVE_OR_IDLE

    def test_transitioning_reported(self, engine, hdd):
        drive(engine, engine.process(standby_immediate(hdd)))
        engine.process(idle_immediate(hdd))
        engine.run(until=engine.now + 0.5)  # mid spin-up
        assert check_power_mode(hdd) is AtaPowerMode.TRANSITIONING

    def test_standby_saves_most_power(self, engine, hdd):
        engine.run(until=0.1)
        idle = hdd.rail.mean_power(0.05, 0.1)
        drive(engine, engine.process(standby_immediate(hdd)))
        t0 = engine.now
        engine.run(until=t0 + 0.2)
        standby = hdd.rail.mean_power(t0 + 0.05, t0 + 0.2)
        # Paper: 3.76 W idle -> 1.1 W standby.
        assert idle == pytest.approx(3.76, abs=0.05)
        assert standby == pytest.approx(1.1, abs=0.05)
