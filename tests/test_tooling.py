"""The repo's lint checks, run as part of the test suite."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_coverage  # noqa: E402
import check_fault_rng  # noqa: E402
import check_no_bare_except  # noqa: E402
import check_no_bare_hash  # noqa: E402
import check_no_print  # noqa: E402
import check_obs_guards  # noqa: E402
import check_test_quality  # noqa: E402
import check_tolerances  # noqa: E402


class TestNoBareHashLint:
    def test_src_repro_is_clean(self):
        """Builtin ``hash()`` is banned in src/repro: it is randomized per
        process and once made sweep seeds irreproducible."""
        assert check_no_bare_hash.main([]) == 0

    def test_detects_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("salt = hash((a, b))\n")
        assert check_no_bare_hash.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1" in out

    def test_ignores_legitimate_uses(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "import hashlib\n"
            "digest = hashlib.blake2b(b'x').hexdigest()\n"
            "key = config_content_hash(config)\n"
            "h = obj.__hash__()\n"
            "# a comment mentioning hash( is fine\n"
        )
        assert check_no_bare_hash.main([str(tmp_path)]) == 0


class TestNoBareExceptLint:
    def test_src_repro_is_clean(self):
        """Bare ``except:`` and ``except Exception: pass`` are banned in
        src/repro: a resilience layer must never swallow errors silently."""
        assert check_no_bare_except.main([]) == 0

    def test_detects_bare_except(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    risky()\nexcept:\n    handle()\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:3" in out
        assert "bare 'except:'" in out

    def test_detects_swallowed_exception(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    risky()\nexcept Exception:\n    pass\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "swallows" in out

    def test_detects_swallowed_tuple_and_ellipsis(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    risky()\nexcept (ValueError, BaseException):\n    ...\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 1

    def test_allows_handled_and_narrow(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "try:\n"
            "    risky()\n"
            "except Exception as exc:\n"
            "    record(exc)\n"
            "try:\n"
            "    cleanup()\n"
            "except OSError:\n"
            "    pass\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 0


class TestNoPrintLint:
    def test_src_repro_is_clean(self):
        """Library code must not write to stdout: output belongs to return
        values and the repro.obs layer, stdout to the CLI alone."""
        assert check_no_print.main([]) == 0

    def test_detects_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    print('debugging')\n")
        assert check_no_print.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out

    def test_cli_module_exempt(self, tmp_path):
        cli = tmp_path / "cli.py"
        cli.write_text("print('the CLI is the stdout boundary')\n")
        assert check_no_print.main([str(tmp_path)]) == 0

    def test_main_guard_exempt(self, tmp_path):
        study = tmp_path / "study.py"
        study.write_text(
            "def run():\n"
            "    return 42\n"
            "\n"
            "if __name__ == '__main__':\n"
            "    print(run())\n"
        )
        assert check_no_print.main([str(tmp_path)]) == 0

    def test_strings_and_methods_ignored(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "doc = 'call print(x) to show it'\n"
            "logger.print('not the builtin')\n"
            "# print('commented out')\n"
        )
        assert check_no_print.main([str(tmp_path)]) == 0


class TestObsGuardsLint:
    def test_src_repro_is_clean(self):
        """Every tracer emission must sit behind an ``enabled`` check (or
        carry an explicit ``# obs-guard:`` justification): the zero-cost-
        when-off promise dies one unguarded hot-loop emit at a time."""
        assert check_obs_guards.main([]) == 0

    def test_detects_unguarded_emit(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def step(tracer):\n"
            "    tracer.emit(KIND, 'component', nbytes=4096)\n"
        )
        assert check_obs_guards.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out
        assert "unguarded" in out

    def test_accepts_if_enabled_guard(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "def step(tracer):\n"
            "    if tracer.enabled:\n"
            "        tracer.emit(KIND, 'component')\n"
        )
        assert check_obs_guards.main([str(tmp_path)]) == 0

    def test_accepts_early_return_guard(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "def trace_transition(tracer, state):\n"
            "    if not tracer.enabled or state is None:\n"
            "        return\n"
            "    extra = compute(state)\n"
            "    tracer.emit(KIND, 'component', extra=extra)\n"
        )
        assert check_obs_guards.main([str(tmp_path)]) == 0

    def test_guard_does_not_leak_into_nested_function(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def outer(tracer):\n"
            "    if not tracer.enabled:\n"
            "        return\n"
            "    def callback():\n"
            "        tracer.emit(KIND, 'component')\n"
            "    return callback\n"
        )
        assert check_obs_guards.main([str(tmp_path)]) == 1

    def test_pragma_opts_out_with_reason(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "def cold_path(tracer):\n"
            "    # obs-guard: callers hand in NULL_TRACER when off\n"
            "    tracer.emit(KIND, 'component')\n"
        )
        assert check_obs_guards.main([str(tmp_path)]) == 0

    def test_obs_package_is_exempt(self, tmp_path):
        obs = tmp_path / "obs"
        obs.mkdir()
        (obs / "events.py").write_text(
            "def set_scope(self, scope):\n"
            "    self.emit(KIND, 'tracer', scope=scope)\n"
        )
        assert check_obs_guards.main([str(tmp_path)]) == 0


class TestFaultRngLint:
    def test_fault_and_policy_packages_are_clean(self):
        """repro.faults and repro.policy may only draw randomness from
        keyed ``faults.*``/``policy.*`` streams: unkeyed draws decouple
        fault sequences from the experiment seed."""
        assert check_fault_rng.main([]) == 0

    def test_detects_random_import(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert check_fault_rng.main([str(tmp_path)]) == 1
        assert "bad.py:1" in capsys.readouterr().out

    def test_detects_numpy_random_import(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("from numpy.random import default_rng\n")
        assert check_fault_rng.main([str(tmp_path)]) == 1

    def test_detects_adhoc_generator(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("gen = np.random.default_rng(7)\n")
        assert check_fault_rng.main([str(tmp_path)]) == 1
        assert "default_rng" in capsys.readouterr().out

    def test_detects_unkeyed_stream(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(rngs, name):\n"
            "    a = rngs.get('telemetry.noise')\n"
            "    b = rngs.get(name)\n"
        )
        assert check_fault_rng.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out
        assert "bad.py:3" in out

    def test_accepts_keyed_streams(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "def f(rngs, streams, site):\n"
            "    a = rngs.get('faults.campaign')\n"
            "    b = streams.get('policy.interval')\n"
            "    c = rngs.get(f'faults.{site}')\n"
            "    d = mapping.get('arbitrary')\n"
        )
        assert check_fault_rng.main([str(tmp_path)]) == 0

    def test_pragma_opts_out_with_reason(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "def f(rngs):\n"
            "    # fault-rng: replays a recorded device stream\n"
            "    return rngs.get('device.gc')\n"
        )
        assert check_fault_rng.main([str(tmp_path)]) == 0


class TestTestQualityLint:
    def test_tests_are_clean(self):
        """The repo's own suites must contain no vacuous tests: every
        test asserts, every skip says why."""
        assert check_test_quality.main([]) == 0

    def test_benchmarks_are_clean(self):
        assert check_test_quality.main(["benchmarks"]) == 0

    def test_detects_constant_assert(self, tmp_path, capsys):
        bad = tmp_path / "test_bad.py"
        bad.write_text("def test_x():\n    assert True\n")
        assert check_test_quality.main([str(tmp_path)]) == 1
        assert "constant assert" in capsys.readouterr().out

    def test_detects_bare_skip_call(self, tmp_path, capsys):
        bad = tmp_path / "test_bad.py"
        bad.write_text(
            "import pytest\n"
            "def test_x():\n"
            "    pytest.skip()\n"
            "    assert frob()\n"
        )
        assert check_test_quality.main([str(tmp_path)]) == 1
        assert "skip without a reason" in capsys.readouterr().out

    def test_detects_bare_skip_marker(self, tmp_path, capsys):
        bad = tmp_path / "test_bad.py"
        bad.write_text(
            "import pytest\n"
            "@pytest.mark.skip\n"
            "def test_x():\n"
            "    assert frob()\n"
        )
        assert check_test_quality.main([str(tmp_path)]) == 1
        assert "skip without a reason" in capsys.readouterr().out

    def test_detects_assertionless_test(self, tmp_path, capsys):
        bad = tmp_path / "test_bad.py"
        bad.write_text("def test_x():\n    frob()\n")
        assert check_test_quality.main([str(tmp_path)]) == 1
        assert "no assertion" in capsys.readouterr().out

    def test_accepts_meaningful_tests(self, tmp_path):
        ok = tmp_path / "test_ok.py"
        ok.write_text(
            "import pytest\n"
            "import numpy.testing as npt\n"
            "def helper():\n"
            "    return 2\n"
            "def test_asserts():\n"
            "    assert helper() == 2\n"
            "def test_raises():\n"
            "    with pytest.raises(ValueError):\n"
            "        int('x')\n"
            "def test_reasoned_skip():\n"
            "    pytest.skip(reason='needs hardware')\n"
            "def test_helper_assertion():\n"
            "    npt.assert_allclose(1.0, 1.0)\n"
            "@pytest.mark.skip(reason='tracked in issue 7')\n"
            "def test_marked():\n"
            "    assert helper() == 2\n"
        )
        assert check_test_quality.main([str(tmp_path)]) == 0


class TestCoverageGate:
    def test_threshold_is_sane(self):
        assert 50.0 <= check_coverage.DEFAULT_THRESHOLD <= 100.0

    def test_gate_runs_or_skips_cleanly(self, capsys):
        """With coverage installed the gate enforces the threshold over
        the validate suite; without it, it must skip with an explicit
        message -- never fail on a missing dev tool."""
        code = check_coverage.main([])
        out = capsys.readouterr().out
        if check_coverage.coverage_available():
            assert code == 0
        else:
            assert code == 0
            assert "skipping" in out

    def test_skip_path_is_exercised(self, monkeypatch, capsys):
        monkeypatch.setattr(check_coverage, "coverage_available", lambda: False)
        assert check_coverage.main([]) == 0
        assert "skipping" in capsys.readouterr().out


class TestTolerancesLint:
    def test_equivalence_suite_is_clean(self):
        """Every approximate assertion in tests/equivalence/ must use a
        named constant from tolerances.py -- no inline magic epsilons."""
        assert check_tolerances.main([]) == 0

    def test_detects_inline_comparison_epsilon(self, tmp_path, capsys):
        bad = tmp_path / "test_bad.py"
        bad.write_text("def test_x():\n    assert rel_error < 0.05\n")
        assert check_tolerances.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "test_bad.py:2" in out and "0.05" in out

    def test_detects_inline_approx_and_isclose(self, tmp_path, capsys):
        bad = tmp_path / "test_bad.py"
        bad.write_text(
            "import math\n"
            "import pytest\n"
            "def test_x():\n"
            "    assert x == pytest.approx(y, rel=1e-6)\n"
            "    assert math.isclose(a, b, abs_tol=1e-9)\n"
        )
        assert check_tolerances.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "test_bad.py:4" in out
        assert "test_bad.py:5" in out

    def test_accepts_named_constants_counts_and_zero(self, tmp_path):
        ok = tmp_path / "test_ok.py"
        ok.write_text(
            "import pytest\n"
            "from tolerances import SPLICE_P50_LATENCY_RTOL as RTOL\n"
            "def test_x():\n"
            "    assert rel_error < tol.SPLICE_MEAN_POWER_RTOL\n"
            "    assert x == pytest.approx(y, rel=RTOL)\n"
            "    assert len(records) >= 200\n"
            "    assert worst > 0.0\n"
            "    runtime = ms * 1e-3  # arithmetic, not an assertion\n"
        )
        assert check_tolerances.main([str(tmp_path)]) == 0

    def test_declarations_file_is_exempt(self, tmp_path):
        decl = tmp_path / "tolerances.py"
        decl.write_text("SOME_RTOL = 0.05\nassert SOME_RTOL < 0.1\n")
        assert check_tolerances.main([str(tmp_path)]) == 0

    def test_pragma_opts_out_with_reason(self, tmp_path):
        ok = tmp_path / "test_ok.py"
        ok.write_text(
            "def test_x():\n"
            "    # tolerance: structural bound, not a measurement slack\n"
            "    assert fraction < 0.5\n"
        )
        assert check_tolerances.main([str(tmp_path)]) == 0
