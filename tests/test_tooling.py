"""The repo's lint checks, run as part of the test suite."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_no_bare_except  # noqa: E402
import check_no_bare_hash  # noqa: E402
import check_no_print  # noqa: E402


class TestNoBareHashLint:
    def test_src_repro_is_clean(self):
        """Builtin ``hash()`` is banned in src/repro: it is randomized per
        process and once made sweep seeds irreproducible."""
        assert check_no_bare_hash.main([]) == 0

    def test_detects_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("salt = hash((a, b))\n")
        assert check_no_bare_hash.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:1" in out

    def test_ignores_legitimate_uses(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "import hashlib\n"
            "digest = hashlib.blake2b(b'x').hexdigest()\n"
            "key = config_content_hash(config)\n"
            "h = obj.__hash__()\n"
            "# a comment mentioning hash( is fine\n"
        )
        assert check_no_bare_hash.main([str(tmp_path)]) == 0


class TestNoBareExceptLint:
    def test_src_repro_is_clean(self):
        """Bare ``except:`` and ``except Exception: pass`` are banned in
        src/repro: a resilience layer must never swallow errors silently."""
        assert check_no_bare_except.main([]) == 0

    def test_detects_bare_except(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    risky()\nexcept:\n    handle()\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:3" in out
        assert "bare 'except:'" in out

    def test_detects_swallowed_exception(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    risky()\nexcept Exception:\n    pass\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "swallows" in out

    def test_detects_swallowed_tuple_and_ellipsis(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "try:\n    risky()\nexcept (ValueError, BaseException):\n    ...\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 1

    def test_allows_handled_and_narrow(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "try:\n"
            "    risky()\n"
            "except Exception as exc:\n"
            "    record(exc)\n"
            "try:\n"
            "    cleanup()\n"
            "except OSError:\n"
            "    pass\n"
        )
        assert check_no_bare_except.main([str(tmp_path)]) == 0


class TestNoPrintLint:
    def test_src_repro_is_clean(self):
        """Library code must not write to stdout: output belongs to return
        values and the repro.obs layer, stdout to the CLI alone."""
        assert check_no_print.main([]) == 0

    def test_detects_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n    print('debugging')\n")
        assert check_no_print.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:2" in out

    def test_cli_module_exempt(self, tmp_path):
        cli = tmp_path / "cli.py"
        cli.write_text("print('the CLI is the stdout boundary')\n")
        assert check_no_print.main([str(tmp_path)]) == 0

    def test_main_guard_exempt(self, tmp_path):
        study = tmp_path / "study.py"
        study.write_text(
            "def run():\n"
            "    return 42\n"
            "\n"
            "if __name__ == '__main__':\n"
            "    print(run())\n"
        )
        assert check_no_print.main([str(tmp_path)]) == 0

    def test_strings_and_methods_ignored(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "doc = 'call print(x) to show it'\n"
            "logger.print('not the builtin')\n"
            "# print('commented out')\n"
        )
        assert check_no_print.main([str(tmp_path)]) == 0
