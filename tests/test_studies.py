"""Structural tests for the figure drivers.

The heavyweight shape assertions live in tests/test_reproduction.py; these
check that each driver produces complete, well-formed series and that the
renderers emit the paper's rows -- cheaply, via the QUICK scale and the
smallest grids.
"""

import pytest

from repro.iogen.spec import IoPattern, PAPER_CHUNK_SIZES, PAPER_QUEUE_DEPTHS
from repro.studies import claims, fig3, fig8, fig9, table1
from repro.studies.common import QUICK

pytestmark = pytest.mark.integration


class TestTable1Structure:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1.run(QUICK)

    def test_covers_all_devices(self, rows):
        assert [r.label for r in rows] == ["ssd1", "ssd2", "ssd3", "hdd"]

    def test_ranges_ordered(self, rows):
        for row in rows:
            assert row.measured_min_w < row.measured_max_w

    def test_render_contains_models(self, rows):
        text = table1.render(rows)
        for model in ("PM9A3", "D7-P5510", "D3-S4510", "Exos"):
            assert model in text


class TestFig3Structure:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(QUICK)

    def test_full_grid(self, result):
        assert result.chunk_sizes == PAPER_CHUNK_SIZES
        assert set(result.power_w) == {
            (qd, ps) for qd in (64, 1) for ps in (0, 1, 2)
        }

    def test_qd1_small_chunks_state_insensitive(self, result):
        """At QD1 and small chunks the device never hits any cap."""
        for ps in (1, 2):
            assert result.power_w[(1, ps)][0] == pytest.approx(
                result.power_w[(1, 0)][0], rel=0.05
            )

    def test_render(self, result):
        text = fig3.render(result)
        assert "Figure 3a" in text and "Figure 3b" in text


class TestFig8Fig9Structure:
    def test_fig8_series_complete(self):
        result = fig8.run(QUICK)
        for device in ("ssd1", "ssd2", "ssd3", "hdd"):
            assert len(result.power_w[device]) == len(PAPER_CHUNK_SIZES)
            assert len(result.throughput_mib[device]) == len(PAPER_CHUNK_SIZES)

    def test_fig8_throughput_rises_with_chunk(self):
        result = fig8.run(QUICK)
        for device in ("ssd2", "hdd"):
            series = result.throughput_mib[device]
            assert series[-1] > series[0]

    def test_fig9_series_complete(self):
        result = fig9.run(QUICK)
        assert result.iodepths == PAPER_QUEUE_DEPTHS
        for device in ("ssd1", "ssd2", "ssd3", "hdd"):
            assert len(result.power_w[device]) == len(PAPER_QUEUE_DEPTHS)

    def test_fig9_throughput_rises_with_depth(self):
        result = fig9.run(QUICK)
        for device in ("ssd1", "ssd2", "ssd3", "hdd"):
            series = result.throughput_mib[device]
            assert series[-1] >= series[0]


class TestClaims:
    def test_all_claims_hold_at_quick_scale(self):
        results = claims.run(QUICK)
        assert [c.claim_id for c in results] == [
            "C1", "C2", "C3", "C4", "C5", "C6", "C7",
        ]
        failing = [c.claim_id for c in results if not c.holds]
        assert not failing, claims.render(results)
