"""Ablation: HDD write cache and RPO lookahead.

DESIGN.md design decision 3.  The HDD's sustained random-write floor
(paper Fig. 10's ~4 %) is set by how well the drive schedules its cache
backlog.  This ablation sweeps the mechanism away: write-through (no
cache) and narrow RPO windows degrade the floor dramatically.
"""

import dataclasses

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.reporting import format_table
from repro.devices.catalog import hdd_exos_7e2000
from repro.iogen.spec import IoPattern, JobSpec


def _throughput(write_cache: bool, rpo_window: int) -> float:
    device = dataclasses.replace(
        hdd_exos_7e2000(),
        write_cache_enabled=write_cache,
        rpo_window=rpo_window,
    )
    result = run_experiment(
        ExperimentConfig(
            device=device,
            job=JobSpec(
                IoPattern.RANDWRITE,
                block_size=4 * KiB,
                iodepth=16,
                runtime_s=6.0,
                size_limit_bytes=48 * MiB,
            ),
            warmup_fraction=0.5,
        )
    )
    return result.throughput_mib_s


def run():
    return [
        ("write-back", 32, _throughput(True, 32)),
        ("write-back", 8, _throughput(True, 8)),
        ("write-back", 1, _throughput(True, 1)),
        ("write-through", 16, _throughput(False, 16)),
    ]


def render(rows):
    return format_table(
        ["Cache mode", "RPO window", "Random-write MiB/s (4 KiB)"],
        [list(r) for r in rows],
        title="Ablation: HDD cache/scheduling vs sustained random writes.",
    )


def test_ablation_hdd_cache_design(reproduce):
    rows = reproduce(run, render)
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # Wider lookahead helps; FIFO-ish (window 1) is clearly worse.
    assert by_key[("write-back", 32)] > by_key[("write-back", 1)] * 1.5
    # Write-back with scheduling beats write-through.
    assert by_key[("write-back", 32)] > by_key[("write-through", 16)]
