"""Ablation: the section-4 power-adaptive policies on a 16-SSD server.

Compares, at the same offered load, the fleet power of:

- **spread + shape**: all 16 devices active, each shaped to its share;
- **redirect + standby**: consolidate onto few devices, stand the rest
  down (PM1743 non-operational states give millisecond wakes);
- **asymmetric**: segregate writes, cap the read set.

Also runs the tiered write-absorption scenario (SSD masking HDD spin-up).
"""

from repro._units import GiB, KiB, MiB
from repro.core.asymmetric import AsymmetricPlanner
from repro.core.redirection import RedirectionPolicy, StandbyProfile
from repro.core.reporting import format_table
from repro.core.tiering import WriteAbsorptionScenario
from repro.iogen.spec import IoPattern
from repro.studies.common import QUICK
from repro.studies.fig10 import build_model

N_DEVICES = 16
OFFERED_WRITE = 6 * GiB  # bytes/s of write load offered to the server
OFFERED_READ = 10 * GiB


def run():
    write_model = build_model(
        "pm1743",
        pattern=IoPattern.RANDWRITE,
        scale=QUICK,
        chunks=(4 * KiB, 256 * KiB, 2048 * KiB),
        depths=(1, 64),
        states=(0, 1, 2),
    )
    read_model = build_model(
        "pm1743",
        pattern=IoPattern.RANDREAD,
        scale=QUICK,
        chunks=(4 * KiB, 256 * KiB, 2048 * KiB),
        depths=(1, 64),
        states=(0, 2),
    )
    standby = StandbyProfile(
        standby_power_w=0.8 + 0.25,  # ps4 idle + PHY
        wake_latency_s=8e-3,
        idle_power_w=5.0,
    )

    # Spread + shape: every device serves 1/16 of the write load as
    # cheaply as its model allows.
    per_device = write_model.cheapest_at_throughput(OFFERED_WRITE / N_DEVICES)
    spread_power = N_DEVICES * per_device.power_w

    # Redirect + standby.
    policy = RedirectionPolicy(write_model, standby, n_devices=N_DEVICES)
    redirect = policy.decide(OFFERED_WRITE, wake_slo_s=0.1)

    # Asymmetric segregation for the mixed read+write load.
    asym = AsymmetricPlanner(
        read_model, write_model, n_devices=N_DEVICES, cap_power_w=9.0
    )
    asym_plan = asym.plan(read_load_bps=OFFERED_READ, write_load_bps=OFFERED_WRITE)

    # Tiered absorption (event-driven, on real devices).
    tiering = WriteAbsorptionScenario(burst_bytes=4 * MiB, chunk_bytes=256 * KiB)
    direct, absorbed = tiering.compare()

    return {
        "spread_power_w": spread_power,
        "redirect": redirect,
        "asymmetric": asym_plan,
        "tiering_direct": direct,
        "tiering_absorbed": absorbed,
    }


def render(results):
    redirect = results["redirect"]
    asym = results["asymmetric"]
    blocks = [
        format_table(
            ["Policy", "Fleet power (W)", "Notes"],
            [
                [
                    "spread + shape",
                    results["spread_power_w"],
                    f"{N_DEVICES} active",
                ],
                [
                    "redirect + standby",
                    redirect.total_power_w,
                    redirect.describe(),
                ],
            ],
            title=(
                f"Write-only load ({OFFERED_WRITE / GiB:.0f} GiB/s) on "
                f"{N_DEVICES}x PM1743."
            ),
        ),
        "Asymmetric IO (mixed load): " + asym.describe(),
        "Tiering: " + results["tiering_direct"].describe(),
        "         " + results["tiering_absorbed"].describe(),
    ]
    return "\n\n".join(blocks)


def test_ablation_policies(reproduce):
    results = reproduce(run, render)
    # Redirection beats spreading for a consolidatable load.
    assert results["redirect"].total_power_w < results["spread_power_w"]
    # Asymmetric segregation saves power against the uniform baseline.
    assert results["asymmetric"].savings_w > 0
    # Absorption masks the spin-up stall.
    assert (
        results["tiering_absorbed"].burst_latency.max
        < results["tiering_direct"].burst_latency.max / 100
    )
