"""Engineering benchmark: validation overhead.

The validation subsystem promises **zero** cost when disabled: the
default path never imports ``repro.validate``, the rail pays one
``None`` test per draw update for the unattached audit hook, and
``ExecutionOptions(validate=False)`` adds no work to a sweep.  With
validation *on*, the post-hoc checkers read frozen results only -- so
the physics must be **bit-identical** either way; what grows is wall
time, and only by the checker pass itself.

Three rows: disabled baseline, enabled equivalence (bit-identity of
every physics float asserted against the disabled run), and the live
auditors (RailAudit + LiveAuditor wired in), which shadow every rail
update and are expected to cost more; that row is asserted only for
bit-identity, not budget.
"""

from repro._units import KiB, MiB
from repro.core.experiment import run_experiment
from repro.core.options import ExecutionOptions
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec
from repro.validate import live_validate


def _grid() -> SweepGrid:
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(64 * KiB, 256 * KiB),
        iodepths=(8, 64),
        base_job=JobSpec(
            pattern=IoPattern.RANDREAD,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
    )


def _fingerprints(results):
    return {
        point: (
            r.true_mean_power_w.hex(),
            r.power.mean_w.hex(),
            r.power.energy_j.hex(),
            r.throughput_bps.hex(),
        )
        for point, r in results.items()
    }


def test_baseline_validation_disabled(benchmark):
    """The default path: no checkers, no audit, no validate import."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(_grid(), ExecutionOptions(n_workers=1)),
        iterations=1,
        rounds=3,
    )
    assert len(outcome.results) == 4
    assert outcome.validation is None


def test_enabled_is_bit_identical(benchmark):
    """validate=True must change nothing but the report it returns."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(
            _grid(), ExecutionOptions(n_workers=1, validate=True)
        ),
        iterations=1,
        rounds=3,
    )
    assert outcome.validation is not None
    assert outcome.validation.ok, outcome.validation.render()
    baseline = sweep_outcome(_grid(), ExecutionOptions(n_workers=1))
    assert _fingerprints(outcome.results) == _fingerprints(baseline.results)


def test_live_audit_documented(benchmark):
    """Live auditors shadow every rail update: slower by design, still
    bit-identical physics."""
    config = _grid().config_for(next(iter(_grid().points())))
    result, report = benchmark.pedantic(
        lambda: live_validate(config), iterations=1, rounds=3
    )
    assert report.ok, report.render()
    bare = run_experiment(config)
    assert result.true_mean_power_w == bare.true_mean_power_w
    assert result.power.energy_j == bare.power.energy_j
    assert result.throughput_bps == bare.throughput_bps
