"""Engineering benchmark: parallel sweep scaling.

Not a paper figure -- this times the same fig10-style mechanism grid
executed sequentially and across a process pool, so the speedup (and any
regression in the parallel substrate) is visible next to the simulator
throughput numbers.  Equivalence of the two paths is asserted, not just
timed: parallel execution must reproduce the sequential results exactly.
"""

import os

from repro._units import KiB, MiB
from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec


def _grid() -> SweepGrid:
    # A fig10-scale slice: 4 chunk sizes x 3 queue depths on SSD2.
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDWRITE,),
        block_sizes=(16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB),
        iodepths=(1, 8, 64),
        base_job=JobSpec(
            pattern=IoPattern.RANDWRITE,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
    )


def test_sequential_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: run_sweep(_grid(), n_workers=1), iterations=1, rounds=3
    )
    assert len(results) == 12


def test_parallel_sweep(benchmark):
    workers = min(4, os.cpu_count() or 1)
    results = benchmark.pedantic(
        lambda: run_sweep(_grid(), n_workers=workers), iterations=1, rounds=3
    )
    assert len(results) == 12
    # Point-for-point equivalence with the sequential path.
    sequential = run_sweep(_grid(), n_workers=1)
    assert list(results) == list(sequential)
    for point, result in results.items():
        assert result.mean_power_w == sequential[point].mean_power_w
        assert result.throughput_bps == sequential[point].throughput_bps
