"""Engineering benchmark: fleet runner scaling and zero-cost gate.

Not a paper figure -- this times ``repro.fleet.cluster.run_fleet`` over
growing device counts (events/sec and wall-clock per fleet size) and, in
``--check`` mode, asserts the properties CI cares about:

1. **Fleet-off is zero-cost.**  Two teeth:

   - a subprocess with a poisoned ``repro.fleet`` import proves the
     single-device path (``run_experiment`` + a pooled batch) never
     loads the cluster layer, and
   - a plain experiment fingerprint is bit-identical before and after a
     fleet run in the same process -- the fleet leaves no global state
     behind that could perturb non-fleet users.

2. **Parallel execution is equivalent.**  The same fleet spec run with
   one worker and a process pool must produce identical digests.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_fleet_scaling          # table
    PYTHONPATH=src python -m benchmarks.bench_fleet_scaling --check  # gate

``--check`` exits 0 when every assertion holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")

#: Device counts for the scaling sweep (SSD-only mix keeps wall short).
DEVICE_COUNTS = (2, 4, 8)

SSD_MIX = ("ssd1", "ssd2", "ssd3")

#: Subprocess body proving the non-fleet path never imports repro.fleet.
_POISON_SCRIPT = """
import sys
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.options import ExecutionOptions
from repro.core.parallel import run_configs
from repro.iogen.spec import IoPattern, JobSpec

# The facade (repro/__init__) re-exports repro.fleet eagerly.  Evict it
# and poison any reload: the execution path itself must never come back
# for it.
for name in [m for m in sys.modules if m.startswith("repro.fleet")]:
    del sys.modules[name]


class Poison:
    def find_spec(self, name, path=None, target=None):
        if name.startswith("repro.fleet"):
            raise ImportError("repro.fleet loaded on non-fleet path: " + name)
        return None


sys.meta_path.insert(0, Poison())

config = ExperimentConfig(
    device="ssd3",
    job=JobSpec(IoPattern.RANDREAD, block_size=16384, iodepth=4,
                runtime_s=0.005, size_limit_bytes=2 * 1024 * 1024),
)
run_experiment(config)
run_configs([config], ExecutionOptions(n_workers=1))
assert not any(m.startswith("repro.fleet") for m in sys.modules)
print("clean")
"""


def _tiny_scale():
    from repro._units import MiB
    from repro.studies.common import StudyScale

    return StudyScale(ssd_runtime_s=0.02, ssd_bytes=12 * MiB)


def _spec(n_devices: int, seed: int = 7):
    from repro.fleet.cluster import FleetSpec

    return FleetSpec.sized(
        n_devices,
        mix=SSD_MIX,
        epochs=3,
        tenants=4 * n_devices,
        skew=1.0,
        seed=seed,
    )


def _plain_fingerprint() -> str:
    """Full-precision fingerprint of a fixed single-device experiment."""
    from repro.core.experiment import ExperimentConfig, run_experiment
    from repro.iogen.spec import IoPattern, JobSpec

    config = ExperimentConfig(
        device="ssd3",
        job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=16384,
            iodepth=4,
            runtime_s=0.01,
            size_limit_bytes=4 * 1024 * 1024,
        ),
        seed=5,
    )
    result = run_experiment(config)
    lat = result.latency()
    return repr(
        (
            result.mean_power_w,
            result.true_mean_power_w,
            result.throughput_bps,
            lat.mean,
            lat.p99,
        )
    )


def scaling_sweep(n_workers: int = 1) -> list:
    """Time run_fleet at each device count; returns row dicts."""
    from repro.fleet.cluster import run_fleet

    scale = _tiny_scale()
    rows = []
    for n in DEVICE_COUNTS:
        t0 = time.perf_counter()
        result = run_fleet(_spec(n), scale, n_workers=n_workers)
        wall_s = time.perf_counter() - t0
        ios = result.metrics["fleet.ios"]["all"]["value"]
        rows.append(
            {
                "devices": n,
                "wall_s": wall_s,
                "ios": ios,
                "ios_per_s": ios / wall_s,
                "digest": result.digest(),
                "ok": result.ok,
            }
        )
    return rows


def zero_cost_failures() -> list:
    """The fleet-off ≡ zero-cost assertions; returns failure strings."""
    from repro.fleet.cluster import run_fleet

    failures = []

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _POISON_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0 or proc.stdout.strip() != "clean":
        failures.append(
            "non-fleet path imported repro.fleet:\n" + proc.stderr.strip()
        )

    before = _plain_fingerprint()
    run_fleet(_spec(2), _tiny_scale())
    after = _plain_fingerprint()
    if before != after:
        failures.append(
            "plain experiment changed after a fleet run: "
            f"{before} != {after}"
        )
    return failures


def parallel_equivalence_failures() -> list:
    """Sequential and pooled fleet runs must agree bit-for-bit."""
    from repro.fleet.cluster import run_fleet

    scale = _tiny_scale()
    sequential = run_fleet(_spec(4), scale, n_workers=1)
    pooled = run_fleet(_spec(4), scale, n_workers=min(4, os.cpu_count() or 1))
    if sequential.digest() != pooled.digest():
        return [
            "parallel fleet diverged from sequential: "
            f"{sequential.digest()} != {pooled.digest()}"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the zero-cost and equivalence gates; exit 1 on failure",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool size for the scaling sweep (default 1)",
    )
    args = parser.parse_args(argv)

    rows = scaling_sweep(n_workers=args.workers)
    print(f"{'devices':>8} {'wall s':>8} {'ios':>8} {'ios/s':>10}  digest")
    for row in rows:
        print(
            f"{row['devices']:>8} {row['wall_s']:>8.3f} {row['ios']:>8} "
            f"{row['ios_per_s']:>10.0f}  {row['digest']}"
        )

    if not args.check:
        return 0

    failures = []
    if not all(row["ok"] for row in rows):
        failures.append("a scaling-sweep fleet run failed validation")
    if not all(row["ios"] > 0 for row in rows):
        failures.append("a scaling-sweep fleet run completed zero I/Os")
    failures += zero_cost_failures()
    failures += parallel_equivalence_failures()

    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        return 1
    print("check: fleet-off zero-cost and parallel equivalence hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
