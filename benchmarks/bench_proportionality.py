"""Extension: power proportionality vs power adaptivity (footnote 1)."""

from repro.studies import proportionality


def test_power_proportionality(reproduce):
    curves = reproduce(proportionality.run, proportionality.render)
    by_device = {c.device: c for c in curves}
    for curve in curves:
        # Power rises monotonically-ish with load and idles above zero.
        assert curve.power_w[-1] > curve.power_w[0]
        assert 0.2 <= curve.idle_fraction <= 0.95
        assert 0.0 < curve.proportionality_index < 1.0
    # The HDD is the least proportional device (constant rotation).
    hdd_index = by_device["hdd"].proportionality_index
    assert hdd_index == min(c.proportionality_index for c in curves)
