"""Continuous kernel benchmark: ``python -m benchmarks.run``.

Runs two pinned grids through :func:`repro.core.experiment.run_experiment`:

- the **exact micro-grid** (randread / randwrite / seqwrite x 2 devices
  x 2 queue depths) that every prior BENCH_<n> measured, reporting wall
  seconds, kernel events/sec and peak RSS per point; and
- the **steady-heavy fastpath grid** (long random reads on the three
  fastpath-eligible SSDs) run exact vs ``fastpath=splice`` and
  ``fastpath=batch``, reporting *effective* events/sec -- processed
  plus analytically fast-forwarded events over wall time -- and the
  speedup of each mode against the exact kernel on the same configs.

Results land in a machine-readable ``BENCH_<n>.json`` at the repo root so
successive PRs accumulate a performance trajectory, and ``--check`` turns
the run into a regression gate against the committed
``benchmarks/baseline.json``.  The gate compares every benchmark it has a
baseline number for -- the exact aggregate, each exact grid point, and
each fastpath mode's effective aggregate -- and a failure names *all*
regressed benchmarks, not just the first.

Usage::

    python -m benchmarks.run                     # run, write BENCH_<n>.json
    python -m benchmarks.run --check             # also gate vs baseline
    python -m benchmarks.run --update-baseline   # re-pin the baseline

The grids, seeds and stop conditions are pinned: changing them
invalidates the trajectory, so treat them like golden fixtures.
Baselines are machine-relative -- re-pin with ``--update-baseline`` when
moving to new hardware, in the same commit that explains why.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Version stamp of the emitted trajectory file (matches the PR number).
BENCH_INDEX = 10

BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline.json"

#: Regression gate: fail --check when an *aggregate* events/sec figure
#: drops by more than this fraction below the committed baseline.
REGRESSION_TOLERANCE = 0.10

#: Individual grid points are ~100 ms of wall time and correspondingly
#: noisier than the aggregates; they gate at a wider tolerance so one
#: slow scheduler tick does not fail CI while a real per-point cliff
#: (e.g. an HDD-only regression invisible in the SSD-dominated
#: aggregate) still does.
POINT_REGRESSION_TOLERANCE = 0.25

#: The pinned exact micro-grid.
GRID_DEVICES = ("ssd2", "hdd")
GRID_PATTERNS = ("randread", "randwrite", "write")
GRID_IODEPTHS = (4, 16)
GRID_BLOCK_SIZE = 64 * 1024
GRID_RUNTIME_S = 0.02
GRID_SIZE_LIMIT = 8 * 1024 * 1024
GRID_SEED = 11

#: The pinned steady-heavy fastpath grid: long eligible random reads on
#: the wave-free SSDs, where most of the run sits in the quasi-steady
#: window the paper's Table 1 / Fig. 10 measurements average over.
FASTPATH_DEVICES = ("ssd3", "860evo", "pm1743")
FASTPATH_MODES = ("splice", "batch")
FASTPATH_PATTERN = "randread"
FASTPATH_BLOCK_SIZE = 64 * 1024
FASTPATH_IODEPTH = 8
FASTPATH_RUNTIME_S = 0.5
FASTPATH_SIZE_LIMIT = 4096 * 1024 * 1024
FASTPATH_SEED = 11


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak * 1024 if sys.platform != "darwin" else peak


def machine_metadata() -> dict:
    """The hardware/runtime context a baseline number is relative to."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def grid_configs():
    from repro.core.experiment import ExperimentConfig
    from repro.iogen.spec import IoPattern, JobSpec

    configs = []
    for device in GRID_DEVICES:
        for pattern in GRID_PATTERNS:
            for iodepth in GRID_IODEPTHS:
                configs.append(
                    ExperimentConfig(
                        device=device,
                        job=JobSpec(
                            pattern=IoPattern(pattern),
                            block_size=GRID_BLOCK_SIZE,
                            iodepth=iodepth,
                            runtime_s=GRID_RUNTIME_S,
                            size_limit_bytes=GRID_SIZE_LIMIT,
                        ),
                        seed=GRID_SEED,
                    )
                )
    return configs


def _best_run(config, repeats: int) -> dict:
    """Best-of-``repeats`` execution of one config; effective accounting."""
    from repro.core.experiment import run_experiment
    from repro.obs.profile import RunProfiler

    best = None
    for _ in range(max(1, repeats)):
        profiler = RunProfiler()
        t0 = time.perf_counter()
        run_experiment(config, profiler=profiler)
        wall_s = time.perf_counter() - t0
        profile = profiler.points[-1]
        sample = {
            "label": config.describe(),
            "wall_s": wall_s,
            "sim_events": profile.sim_events,
            "sim_events_fast_forwarded": profile.sim_events_fast_forwarded,
            "sim_time_s": profile.sim_time_s,
            "events_per_second": profile.sim_events / wall_s,
            "effective_events_per_second": (
                (profile.sim_events + profile.sim_events_fast_forwarded)
                / wall_s
            ),
        }
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    return best


def run_grid(repeats: int) -> dict:
    """Execute the pinned exact micro-grid; returns its report section."""
    points = [_best_run(config, repeats) for config in grid_configs()]
    total_wall = sum(p["wall_s"] for p in points)
    total_events = sum(p["sim_events"] for p in points)
    return {
        "bench_index": BENCH_INDEX,
        "grid": {
            "devices": list(GRID_DEVICES),
            "patterns": list(GRID_PATTERNS),
            "iodepths": list(GRID_IODEPTHS),
            "block_size": GRID_BLOCK_SIZE,
            "runtime_s": GRID_RUNTIME_S,
            "size_limit_bytes": GRID_SIZE_LIMIT,
            "seed": GRID_SEED,
            "repeats": repeats,
        },
        "machine": machine_metadata(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "points": points,
        "total_wall_s": total_wall,
        "total_sim_events": total_events,
        "events_per_second": total_events / total_wall if total_wall else 0.0,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def run_fastpath_grid(repeats: int) -> dict:
    """Exact vs fastpath on the steady-heavy grid; per-mode speedups."""
    import dataclasses

    from repro.core.experiment import ExperimentConfig
    from repro.iogen.spec import IoPattern, JobSpec
    from repro.sim.fastpath import FastpathOptions

    exact_runs = {}
    points = []
    for device in FASTPATH_DEVICES:
        exact_config = ExperimentConfig(
            device=device,
            job=JobSpec(
                pattern=IoPattern(FASTPATH_PATTERN),
                block_size=FASTPATH_BLOCK_SIZE,
                iodepth=FASTPATH_IODEPTH,
                runtime_s=FASTPATH_RUNTIME_S,
                size_limit_bytes=FASTPATH_SIZE_LIMIT,
            ),
            seed=FASTPATH_SEED,
        )
        exact_runs[device] = _best_run(exact_config, repeats)
        for mode in FASTPATH_MODES:
            fast_config = dataclasses.replace(
                exact_config, fastpath=FastpathOptions(mode=mode)
            )
            fast = _best_run(fast_config, repeats)
            exact = exact_runs[device]
            points.append(
                {
                    "label": f"{device} {FASTPATH_PATTERN} {mode}",
                    "device": device,
                    "mode": mode,
                    "exact_wall_s": exact["wall_s"],
                    "exact_events_per_second": exact["events_per_second"],
                    "wall_s": fast["wall_s"],
                    "sim_events": fast["sim_events"],
                    "sim_events_fast_forwarded": fast[
                        "sim_events_fast_forwarded"
                    ],
                    "effective_events_per_second": fast[
                        "effective_events_per_second"
                    ],
                    "speedup": (
                        fast["effective_events_per_second"]
                        / exact["events_per_second"]
                    ),
                }
            )

    modes = {}
    for mode in FASTPATH_MODES:
        rows = [p for p in points if p["mode"] == mode]
        fast_events = sum(
            p["sim_events"] + p["sim_events_fast_forwarded"] for p in rows
        )
        fast_wall = sum(p["wall_s"] for p in rows)
        exact_events = sum(e["sim_events"] for e in exact_runs.values())
        exact_wall = sum(e["wall_s"] for e in exact_runs.values())
        effective = fast_events / fast_wall if fast_wall else 0.0
        exact_eps = exact_events / exact_wall if exact_wall else 0.0
        modes[mode] = {
            "wall_s": fast_wall,
            "effective_events_per_second": effective,
            "exact_events_per_second": exact_eps,
            "speedup": effective / exact_eps if exact_eps else 0.0,
        }

    return {
        "grid": {
            "devices": list(FASTPATH_DEVICES),
            "modes": list(FASTPATH_MODES),
            "pattern": FASTPATH_PATTERN,
            "block_size": FASTPATH_BLOCK_SIZE,
            "iodepth": FASTPATH_IODEPTH,
            "runtime_s": FASTPATH_RUNTIME_S,
            "size_limit_bytes": FASTPATH_SIZE_LIMIT,
            "seed": FASTPATH_SEED,
            "repeats": repeats,
        },
        "points": points,
        "modes": modes,
        # The headline number for the steady-state-heavy claim: the
        # analytic fast-forward's aggregate effective speedup.
        "steady_speedup": modes["splice"]["speedup"],
    }


def _gate(name: str, current: float, base: float, tolerance: float):
    """One regression verdict; None when within tolerance."""
    floor = base * (1.0 - tolerance)
    if current >= floor:
        return None
    return (
        f"{name}: current {current:,.6g} vs baseline {base:,.6g} "
        f"({current / base:.2f}x, floor {floor:,.6g})"
    )


def check_against_baseline(report: dict, baseline: dict | None = None):
    """Gate ``report`` against the committed baseline.

    Returns ``(ok, message)``.  Every benchmark the baseline has a
    number for is compared -- the exact aggregate, each exact grid
    point, and each fastpath mode's effective aggregate -- and the
    failure message names *all* regressed benchmarks.  A missing
    baseline is a failure: the gate must never silently pass because
    someone forgot to commit the pin.
    """
    if baseline is None:
        if not BASELINE_PATH.exists():
            return False, (
                f"no baseline at {BASELINE_PATH}; run "
                "`python -m benchmarks.run --update-baseline` and commit it"
            )
        baseline = json.loads(BASELINE_PATH.read_text())

    failures = []
    verdict = _gate(
        "aggregate events/sec",
        report["events_per_second"],
        baseline["events_per_second"],
        REGRESSION_TOLERANCE,
    )
    if verdict:
        failures.append(verdict)

    base_points = {p["label"]: p for p in baseline.get("points", ())}
    for point in report["points"]:
        base = base_points.get(point["label"])
        if base is None:
            continue
        verdict = _gate(
            point["label"],
            point["events_per_second"],
            base["events_per_second"],
            POINT_REGRESSION_TOLERANCE,
        )
        if verdict:
            failures.append(verdict)

    base_modes = baseline.get("fastpath", {}).get("modes", {})
    for mode, stats in report.get("fastpath", {}).get("modes", {}).items():
        base = base_modes.get(mode)
        if base is None:
            continue
        # Gate the *speedup*, not the absolute effective rate: exact and
        # accelerated kernels run in the same process, so their ratio
        # cancels machine noise that moves both absolute figures.
        verdict = _gate(
            f"fastpath {mode} speedup",
            stats["speedup"],
            base["speedup"],
            POINT_REGRESSION_TOLERANCE,
        )
        if verdict:
            failures.append(verdict)

    if failures:
        lines = "\n".join(f"  - {f}" for f in failures)
        return False, (
            f"REGRESSION in {len(failures)} benchmark(s):\n{lines}"
        )
    return True, (
        f"ok: aggregate {report['events_per_second']:,.0f} ev/s vs baseline "
        f"{baseline['events_per_second']:,.0f} "
        f"({report['events_per_second'] / baseline['events_per_second']:.2f}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.run", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per grid point; the best wall time is kept (default 3)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) listing every benchmark that regressed vs "
        "the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write this run as the new {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"),
        help="path of the machine-readable report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = run_grid(args.repeats)
    for point in report["points"]:
        print(
            f"{point['label']:<42} {point['wall_s'] * 1e3:8.1f} ms "
            f"{point['events_per_second']:12,.0f} ev/s"
        )
    print(
        f"{'TOTAL':<42} {report['total_wall_s'] * 1e3:8.1f} ms "
        f"{report['events_per_second']:12,.0f} ev/s  "
        f"peak RSS {report['peak_rss_bytes'] / 2**20:.0f} MiB"
    )

    report["fastpath"] = run_fastpath_grid(args.repeats)
    for point in report["fastpath"]["points"]:
        print(
            f"{point['label']:<42} {point['wall_s'] * 1e3:8.1f} ms "
            f"{point['effective_events_per_second']:12,.0f} eff-ev/s "
            f"{point['speedup']:6.2f}x"
        )
    for mode, stats in report["fastpath"]["modes"].items():
        print(
            f"{'FASTPATH ' + mode.upper():<42} "
            f"{stats['wall_s'] * 1e3:8.1f} ms "
            f"{stats['effective_events_per_second']:12,.0f} eff-ev/s "
            f"{stats['speedup']:6.2f}x"
        )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        report["baseline_events_per_second"] = baseline["events_per_second"]
        report["speedup_vs_baseline"] = (
            report["events_per_second"] / baseline["events_per_second"]
        )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"report -> {output}")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(report, indent=1) + "\n")
        print(f"baseline -> {BASELINE_PATH}")

    if args.check:
        ok, message = check_against_baseline(report)
        print(message)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
