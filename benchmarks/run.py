"""Continuous kernel benchmark: ``python -m benchmarks.run``.

Runs a pinned micro-grid (randread / randwrite / seqwrite x 2 devices x
2 queue depths) through :func:`repro.core.experiment.run_experiment` and
reports, per point and in aggregate:

- wall-clock seconds (best of ``--repeats`` runs, first run discarded as
  warmup when repeats allow),
- kernel events per second (the engine's processed-event count over wall
  time -- the simulator's native throughput metric),
- peak RSS of the process.

Results land in a machine-readable ``BENCH_<n>.json`` at the repo root so
successive PRs accumulate a performance trajectory, and ``--check`` turns
the run into a regression gate: aggregate events/sec more than 10 % below
the committed ``benchmarks/baseline.json`` fails with exit code 1.

Usage::

    python -m benchmarks.run                     # run, write BENCH_<n>.json
    python -m benchmarks.run --check             # also gate vs baseline
    python -m benchmarks.run --update-baseline   # re-pin the baseline

The grid, seeds and stop conditions are pinned: changing them invalidates
the trajectory, so treat them like golden fixtures.  Baselines are
machine-relative -- re-pin with ``--update-baseline`` when moving to new
hardware, in the same commit that explains why.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Version stamp of the emitted trajectory file (matches the PR number).
BENCH_INDEX = 4

BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline.json"

#: Regression gate: fail --check when aggregate events/sec drops by more
#: than this fraction below the committed baseline.
REGRESSION_TOLERANCE = 0.10

#: The pinned micro-grid.
GRID_DEVICES = ("ssd2", "hdd")
GRID_PATTERNS = ("randread", "randwrite", "write")
GRID_IODEPTHS = (4, 16)
GRID_BLOCK_SIZE = 64 * 1024
GRID_RUNTIME_S = 0.02
GRID_SIZE_LIMIT = 8 * 1024 * 1024
GRID_SEED = 11


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak * 1024 if sys.platform != "darwin" else peak


def grid_configs():
    from repro.core.experiment import ExperimentConfig
    from repro.iogen.spec import IoPattern, JobSpec

    configs = []
    for device in GRID_DEVICES:
        for pattern in GRID_PATTERNS:
            for iodepth in GRID_IODEPTHS:
                configs.append(
                    ExperimentConfig(
                        device=device,
                        job=JobSpec(
                            pattern=IoPattern(pattern),
                            block_size=GRID_BLOCK_SIZE,
                            iodepth=iodepth,
                            runtime_s=GRID_RUNTIME_S,
                            size_limit_bytes=GRID_SIZE_LIMIT,
                        ),
                        seed=GRID_SEED,
                    )
                )
    return configs


def run_grid(repeats: int) -> dict:
    """Execute the pinned grid; returns the benchmark report dict."""
    from repro.core.experiment import run_experiment
    from repro.obs.profile import RunProfiler

    points = []
    for config in grid_configs():
        best = None
        for rep in range(max(1, repeats)):
            profiler = RunProfiler()
            t0 = time.perf_counter()
            run_experiment(config, profiler=profiler)
            wall_s = time.perf_counter() - t0
            profile = profiler.points[-1]
            sample = {
                "label": config.describe(),
                "wall_s": wall_s,
                "sim_events": profile.sim_events,
                "sim_time_s": profile.sim_time_s,
                "events_per_second": profile.sim_events / wall_s,
            }
            if best is None or sample["wall_s"] < best["wall_s"]:
                best = sample
        points.append(best)

    total_wall = sum(p["wall_s"] for p in points)
    total_events = sum(p["sim_events"] for p in points)
    return {
        "bench_index": BENCH_INDEX,
        "grid": {
            "devices": list(GRID_DEVICES),
            "patterns": list(GRID_PATTERNS),
            "iodepths": list(GRID_IODEPTHS),
            "block_size": GRID_BLOCK_SIZE,
            "runtime_s": GRID_RUNTIME_S,
            "size_limit_bytes": GRID_SIZE_LIMIT,
            "seed": GRID_SEED,
            "repeats": repeats,
        },
        "python": platform.python_version(),
        "platform": platform.platform(),
        "points": points,
        "total_wall_s": total_wall,
        "total_sim_events": total_events,
        "events_per_second": total_events / total_wall if total_wall else 0.0,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def check_against_baseline(report: dict) -> tuple[bool, str]:
    """Gate ``report`` against the committed baseline.

    Returns ``(ok, message)``; missing baseline is a failure -- the gate
    must never silently pass because someone forgot to commit the pin.
    """
    if not BASELINE_PATH.exists():
        return False, (
            f"no baseline at {BASELINE_PATH}; run "
            "`python -m benchmarks.run --update-baseline` and commit it"
        )
    baseline = json.loads(BASELINE_PATH.read_text())
    base_eps = baseline["events_per_second"]
    current = report["events_per_second"]
    floor = base_eps * (1.0 - REGRESSION_TOLERANCE)
    ratio = current / base_eps if base_eps else float("inf")
    message = (
        f"events/sec: current {current:,.0f} vs baseline {base_eps:,.0f} "
        f"({ratio:.2f}x, floor {floor:,.0f})"
    )
    if current < floor:
        return False, f"REGRESSION: {message}"
    return True, f"ok: {message}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.run", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per grid point; the best wall time is kept (default 3)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if events/sec regressed >10%% vs the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write this run as the new {BASELINE_PATH.name}",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / f"BENCH_{BENCH_INDEX}.json"),
        help="path of the machine-readable report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = run_grid(args.repeats)
    for point in report["points"]:
        print(
            f"{point['label']:<42} {point['wall_s'] * 1e3:8.1f} ms "
            f"{point['events_per_second']:12,.0f} ev/s"
        )
    print(
        f"{'TOTAL':<42} {report['total_wall_s'] * 1e3:8.1f} ms "
        f"{report['events_per_second']:12,.0f} ev/s  "
        f"peak RSS {report['peak_rss_bytes'] / 2**20:.0f} MiB"
    )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        report["baseline_events_per_second"] = baseline["events_per_second"]
        report["speedup_vs_baseline"] = (
            report["events_per_second"] / baseline["events_per_second"]
        )

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"report -> {output}")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(report, indent=1) + "\n")
        print(f"baseline -> {BASELINE_PATH}")

    if args.check:
        ok, message = check_against_baseline(report)
        print(message)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
