"""Regenerates paper Figure 10: the power-throughput model.

Includes the section-3.3 worked example (SSD1 under a 20 % power cut) and
the headline dynamic-range / throughput-floor numbers.
"""

from repro.studies import fig10


def test_fig10_power_throughput_model(reproduce):
    result = reproduce(fig10.run, fig10.render)
    assert 0.40 <= result.dynamic_range("ssd2") <= 0.75  # paper: 59.4 %
    assert result.throughput_floor("hdd") <= 0.10  # paper: ~4 %
    assert result.ssd1_plan.curtailed_bps > 0
