"""Engineering benchmark: control-plane fault-channel overhead.

The control-plane hardening work makes three zero-cost promises:

1. **Inert specs are free.**  A ``FaultPlan`` whose sensor/actuator
   specs are constructed but all-default (no bias, unit gain, no
   dropout/freeze windows, no drops/delay) must reproduce the
   no-injector policy sweep **bit-identically**: the seams route through
   :mod:`repro.faults.control` but distort nothing and draw no RNG.
2. **The metered sense path is the legacy path.**  ``sense="meter"``
   with no sensor spec reads the same rail-trace window the legacy
   ``sense="rail"`` code read, so a clean metered run is bit-identical
   to a clean rail run.
3. **Watchdog-off never loads the chaos machinery.**  A policy run
   without a watchdog spec must not import ``repro.policy.watchdog``,
   and nothing outside ``repro chaos`` ever imports
   ``repro.faults.campaign`` (proved here by module eviction).
"""

import sys
from dataclasses import replace

from repro._units import KiB, MiB
from repro.core.options import ExecutionOptions
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.faults import ActuatorFaultSpec, FaultPlan, SensorFaultSpec
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy import BudgetSchedule, PolicySpec


def _grid(faults=None) -> SweepGrid:
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDWRITE,),
        block_sizes=(256 * KiB,),
        iodepths=(8, 64),
        base_job=JobSpec(
            pattern=IoPattern.RANDWRITE,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
        faults=faults,
    )


def _policy_spec(sense: str = "rail") -> PolicySpec:
    return PolicySpec(
        kind="feedback",
        budget=BudgetSchedule.step(high_w=14.0, low_w=10.0, period_s=0.025),
        interval_s=1.5e-3,
        window_s=3e-3,
        sense=sense,
    )


#: Constructed-but-all-default specs: every fault site short-circuits.
INERT_PLAN = FaultPlan(sensor=SensorFaultSpec(), actuator=ActuatorFaultSpec())


def _fingerprints(results):
    return {
        point: (
            r.true_mean_power_w.hex(),
            r.power.mean_w.hex(),
            r.throughput_bps.hex(),
            r.policy.decisions,
            r.policy.samples,
        )
        for point, r in results.items()
    }


def _run(faults=None, sense="rail"):
    return sweep_outcome(
        _grid(faults),
        ExecutionOptions(n_workers=1, policy=_policy_spec(sense)),
    )


def test_baseline_rail_sense(benchmark):
    """The legacy path: rail-window sensing, no injector, no watchdog."""
    outcome = benchmark.pedantic(lambda: _run(), iterations=1, rounds=3)
    assert len(outcome.results) == 2
    for result in outcome.results.values():
        assert result.policy is not None
        assert result.policy.degraded_fraction == 0.0


def test_meter_sense_bit_identical(benchmark):
    """A clean ``sense="meter"`` run must match ``sense="rail"`` bit for
    bit: the SensedPower seam reads the identical rail-trace window."""
    outcome = benchmark.pedantic(
        lambda: _run(sense="meter"), iterations=1, rounds=3
    )
    baseline = _run()
    assert _fingerprints(outcome.results) == _fingerprints(baseline.results)


def test_inert_control_plane_bit_identical(benchmark):
    """All-default sensor/actuator specs through the metered seam must
    match the no-injector run bit for bit, at indistinguishable cost."""
    outcome = benchmark.pedantic(
        lambda: _run(faults=INERT_PLAN, sense="meter"),
        iterations=1,
        rounds=3,
    )
    baseline = _run()
    assert _fingerprints(outcome.results) == _fingerprints(baseline.results)
    for result in outcome.results.values():
        assert result.faults.total == 0


def test_watchdog_off_imports_nothing(benchmark):
    """Evict the watchdog and campaign modules, run a watchdog-off
    policy sweep, and prove neither was re-imported: the lazy seams are
    the zero-cost mechanism."""
    evicted = ("repro.policy.watchdog", "repro.faults.campaign")

    def _evict_and_run():
        for mod in evicted:
            sys.modules.pop(mod, None)
        return _run()

    outcome = benchmark.pedantic(_evict_and_run, iterations=1, rounds=3)
    for mod in evicted:
        assert mod not in sys.modules
    for result in outcome.results.values():
        assert result.policy.watchdog_trips == 0


def test_watchdog_armed_documented(benchmark):
    """With the watchdog armed on a clean run it must never trip; the
    row documents the cost of the per-tick health checks."""
    from repro.policy import WatchdogSpec

    spec = replace(
        _policy_spec("meter"),
        watchdog=WatchdogSpec(stale_after_s=3.0 * 1.5e-3),
    )
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(
            _grid(), ExecutionOptions(n_workers=1, policy=spec)
        ),
        iterations=1,
        rounds=3,
    )
    for result in outcome.results.values():
        assert result.policy.watchdog_trips == 0
        assert result.policy.degraded_fraction == 0.0
