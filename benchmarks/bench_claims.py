"""Checks the paper's headline claims (sections 1-3) against the simulation."""

from repro.studies import claims


def test_headline_claims(reproduce):
    results = reproduce(claims.run, claims.render)
    failing = [c.claim_id for c in results if not c.holds]
    assert not failing, f"claims out of band: {failing}"
