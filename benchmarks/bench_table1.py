"""Regenerates paper Table 1: evaluated devices and measured power ranges."""

from repro.studies import table1


def test_table1_device_power_ranges(reproduce):
    rows = reproduce(table1.run, table1.render)
    assert len(rows) == 4
