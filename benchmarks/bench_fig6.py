"""Regenerates paper Figure 6: SSD2 random-read latency under states (QD1)."""

from repro.studies import fig6


def test_fig6_read_latency_flat(reproduce):
    result = reproduce(fig6.run, fig6.render)
    assert result.worst_deviation < 0.05  # paper: no noticeable difference
