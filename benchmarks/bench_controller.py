"""Extension: the online power-adaptive controller under demand response.

The closed-loop system the paper motivates: a fleet of simulated SSD2
devices serves an open-loop write load while the facility budget dips 32 %
and recovers.  The controller (feedback over measured rail power, walking
NVMe power states) must keep every budget segment compliant; the workload
records the QoS price.
"""

from repro._units import GiB
from repro.core.controller import BudgetSignal, run_demand_response


def run():
    return run_demand_response(
        n_devices=2,
        offered_load_bps=int(4.8 * GiB),
        duration_s=0.6,
        budget=BudgetSignal(((0.0, 30.0), (0.2, 20.5), (0.4, 30.0))),
    )


def render(result):
    stats = result.workload.latency_stats()
    lines = [
        "Demand-response tracking (2x SSD2, 4.8 GiB/s offered writes):",
        result.describe(),
        (
            f"  workload: {len(result.workload.records)} completions, "
            f"{result.workload.shed} shed, p50 {stats.p50 * 1e3:.2f} ms, "
            f"p99 {stats.p99 * 1e3:.2f} ms"
        ),
    ]
    lines.extend(f"    {action}" for action in result.actions)
    return "\n".join(lines)


def test_demand_response_tracking(reproduce):
    result = reproduce(run, render)
    assert result.fully_compliant
    # The controller actually did something, and undid it afterwards.
    assert any("ps2" in a.action for a in result.actions)
    assert any(a.action == "ps0" for a in result.actions if a.time > 0.4)
