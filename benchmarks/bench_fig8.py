"""Regenerates paper Figure 8: random-write power/throughput vs chunk size."""

from repro.studies import fig8


def test_fig8_chunk_size_shaping(reproduce):
    result = reproduce(fig8.run, fig8.render)
    for device in ("ssd1", "ssd2"):
        assert result.power_saving_small_chunks(device) > 0.10
        assert result.throughput_loss_small_chunks(device) > 0.25
