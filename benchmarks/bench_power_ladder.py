"""Extension: the full HDD power ladder (EPC idle conditions + standby).

Measures each rung of the modelled Exos drive's power ladder on real
simulated hardware -- settled power and first-IO recovery latency -- the
menu a power-aware redirection policy chooses from (deeper rung = bigger
saving = longer wake).
"""

from repro._units import KiB
from repro.core.reporting import format_table
from repro.devices.base import IOKind, IORequest
from repro.devices.catalog import build_device
from repro.devices.hdd_drive import IdleCondition
from repro.sim.engine import Engine


def _measure_rung(configure):
    """Returns (settled watts, first-IO latency) for one ladder rung."""
    engine = Engine()
    hdd = build_device(engine, "hdd")
    configure(engine, hdd)
    t0 = engine.now
    engine.run(until=t0 + 0.5)
    watts = hdd.rail.trace.mean(t0 + 0.2, t0 + 0.5)
    done = hdd.submit(IORequest(IOKind.READ, 1 << 30, 4 * KiB))
    while not done.processed:
        engine.step()
    return watts, done.value.latency


def run():
    def idle_a(engine, hdd):
        pass

    def idle_b(engine, hdd):
        hdd.set_idle_condition(IdleCondition.IDLE_B)

    def idle_c(engine, hdd):
        hdd.set_idle_condition(IdleCondition.IDLE_C)

    def standby(engine, hdd):
        proc = engine.process(hdd.enter_standby())
        while proc.is_alive:
            engine.step()

    rungs = [
        ("idle_a (full idle)", idle_a),
        ("idle_b (heads unloaded)", idle_b),
        ("idle_c (+ low rpm)", idle_c),
        ("standby_z (spun down)", standby),
    ]
    return [(name,) + _measure_rung(fn) for name, fn in rungs]


def render(rows):
    return format_table(
        ["Condition", "Power (W)", "First-IO latency (s)"],
        [[name, watts, latency] for name, watts, latency in rows],
        title="HDD power ladder: EPC idle conditions and standby.",
    )


def test_hdd_power_ladder(reproduce):
    rows = reproduce(run, render)
    watts = [w for __, w, __ in rows]
    latencies = [lat for __, __, lat in rows]
    # Monotone trade: each rung saves more power and costs more recovery.
    assert watts == sorted(watts, reverse=True)
    assert latencies == sorted(latencies)
    # Endpoints match the paper's idle/standby figures.
    assert abs(watts[0] - 3.76) < 0.05
    assert abs(watts[-1] - 1.10) < 0.05
