"""Ablation: rollout topology for power-adaptive control (section 4.1).

Compares the paper's prescribed *distributed, breaker-safe* rollout
against the naive alternative -- concentrating the whole test deployment
in one oversubscribed domain -- under a fully correlated control failure.
"""

from repro.core.reporting import format_table
from repro.core.safety import DeviceGroup, PowerDomain, RolloutPlanner


def _safe_domain(name):
    """A domain provisioned so all-max draw fits the breaker."""
    return PowerDomain(
        name,
        breaker_limit_w=130.0,
        groups=(DeviceGroup(count=8, max_power_w=15.0, adaptive_power_w=8.0),),
    )


def _oversubscribed_domain():
    """Provisioned against *adaptive* draw: all-max exceeds the breaker."""
    return PowerDomain(
        "oversub",
        breaker_limit_w=100.0,
        groups=(DeviceGroup(count=8, max_power_w=15.0, adaptive_power_w=8.0),),
    )


def run():
    planner = RolloutPlanner([_safe_domain(f"rack{i}") for i in range(4)])
    stages = planner.plan(target_adaptive=16, stages=3)
    concentrated = RolloutPlanner.concentrated(
        _oversubscribed_domain(), n_adaptive=8
    )
    return stages, concentrated


def render(result):
    stages, concentrated = result
    lines = ["Distributed, breaker-safe rollout (paper section 4.1):"]
    lines.extend("  " + stage.describe() for stage in stages)
    lines.append("")
    lines.append(
        format_table(
            ["Topology", "Expected W", "Worst case W", "Breaker", "Safe"],
            [
                [
                    "distributed (per domain)",
                    stages[-1].domains[0].expected_power_w(),
                    stages[-1].domains[0].worst_case_power_w(1.0),
                    stages[-1].domains[0].breaker_limit_w,
                    "yes",
                ],
                [
                    "concentrated in oversub domain",
                    concentrated.expected_power_w(),
                    concentrated.worst_case_power_w(1.0),
                    concentrated.breaker_limit_w,
                    "yes" if concentrated.breaker_safe(1.0) else "NO",
                ],
            ],
            title="Correlated control-failure stress (every controller fails high).",
        )
    )
    return "\n".join(lines)


def test_ablation_rollout_topology(reproduce):
    stages, concentrated = reproduce(run, render)
    assert all(stage.all_breakers_safe for stage in stages)
    # The naive topology looks fine in expectation but trips on failure.
    assert concentrated.expected_power_w() <= concentrated.breaker_limit_w
    assert not concentrated.breaker_safe(1.0)
