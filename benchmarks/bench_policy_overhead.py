"""Engineering benchmark: policy overhead.

The policy subsystem promises **zero** cost when disabled: the default
path never imports ``repro.policy`` (the wiring in ``run_experiment`` is
a lazy import guarded on ``config.policy``), so a policy-free run must
be bit-identical -- and equally fast -- with the package installed or
not.  With a policy *attached*, the decision loop runs every
``interval_s``: that row documents the cost of sensing the rail and
(rarely) re-draining the governor, and pins that the run still
validates.
"""

from repro._units import KiB, MiB
from repro.core.options import ExecutionOptions
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy import BudgetSchedule, PolicySpec


def _grid() -> SweepGrid:
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDWRITE,),
        block_sizes=(64 * KiB, 256 * KiB),
        iodepths=(8, 64),
        base_job=JobSpec(
            pattern=IoPattern.RANDWRITE,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
    )


def _policy_spec() -> PolicySpec:
    return PolicySpec(
        kind="feedback",
        budget=BudgetSchedule.step(high_w=14.0, low_w=10.0, period_s=0.025),
        interval_s=1.5e-3,
        window_s=3e-3,
    )


def _fingerprints(results):
    return {
        point: (
            r.true_mean_power_w.hex(),
            r.power.mean_w.hex(),
            r.power.energy_j.hex(),
            r.throughput_bps.hex(),
        )
        for point, r in results.items()
    }


def test_baseline_policy_disabled(benchmark):
    """The default path: no policy loop, no repro.policy import."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(_grid(), ExecutionOptions(n_workers=1)),
        iterations=1,
        rounds=3,
    )
    assert len(outcome.results) == 4
    for result in outcome.results.values():
        assert result.policy is None


def test_disabled_policy_is_bit_identical(benchmark):
    """Two policy-free sweeps (policy machinery loaded by the test
    imports above) must produce bit-identical physics: the disabled
    path takes zero decisions and draws zero policy randomness."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(_grid(), ExecutionOptions(n_workers=1)),
        iterations=1,
        rounds=3,
    )
    baseline = sweep_outcome(_grid(), ExecutionOptions(n_workers=1))
    assert _fingerprints(outcome.results) == _fingerprints(baseline.results)


def test_policy_attached_documented(benchmark):
    """With a controller in the loop: decisions every 1.5 ms, validated
    results; costs only the sense/decide ticks."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(
            _grid(),
            ExecutionOptions(n_workers=1, validate=True, policy=_policy_spec()),
        ),
        iterations=1,
        rounds=3,
    )
    assert outcome.validation is not None
    assert outcome.validation.ok, outcome.validation.render()
    for result in outcome.results.values():
        assert result.policy is not None
        assert result.policy.decisions > 3
