"""Regenerates paper Figure 9: random-read power/throughput vs queue depth."""

from repro.studies import fig9


def test_fig9_queue_depth_shaping(reproduce):
    result = reproduce(fig9.run, fig9.render)
    assert result.power_saving_qd1("ssd2") > 0.2  # paper: up to 40 %
    assert result.throughput_fraction_qd1("ssd2") < 0.15  # paper: ~10 %
