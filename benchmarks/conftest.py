"""Benchmark harness conventions.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding :mod:`repro.studies` driver under ``pytest-benchmark``
(one timed round -- these are simulation *reproductions*, not microbenches)
and prints the same rows/series the paper reports, so

    pytest benchmarks/ --benchmark-only -s

produces the full paper-versus-measured record on stdout.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def reproduce(benchmark, capsys):
    """Run a figure driver once under the benchmark timer and print it.

    Usage::

        def test_fig4(reproduce):
            result = reproduce(fig4.run, fig4.render)
    """
    benchmark.pedantic  # ensure pytest-benchmark is active

    def _run(run_fn, render_fn, *args, **kwargs):
        result = benchmark.pedantic(
            run_fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )
        with capsys.disabled():
            print()
            print(render_fn(result))
        return result

    return _run
