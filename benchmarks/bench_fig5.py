"""Regenerates paper Figure 5: SSD2 random-write latency under states (QD1)."""

from repro.studies import fig5


def test_fig5_write_latency_inflation(reproduce):
    result = reproduce(fig5.run, fig5.render)
    assert result.max_avg_inflation > 1.5  # paper: up to ~2x
    assert result.max_p99_inflation > 2.0  # paper: up to 6.19x
