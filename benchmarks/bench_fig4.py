"""Regenerates paper Figure 4: SSD2 throughput under power states (QD64)."""

from repro.iogen.spec import IoPattern
from repro.studies import fig4


def test_fig4_throughput_under_states(reproduce):
    result = reproduce(fig4.run, fig4.render)
    assert result.mean_state_ratio(IoPattern.WRITE, 2) < result.mean_state_ratio(
        IoPattern.WRITE, 1
    )
