"""Regenerates paper Figure 7: 860 EVO ALPM standby transition traces."""

from repro.studies import fig7


def test_fig7_standby_transitions(reproduce):
    result = reproduce(fig7.run, fig7.render)
    assert result.slumber_power_w < 0.6 * result.idle_power_w
    assert max(result.enter_settle_s, result.exit_settle_s) <= 0.5
