"""Extension: the power-latency model (paper section 4).

"For latency, a similar model can be drawn from the measurement results."
This bench draws it for SSD2's random-write workload and reports what a
latency-SLO-aware operator gets from it: the p99 floor at each power
budget, and the tail inflation a power cut implies.
"""

from repro._units import KiB
from repro.core.experiment import ExperimentResult
from repro.core.latency_model import PowerLatencyModel
from repro.core.reporting import format_table
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern
from repro.studies.common import QUICK, run_point

CHUNKS = (4 * KiB, 256 * KiB, 2048 * KiB)
DEPTHS = (1, 8)
STATES = (0, 1, 2)


def run():
    results: dict[SweepPoint, ExperimentResult] = {}
    for ps in STATES:
        for chunk in CHUNKS:
            for depth in DEPTHS:
                point = SweepPoint(IoPattern.RANDWRITE, chunk, depth, ps)
                results[point] = run_point(
                    "ssd2",
                    IoPattern.RANDWRITE,
                    chunk,
                    depth,
                    power_state=ps,
                    scale=QUICK,
                    latency_study=(depth == 1),
                )
    model = PowerLatencyModel.from_sweep("ssd2", results)
    budgets = [model.max_power_w * f for f in (1.0, 0.8, 0.6, 0.45)]
    floors = [(b, model.latency_cost_of_power_budget(b)) for b in budgets]
    inflations = {cut: model.tail_inflation_of_power_cut(cut) for cut in (0.2, 0.4)}
    return model, floors, inflations


def render(result):
    model, floors, inflations = result
    rows = []
    for budget, point in floors:
        rows.append(
            [
                budget,
                "-" if point is None else point.p99_latency_s * 1e3,
                "-" if point is None else point.point.describe(),
            ]
        )
    blocks = [
        format_table(
            ["Budget (W)", "p99 floor (ms)", "Configuration"],
            rows,
            title="SSD2 power-latency model: achievable tail per budget.",
        ),
        "Tail inflation of a power cut: "
        + ", ".join(f"{cut:.0%} -> {ratio:.2f}x" for cut, ratio in inflations.items()),
        f"Pareto frontier: {len(model.pareto_frontier())} points "
        f"of {len(model.points)}",
    ]
    return "\n\n".join(blocks)


def test_latency_model(reproduce):
    model, floors, inflations = reproduce(run, render)
    # Tighter budgets can only raise the achievable tail floor.
    tails = [p.p99_latency_s for __, p in floors if p is not None]
    assert tails == sorted(tails)
    assert inflations[0.4] >= inflations[0.2] >= 1.0
