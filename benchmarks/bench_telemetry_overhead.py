"""Engineering benchmark: sweep telemetry overhead and passivity.

The telemetry subsystem (``ExecutionOptions(telemetry=True)``, the run
ledger, live progress) promises two things:

- **Zero cost when off.**  The default path never even imports
  ``repro.core.telemetry``: the recorder is created lazily behind the
  option flags, and every instrumentation site in the executor is a
  ``recorder is None`` test.  Asserted below by evicting the module and
  proving an untelemetered sweep does not re-import it.
- **Strictly passive when on.**  Telemetry observes point lifecycles; it
  must never change results.  Asserted as *bit identity* of the pickled
  result set against an untelemetered run of the same grid.

Bit-identity must compare like with like: pooled results make a pickle
round-trip through the worker pipe, which re-serializes to different
(value-equal) bytes than in-process objects.  So the in-process row
compares against an in-process baseline and the pooled row against a
pooled baseline -- same worker mode, telemetry the only variable.
"""

import pickle
import sys

from repro._units import KiB, MiB
from repro.core.options import ExecutionOptions
from repro.core.sweep import SweepGrid, sweep_outcome
from repro.iogen.spec import IoPattern, JobSpec


def _grid() -> SweepGrid:
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(64 * KiB, 256 * KiB),
        iodepths=(8, 64),
        base_job=JobSpec(
            pattern=IoPattern.RANDREAD,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
    )


def _result_bytes(outcome) -> bytes:
    return pickle.dumps(outcome.results)


def test_baseline_untelemetered(benchmark):
    """The default path; the ~0 % claim is that this row IS the product.

    Telemetry off must mean the subsystem is not merely idle but absent:
    evict ``repro.core.telemetry`` and prove the sweep never re-imports
    it (the lazy-import seam is the zero-cost mechanism).
    """
    sys.modules.pop("repro.core.telemetry", None)
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(_grid(), ExecutionOptions(n_workers=1)),
        iterations=1,
        rounds=3,
    )
    assert len(outcome.results) == 4
    assert outcome.telemetry is None
    assert "repro.core.telemetry" not in sys.modules


def test_telemetry_on_inprocess(benchmark):
    """Recording spans in-process: results bit-identical to the baseline."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(
            _grid(), ExecutionOptions(n_workers=1, telemetry=True)
        ),
        iterations=1,
        rounds=3,
    )
    telemetry = outcome.telemetry
    assert telemetry is not None
    assert telemetry.points == 4
    assert telemetry.count("done") == 4
    assert telemetry.sim_events > 0
    baseline = sweep_outcome(_grid(), ExecutionOptions(n_workers=1))
    assert _result_bytes(outcome) == _result_bytes(baseline)


def test_telemetry_on_pooled(benchmark):
    """Recording across a worker pool: bit-identical to a pooled baseline."""
    outcome = benchmark.pedantic(
        lambda: sweep_outcome(
            _grid(), ExecutionOptions(n_workers=2, telemetry=True)
        ),
        iterations=1,
        rounds=3,
    )
    telemetry = outcome.telemetry
    assert telemetry is not None
    assert telemetry.points == 4
    assert len(telemetry.workers) >= 1
    assert all(w.utilization <= 1.0 for w in telemetry.workers)
    baseline = sweep_outcome(_grid(), ExecutionOptions(n_workers=2))
    assert _result_bytes(outcome) == _result_bytes(baseline)


def test_telemetry_with_ledger(benchmark, tmp_path):
    """The full stack -- spans + ledger appends -- stays passive too."""
    from repro.core.ledger import RunLedger

    runs = [0]

    def _run():
        ledger = tmp_path / f"ledger-{runs[0]}.jsonl"
        runs[0] += 1
        return sweep_outcome(
            _grid(),
            ExecutionOptions(n_workers=1, telemetry=True, ledger=ledger),
        )

    outcome = benchmark.pedantic(_run, iterations=1, rounds=3)
    assert len(outcome.results) == 4
    records = RunLedger.load(tmp_path / "ledger-0.jsonl")
    assert sum(1 for r in records if r["rec"] == "point") == 4
    assert sum(1 for r in records if r["rec"] == "run") == 1
    baseline = sweep_outcome(_grid(), ExecutionOptions(n_workers=1))
    assert _result_bytes(outcome) == _result_bytes(baseline)
