"""Extension: sustained random writes with live garbage collection.

The paper's microbenchmarks run on a time/byte budget that stays inside
fresh capacity; a production drive eventually garbage-collects, and GC
both *consumes the same power-governed program budget* as host writes and
amplifies them.  This bench overwrites a small simulated drive several
times over and reports the steady-state picture: write amplification,
GC activity, and the throughput/power cost relative to the fresh-drive
phase -- at ps0 and under the ps2 cap (where GC and host compete hardest).
"""

import dataclasses

from repro._units import KiB, MiB
from repro.core.reporting import format_table
from repro.devices.ssd import SimulatedSSD
from repro.ftl.gc import GcConfig
from repro.iogen.engine import FioJob
from repro.iogen.spec import IoPattern, JobSpec
from repro.nand.geometry import NandGeometry
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from tests.conftest import tiny_ssd_config


def _gc_device_config():
    """A small drive whose capacity a short run overwrites many times."""
    return tiny_ssd_config(
        geometry=NandGeometry(
            channels=4,
            dies_per_channel=2,
            planes_per_die=1,
            blocks_per_plane=16,
            pages_per_block=16,
            page_size=16 * 1024,
        ),
        overprovision=0.28,
        gc=GcConfig(low_watermark=12, high_watermark=20),
    )


def _run_phase(power_state: int):
    engine = Engine()
    device = SimulatedSSD(engine, _gc_device_config(), rng=RngStreams(3))
    proc = engine.process(device.set_power_state(power_state))
    while proc.is_alive:
        engine.step()
    logical = device.capacity_bytes
    job = FioJob(
        engine,
        device,
        JobSpec(
            IoPattern.RANDWRITE,
            block_size=16 * KiB,
            iodepth=16,
            runtime_s=10.0,
            size_limit_bytes=4 * logical,  # ~4 full overwrites
        ),
        rng=RngStreams(3).get("io"),
    )
    master = job.start()
    while master.is_alive:
        engine.step()
    result = job.result(warmup_fraction=0.5)
    t0, t1 = result.measure_window
    return {
        "ps": power_state,
        "throughput_mib": result.throughput_mib_s,
        "power_w": device.rail.trace.mean(t0, t1),
        "write_amplification": device.wear.write_amplification,
        "blocks_erased": device.gc.blocks_erased,
        "pages_relocated": device.gc.pages_relocated,
    }


def run():
    return [_run_phase(0), _run_phase(2)]


def render(rows):
    return format_table(
        ["State", "MiB/s", "Power W", "WA", "Erases", "Relocations"],
        [
            [
                f"ps{r['ps']}",
                r["throughput_mib"],
                r["power_w"],
                r["write_amplification"],
                r["blocks_erased"],
                r["pages_relocated"],
            ]
            for r in rows
        ],
        title="Sustained random overwrite (4x logical capacity) with live GC.",
    )


def test_sustained_gc(reproduce):
    rows = reproduce(run, render)
    by_ps = {r["ps"]: r for r in rows}
    # GC actually ran and amplified writes.
    for r in rows:
        assert r["blocks_erased"] > 0
        assert r["write_amplification"] > 1.1
    # The cap still binds under GC load: less throughput at ps2.
    assert by_ps[2]["throughput_mib"] < by_ps[0]["throughput_mib"]
    assert by_ps[2]["power_w"] < by_ps[0]["power_w"]
