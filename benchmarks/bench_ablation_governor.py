"""Ablation: feedback versus static power-cap governor.

DESIGN.md design decision 1.  The shipped devices budget their cap against
*live* non-array power (feedback).  The ablation re-runs SSD2's capped
sequential-write point with a static firmware baseline estimate instead,
showing why the feedback design was chosen: with a static estimate the
device must either under-fill the budget (baseline set high: throughput
loss) or overshoot the cap (baseline set low).
"""

import dataclasses

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.reporting import format_table
from repro.devices.catalog import ssd_d7p5510
from repro.iogen.spec import IoPattern, JobSpec


def _run(feedback: bool, baseline_w: float):
    device = dataclasses.replace(
        ssd_d7p5510(),
        governor_feedback=feedback,
        governor_baseline_w=baseline_w,
    )
    result = run_experiment(
        ExperimentConfig(
            device=device,
            job=JobSpec(
                IoPattern.WRITE,
                block_size=256 * KiB,
                iodepth=64,
                runtime_s=0.08,
                size_limit_bytes=48 * MiB,
            ),
            power_state=1,  # the 12 W cap
        )
    )
    return result.mean_power_w, result.throughput_mib_s


def run():
    rows = []
    rows.append(("feedback", "-") + _run(feedback=True, baseline_w=6.4))
    for baseline in (3.0, 6.4, 8.5):
        rows.append(("static", f"{baseline:.1f} W") + _run(False, baseline))
    return rows


def render(rows):
    return format_table(
        ["Governor", "Baseline", "Power (W)", "Throughput (MiB/s)"],
        [list(r) for r in rows],
        title="Ablation: cap enforcement at SSD2 ps1 (12 W), seq write QD64.",
    )


def test_ablation_governor_design(reproduce):
    rows = reproduce(run, render)
    feedback_power, feedback_tput = rows[0][2], rows[0][3]
    assert feedback_power <= 12.0 + 0.15
    # A low static baseline violates the cap...
    low_static_power = rows[1][2]
    assert low_static_power > 12.0
    # ...while a conservatively high one sacrifices throughput.
    high_static_tput = rows[3][3]
    assert high_static_tput < feedback_tput
