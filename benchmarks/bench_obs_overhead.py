"""Engineering benchmark: observability overhead.

The tracing layer promises **~0 %** overhead when disabled: every engine
carries the ``NULL_TRACER`` singleton and instrumentation sites pay one
class-attribute flag test.  With a full tracer + metrics collector +
profiler attached the budget is **< 5 %** on the paper's representative
read grids; the dense-write stress grid below documents the worst case
(every NAND program unit consults the power governor, so the event rate
approaches the kernel event rate and pure-Python emission cost -- about
2-3 us/event after the slots/memo optimizations -- becomes visible,
measured around 15-20 %).

Five rows: untraced read baseline, explicit NullTracer (must match the
baseline), fully-traced read grid, and an untraced/traced write-stress
pair.  Equivalence is asserted, not just timed: traced sweeps must
reproduce baseline results exactly (the passivity invariant pinned
per-experiment by ``tests/obs/test_equivalence.py``).
"""

from repro._units import KiB, MiB
from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec
from repro.obs.events import NullTracer, Tracer
from repro.obs.metrics import MetricsCollector
from repro.obs.profile import RunProfiler


def _grid(pattern: IoPattern) -> SweepGrid:
    return SweepGrid(
        device="ssd2",
        patterns=(pattern,),
        block_sizes=(64 * KiB, 256 * KiB),
        iodepths=(8, 64),
        base_job=JobSpec(
            pattern=pattern,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
    )


def _read_grid() -> SweepGrid:
    """The paper's common case: read IOs, no GC / write-buffer churn."""
    return _grid(IoPattern.RANDREAD)


def _write_grid() -> SweepGrid:
    """Stress case: writes drive the governor once per NAND program unit."""
    return _grid(IoPattern.RANDWRITE)


def _traced_sweep(grid: SweepGrid):
    tracer = Tracer()
    tracer.subscribe(MetricsCollector())
    results = run_sweep(grid, n_workers=1, tracer=tracer, profiler=RunProfiler())
    return results, tracer


def test_baseline_untraced(benchmark):
    """The default path: engines fall back to the NULL_TRACER singleton."""
    results = benchmark.pedantic(
        lambda: run_sweep(_read_grid(), n_workers=1), iterations=1, rounds=3
    )
    assert len(results) == 4


def test_null_tracer_explicit(benchmark):
    """An explicit NullTracer must cost the same as the default (~0 %)."""
    results = benchmark.pedantic(
        lambda: run_sweep(_read_grid(), n_workers=1, tracer=NullTracer()),
        iterations=1,
        rounds=3,
    )
    assert len(results) == 4


def test_traced_read_grid(benchmark):
    """Full observability on the read grid: the < 5 % budget row."""
    (results, tracer) = benchmark.pedantic(
        lambda: _traced_sweep(_read_grid()), iterations=1, rounds=3
    )
    assert len(results) == 4
    assert len(tracer.events) > 0
    baseline = run_sweep(_read_grid(), n_workers=1)
    for point, result in results.items():
        assert result.mean_power_w == baseline[point].mean_power_w
        assert result.throughput_bps == baseline[point].throughput_bps


def test_baseline_write_stress(benchmark):
    """Untraced comparator for the write-stress row below."""
    results = benchmark.pedantic(
        lambda: run_sweep(_write_grid(), n_workers=1), iterations=1, rounds=3
    )
    assert len(results) == 4


def test_traced_write_stress(benchmark):
    """Worst case: governor-dense writes.  Documented, not budgeted."""
    (results, tracer) = benchmark.pedantic(
        lambda: _traced_sweep(_write_grid()), iterations=1, rounds=3
    )
    assert len(results) == 4
    # Sanity: the stress grid really is event-dense (governor + cache
    # events on top of IO), or it stops stressing anything.
    assert len(tracer.events) > 4000
    baseline = run_sweep(_write_grid(), n_workers=1)
    for point, result in results.items():
        assert result.mean_power_w == baseline[point].mean_power_w
        assert result.throughput_bps == baseline[point].throughput_bps
