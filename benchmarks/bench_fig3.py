"""Regenerates paper Figure 3: SSD2 random-write power under power states."""

from repro.studies import fig3


def test_fig3_power_vs_chunk_under_states(reproduce):
    result = reproduce(fig3.run, fig3.render)
    # Caps hold at queue depth 64 (small tolerance for meter noise).
    assert max(result.power_w[(64, 1)]) <= 12.0 + 0.15
    assert max(result.power_w[(64, 2)]) <= 10.0 + 0.15
