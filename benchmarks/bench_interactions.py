"""Extension: CPU-throttle interaction with storage power control (4.1).

Reproduces the paper's predicted preference flip: as CPU throttling cuts
the storage request rate, redirection + standby overtakes IO shaping as
the cheaper storage-side response.
"""

from repro._units import GiB, KiB
from repro.core.interactions import CpuThrottleInteraction
from repro.core.redirection import StandbyProfile
from repro.iogen.spec import IoPattern
from repro.studies.common import QUICK
from repro.studies.fig10 import build_model


def run():
    model = build_model(
        "pm1743",
        pattern=IoPattern.RANDWRITE,
        scale=QUICK,
        chunks=(4 * KiB, 256 * KiB, 2048 * KiB),
        depths=(1, 64),
        states=(0, 1, 2),
    )
    interaction = CpuThrottleInteraction(
        model,
        StandbyProfile(
            standby_power_w=1.05, wake_latency_s=8e-3, idle_power_w=5.0
        ),
        n_devices=16,
        full_load_bps=24 * GiB,
    )
    return interaction.evaluate((0.0, 0.2, 0.4, 0.6, 0.8))


def render(points):
    return CpuThrottleInteraction.render(points)


def test_cpu_throttle_interaction(reproduce):
    points = reproduce(run, render)
    # Redirection's advantage grows as the CPU throttles deeper...
    savings = [p.savings_w for p in points]
    assert savings[-1] > savings[0]
    # ...and at deep throttle it is the preferred mechanism, with devices
    # actually stood down.
    assert points[-1].redirection_preferred
    assert points[-1].standby_devices > 0
