"""Ablation: measurement sampling rate (DESIGN.md design decision 4).

The paper's section 3.1 argues that without millisecond-scale sampling the
power details "could not be captured and analyzed".  This bench measures
the same SSD1 random-write experiment through ADCs at 10 Hz, 100 Hz and
1 kHz and reports the visible power spread at each rate.
"""

from repro._units import GiB, KiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, JobSpec
from repro.power.adc import AdcConfig
from repro.power.meter import MeterConfig


def run():
    rows = []
    for rate in (10.0, 100.0, 1000.0):
        result = run_experiment(
            ExperimentConfig(
                device="ssd1",
                job=JobSpec(
                    IoPattern.RANDWRITE,
                    block_size=256 * KiB,
                    iodepth=64,
                    runtime_s=0.6,
                    size_limit_bytes=8 * GiB,
                ),
                warmup_fraction=0.1,
                meter=MeterConfig(adc=AdcConfig(sample_rate_hz=rate)),
                keep_trace=True,
            )
        )
        spread = result.power.max_w - result.power.min_w
        rows.append((f"{rate:.0f} Hz", result.power.mean_w, spread))
    return rows


def render(rows):
    return format_table(
        ["Sample rate", "Mean (W)", "Visible spread (W)"],
        [list(r) for r in rows],
        title="Ablation: SSD1 random-write power vs meter sampling rate.",
    )


def test_ablation_sampling_rate(reproduce):
    rows = reproduce(run, render)
    spreads = {r[0]: r[2] for r in rows}
    means = {r[0]: r[1] for r in rows}
    # Millisecond sampling reveals variability the slow rates hide.
    assert spreads["1000 Hz"] > 2 * spreads["10 Hz"]
    # With enough samples the mean converges regardless of rate (100 Hz
    # already gives tens of samples over this window)...
    assert abs(means["1000 Hz"] - means["100 Hz"]) < 0.5
    # ...but a 10 Hz sampler sees only ~6 samples here: even its *average*
    # is unreliable against SSD1's watt-scale power swings -- a second
    # reason the paper's rig needs millisecond-scale sampling.
    assert spreads["1000 Hz"] > 4.0  # the swings are real and large
