"""Regenerates paper Figure 2: 1 kHz power trace and per-device violins."""

from repro.studies import fig2


def test_fig2_power_trace_and_distribution(reproduce):
    result = reproduce(fig2.run, fig2.render)
    # The methodological point: millisecond sampling reveals variability a
    # slow sampler would miss entirely.
    assert result.full_rate_spread > 4 * result.slow_rate_spread
