"""Engineering benchmark: fault-injection overhead.

The fault subsystem promises **zero** cost when no plan is configured:
devices carry the ``NULL_INJECTOR`` singleton and every fault site pays
one attribute flag test.  An *inert* ``FaultPlan()`` (constructed but
with no specs) attaches a real injector whose sites all short-circuit on
``enabled`` -- it must reproduce the no-injector sweep **bit-identically**
(the injector never draws from any RNG stream), at indistinguishable
cost.  An active plan is then timed for documentation: injected retries
and latency spikes do extra simulated work, so that row is expected to
be slower and is asserted only for plausibility, not budget.

Three rows: no-faults baseline, inert-plan equivalence (bit-identity
asserted across mean/true power and throughput), and an active
io_error + spike plan.
"""

from repro._units import KiB, MiB
from repro.core.sweep import SweepGrid, run_sweep
from repro.faults import FaultPlan, IoErrorSpec, LatencySpikeSpec
from repro.iogen.spec import IoPattern, JobSpec


def _grid(faults=None) -> SweepGrid:
    return SweepGrid(
        device="ssd2",
        patterns=(IoPattern.RANDREAD,),
        block_sizes=(64 * KiB, 256 * KiB),
        iodepths=(8, 64),
        base_job=JobSpec(
            pattern=IoPattern.RANDREAD,
            block_size=4096,
            iodepth=1,
            runtime_s=0.05,
            size_limit_bytes=32 * MiB,
        ),
        faults=faults,
    )


ACTIVE_PLAN = FaultPlan(
    io_errors=IoErrorSpec(probability=0.05, retry_cost_s=5e-4),
    latency_spikes=(
        LatencySpikeSpec(
            start_s=0.01, duration_s=0.01, extra_s=2e-4, repeat_every_s=0.02
        ),
    ),
)


def test_baseline_no_faults(benchmark):
    """The default path: no plan, devices hold the NULL_INJECTOR."""
    results = benchmark.pedantic(
        lambda: run_sweep(_grid(), n_workers=1), iterations=1, rounds=3
    )
    assert len(results) == 4
    assert all(r.faults is None for r in results.values())


def test_inert_plan_bit_identical(benchmark):
    """An empty FaultPlan must match the no-injector run bit for bit."""
    results = benchmark.pedantic(
        lambda: run_sweep(_grid(FaultPlan()), n_workers=1),
        iterations=1,
        rounds=3,
    )
    assert len(results) == 4
    baseline = run_sweep(_grid(), n_workers=1)
    for point, result in results.items():
        assert result.mean_power_w == baseline[point].mean_power_w
        assert result.true_mean_power_w == baseline[point].true_mean_power_w
        assert result.throughput_bps == baseline[point].throughput_bps
        # The inert injector reports empty accounting, nothing more.
        assert result.faults.total == 0


def test_active_plan_documented(benchmark):
    """Faults firing: retries + spikes cost simulated work by design."""
    results = benchmark.pedantic(
        lambda: run_sweep(_grid(ACTIVE_PLAN), n_workers=1),
        iterations=1,
        rounds=3,
    )
    assert len(results) == 4
    assert sum(r.faults.count("io_error") for r in results.values()) > 0
