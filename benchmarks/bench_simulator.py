"""Engineering benchmark: simulation throughput itself.

Not a paper figure -- this tracks the cost of the simulation substrate so
performance regressions in the kernel or device models are visible.  Runs
a fixed random-write workload against SSD2 and reports simulated-IO/s of
wall time via pytest-benchmark's normal statistics (several rounds, unlike
the one-shot figure benches).  A small sequential sweep rides along as the
baseline the parallel-sweep bench (bench_parallel_sweep.py) compares to.
"""

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.sweep import SweepGrid, run_sweep
from repro.iogen.spec import IoPattern, JobSpec


def _workload():
    return run_experiment(
        ExperimentConfig(
            device="ssd2",
            job=JobSpec(
                IoPattern.RANDWRITE,
                block_size=64 * KiB,
                iodepth=32,
                runtime_s=0.02,
                size_limit_bytes=16 * MiB,
            ),
        )
    )


def test_simulation_throughput(benchmark):
    result = benchmark.pedantic(_workload, iterations=1, rounds=5)
    # Sanity: the workload actually ran.
    assert result.job.records
    assert result.mean_power_w > 0


def test_sweep_throughput(benchmark):
    """Sequential cost of a small mechanism grid (the pre-parallel path)."""
    grid = SweepGrid(
        device="ssd2",
        block_sizes=(16 * KiB, 256 * KiB),
        iodepths=(1, 64),
        base_job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=4096,
            iodepth=1,
            runtime_s=0.02,
            size_limit_bytes=16 * MiB,
        ),
    )
    results = benchmark.pedantic(
        lambda: run_sweep(grid, n_workers=1), iterations=1, rounds=3
    )
    assert len(results) == 4
