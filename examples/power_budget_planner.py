#!/usr/bin/env python3
"""The paper's worked example (section 3.3): plan a 20 % power cut.

Sweeps SSD1's power-control mechanisms, fits the power-throughput model,
and asks it: *if this device's power allowance drops 20 %, which power cap
and IO shape should we apply, and how much best-effort load must we shed?*

The paper's answer for the real PM9A3: move from QD64 to QD1 at 256 KiB,
costing ~40 % of the 3.3 GiB/s peak, i.e. curtail ~1.3 GiB/s of
best-effort traffic.  This script reproduces that decision procedure end
to end, including a latency-SLO-constrained variant.

Run:  python examples/power_budget_planner.py
"""

from repro.api import GiB, KiB, PowerAdaptivePlanner, QUICK, build_model


def main() -> None:
    print("sweeping ssd1's mechanism grid (power states x chunks x depths)...")
    model = build_model(
        "ssd1",
        scale=QUICK,
        chunks=(4 * KiB, 64 * KiB, 256 * KiB, 2048 * KiB),
        depths=(1, 8, 64),
    )
    print(
        f"model: {len(model.points)} operating points, "
        f"peak {model.max_throughput_bps / GiB:.2f} GiB/s at "
        f"{model.max_power_w:.2f} W, dynamic range "
        f"{model.dynamic_range_fraction:.0%}\n"
    )

    planner = PowerAdaptivePlanner(model)
    for cut in (0.10, 0.20, 0.30):
        plan = planner.plan_power_cut(cut)
        print(f"power cut {cut:.0%}: {plan.describe()}")

    print("\nwith a 5 ms p99 latency SLO:")
    plan = planner.plan_power_cut(0.20, max_latency_p99_s=5e-3)
    print(f"power cut 20%: {plan.describe()}")

    print(
        "\nDecision rule from the paper: only enter the chosen configuration"
        "\nif the curtailed amount of best-effort load actually exists to be"
        "\nshed; otherwise high-priority traffic would be impacted."
    )


if __name__ == "__main__":
    main()
