#!/usr/bin/env python3
"""Demand response for a 16-SSD storage server (paper section 4).

A grid event asks the server to shed storage power.  This script walks the
policies the paper discusses, on models fitted from the simulated PM1743:

1. *power capping + IO shaping* via the fleet allocator (Pareto-greedy);
2. *power-aware IO redirection*: consolidate load, stand devices down;
3. *asymmetric IO*: segregate writes so the read-set can be capped deeply.

Run:  python examples/fleet_demand_response.py
"""

from repro.api import (
    AsymmetricPlanner,
    FleetModel,
    GiB,
    IoPattern,
    KiB,
    QUICK,
    RedirectionPolicy,
    StandbyProfile,
    build_model,
)

N = 16


def main() -> None:
    print("fitting PM1743 write/read models from mechanism sweeps...\n")
    grid = dict(
        scale=QUICK, chunks=(4 * KiB, 256 * KiB, 2048 * KiB), depths=(1, 64)
    )
    write_model = build_model(
        "pm1743", pattern=IoPattern.RANDWRITE, states=(0, 1, 2), **grid
    )
    read_model = build_model(
        "pm1743", pattern=IoPattern.RANDREAD, states=(0, 2), **grid
    )

    # --- 1. fleet budget allocation (capping + shaping) ------------------
    fleet = FleetModel([write_model] * N)
    print(
        f"fleet of {N}: floor {fleet.min_power_w:.0f} W, "
        f"peak {fleet.max_power_w:.0f} W / "
        f"{fleet.max_throughput_bps / GiB:.0f} GiB/s"
    )
    for budget_fraction in (1.0, 0.8, 0.6):
        budget = budget_fraction * fleet.max_power_w
        allocation = fleet.allocate(budget)
        print(
            f"  budget {budget:5.0f} W ({budget_fraction:.0%}): "
            f"{allocation.describe()}"
        )

    # --- 2. redirection + standby ----------------------------------------
    standby = StandbyProfile(
        standby_power_w=1.05,  # ps4 idle + PHY
        wake_latency_s=8e-3,
        idle_power_w=5.0,
    )
    policy = RedirectionPolicy(write_model, standby, n_devices=N)
    print("\nredirection under a 100 ms wake SLO:")
    for load_gib in (2, 8, 20):
        decision = policy.decide(load_gib * GiB, wake_slo_s=0.1)
        print(f"  load {load_gib:>2} GiB/s: {decision.describe()}")

    # --- 3. asymmetric IO -------------------------------------------------
    print("\nasymmetric IO for a mixed load (10 GiB/s reads + 6 GiB/s writes):")
    asym = AsymmetricPlanner(read_model, write_model, n_devices=N, cap_power_w=9.0)
    plan = asym.plan(read_load_bps=10 * GiB, write_load_bps=6 * GiB)
    print(f"  {plan.describe()}")


if __name__ == "__main__":
    main()
