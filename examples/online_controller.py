#!/usr/bin/env python3
"""A live power-adaptive storage controller tracking a demand-response event.

The full closed loop the paper motivates, running on real simulated
hardware: two D7-P5510s serve an open-loop random-write load; at t=200 ms
the facility cuts the storage power budget by a third; at t=400 ms it
restores it.  The controller measures fleet power off the device rails and
walks NVMe power states to track the budget; the workload pays with queued
and shed requests while the cut lasts.

Run:  python examples/online_controller.py   (~20 s)
"""

from repro.api import BudgetSignal, GiB, run_demand_response


def main() -> None:
    print("running 2x SSD2 demand-response scenario (0.6 s simulated)...\n")
    result = run_demand_response(
        n_devices=2,
        offered_load_bps=int(4.8 * GiB),
        duration_s=0.6,
        budget=BudgetSignal(((0.0, 30.0), (0.2, 20.5), (0.4, 30.0))),
    )
    print("budget tracking:")
    print(result.describe())
    print("\ncontroller actions:")
    for action in result.actions:
        print(f"  {action}")
    stats = result.workload.latency_stats()
    print(
        f"\nworkload: {result.workload.offered} offered, "
        f"{len(result.workload.records)} completed, "
        f"{result.workload.shed} shed"
    )
    print(
        f"latency: p50 {stats.p50 * 1e3:.2f} ms, "
        f"p99 {stats.p99 * 1e3:.2f} ms "
        "(the tail is the price of the 200-400 ms throttle window)"
    )


if __name__ == "__main__":
    main()
