#!/usr/bin/env python3
"""HDD standby: the power saving and the latency cliff (paper sections 2/4).

Event-driven scenario on the simulated Exos 7E2000:

1. measure idle vs standby power (the ~2.66 W saving);
2. show the first-IO-after-standby latency (multi-second spin-up);
3. run the paper's proposed mitigation -- tiered write absorption with an
   SSD masking the spin-up -- and compare client-visible latencies.

Run:  python examples/hdd_spindown_tradeoff.py
"""

from repro.api import (
    Engine,
    IOKind,
    IORequest,
    KiB,
    MiB,
    WriteAbsorptionScenario,
    build_device,
    check_power_mode,
    standby_immediate,
)


def drive(engine, process):
    while process.is_alive:
        engine.step()


def main() -> None:
    engine = Engine()
    hdd = build_device(engine, "hdd")

    engine.run(until=0.5)
    idle_w = hdd.rail.mean_power(0.2, 0.5)
    drive(engine, engine.process(standby_immediate(hdd)))
    t0 = engine.now
    engine.run(until=t0 + 0.5)
    standby_w = hdd.rail.mean_power(t0 + 0.2, t0 + 0.5)
    print(f"idle: {idle_w:.2f} W   standby: {standby_w:.2f} W   "
          f"saving: {idle_w - standby_w:.2f} W")
    print(f"power mode now: {check_power_mode(hdd).name}")

    # The cliff: first IO to the spun-down drive.
    done = hdd.submit(IORequest(IOKind.READ, 0, 4 * KiB))
    while not done.processed:
        engine.step()
    print(f"first read after standby: {done.value.latency:.2f} s "
          "(spin-up dominated)")
    done = hdd.submit(IORequest(IOKind.READ, 1_000_000_000_000, 4 * KiB))
    while not done.processed:
        engine.step()
    print(f"next (random) read: {done.value.latency * 1e3:.1f} ms (normal service)\n")

    # Mitigation: absorb a write burst on an SSD while the HDD wakes.
    scenario = WriteAbsorptionScenario(burst_bytes=8 * MiB, chunk_bytes=256 * KiB)
    direct, absorbed = scenario.compare()
    print("write burst against a standby HDD tier:")
    print(f"  {direct.describe()}")
    print(f"  {absorbed.describe()}")
    print(
        "\nThe SSD tier hides the spin-up entirely; the data destages to"
        "\nthe HDD sequentially once the platters are back at speed."
    )


if __name__ == "__main__":
    main()
