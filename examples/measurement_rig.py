#!/usr/bin/env python3
"""The paper's Figure-1 measurement rig, end to end.

Builds the full analog chain -- shunt resistor on the power wire,
differential amplifier, 24-bit ADS1256 at 1 kHz, data logger -- points it
at a simulated 860 EVO, and demonstrates:

- reconstruction accuracy against ground truth (<1 % relative error),
- what the millisecond-scale trace shows during an ALPM standby
  transition (the paper's Figure 7),
- driving the device through the ``nvme-cli``-style front end for an NVMe
  sibling.

Run:  python examples/measurement_rig.py
"""

import numpy as np

from repro.api import (
    AlpmController,
    Engine,
    LinkPowerMode,
    MeterConfig,
    NvmeCli,
    PowerMeter,
    RngStreams,
    build_device,
)


def main() -> None:
    engine = Engine()
    rngs = RngStreams(seed=42)
    evo = build_device(engine, "860evo", rng=rngs)
    meter = PowerMeter(evo.rail, MeterConfig(), rng=rngs.get("meter"))

    # Let the device idle, then command SLUMBER at t=200 ms (Fig. 7a).
    alpm = AlpmController(evo)
    engine.call_at(0.2, lambda: engine.process(alpm.set_mode(LinkPowerMode.SLUMBER)))
    engine.run(until=1.0)

    trace = meter.measure(0.0, 1.0, label="860evo idle->slumber")
    truth = evo.rail.trace.mean(0.0, 1.0)
    print(f"samples: {len(trace)} at {trace.sample_rate_hz:.0f} Hz")
    print(f"measured mean {trace.mean():.4f} W vs ground truth {truth:.4f} W")
    print(f"relative error: {abs(trace.mean() - truth) / truth:.3%}  (claim: <1%)\n")

    # Render the transition the way the paper's Fig. 7a shows it.
    print("power trace (50 ms buckets):")
    bucket = 50
    for start in range(0, 1000, bucket):
        window = trace.watts[start : start + bucket]
        bar = "#" * int(np.mean(window) * 120)
        print(f"  {start:4d} ms  {bar} {np.mean(window):.3f} W")

    # The NVMe control-plane view of a datacenter sibling.
    print("\nnvme-cli view of the simulated D7-P5510:")
    nvme_engine = Engine()
    cli = NvmeCli(nvme_engine)
    path = cli.register(build_device(nvme_engine, "ssd2", rng=RngStreams(1)))
    print(cli.run(f"id-ctrl {path}"))
    print(cli.run(f"set-feature {path} -f 2 -v 2"))
    print(cli.run(f"get-feature {path} -f 2"))


if __name__ == "__main__":
    main()
