#!/usr/bin/env python3
"""Quickstart: measure a device's power/performance under one workload.

Builds the paper's SSD2 (Intel D7-P5510), drives it with a fio-style
random-write job at each of its three power states, and prints power,
throughput and latency -- the core loop of the paper's methodology.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, IoPattern, JobSpec, KiB, MiB, run_experiment


def main() -> None:
    job = JobSpec(
        pattern=IoPattern.RANDWRITE,
        block_size=256 * KiB,
        iodepth=64,
        runtime_s=0.08,  # scaled stand-in for the paper's 60 s points
        size_limit_bytes=48 * MiB,
    )
    print(f"workload: {job.describe()}\n")
    print(f"{'state':<6} {'power':>8} {'throughput':>12} {'p99 latency':>12}")
    for power_state in (0, 1, 2):
        result = run_experiment(
            ExperimentConfig(device="ssd2", job=job, power_state=power_state)
        )
        latency = result.latency()
        print(
            f"ps{power_state:<5}"
            f"{result.mean_power_w:>7.2f}W"
            f"{result.throughput_mib_s:>9.0f} MiB/s"
            f"{latency.p99 * 1e3:>10.2f} ms"
        )
    print(
        "\nNote how the 12 W (ps1) and 10 W (ps2) caps trade write"
        " throughput for power -- the paper's Figure 4a."
    )


if __name__ == "__main__":
    main()
