"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` on environments whose
setuptools predates full PEP 517/660 editable support; all metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
