#!/usr/bin/env python
"""Coverage gate for the validation subsystem.

Runs the ``tests/validate`` suite under ``coverage`` and fails if line
coverage of ``src/repro/validate`` drops below the threshold: the
validators are the code that vouches for everything else, so untested
checker branches are silent holes in the safety net.

The gate degrades gracefully: when the ``coverage`` package is not
installed (it is an optional tool, not a runtime dependency), the gate
reports that it is skipping and exits 0 -- a missing dev tool must not
look like a coverage regression.  CI images with ``coverage`` installed
enforce the threshold for real.

Run directly (``python tools/check_coverage.py [threshold]``); also
exercised by ``tests/test_tooling.py``.  Exit status 0 = passed or
skipped, 1 = coverage below threshold or the measured run failed.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Minimum acceptable line coverage (percent) of src/repro/validate.
DEFAULT_THRESHOLD = 85.0


def coverage_available() -> bool:
    try:
        import coverage  # noqa: F401
    except ImportError:
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    threshold = float(argv[0]) if argv else DEFAULT_THRESHOLD
    if not coverage_available():
        print("coverage is not installed; skipping the coverage gate")
        return 0
    env_src = str(REPO_ROOT / "src")
    commands = (
        [
            sys.executable,
            "-m",
            "coverage",
            "run",
            f"--source={env_src}/repro/validate",
            "-m",
            "pytest",
            "-q",
            str(REPO_ROOT / "tests" / "validate"),
        ],
        [
            sys.executable,
            "-m",
            "coverage",
            "report",
            f"--fail-under={threshold}",
        ],
    )
    for command in commands:
        proc = subprocess.run(command, cwd=REPO_ROOT)
        if proc.returncode != 0:
            print(
                f"coverage gate failed (threshold {threshold:.0f}%): "
                f"{' '.join(command[3:5])}"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
