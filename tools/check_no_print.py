#!/usr/bin/env python
"""Lint: forbid bare ``print()`` in ``src/repro`` library code.

The library's observable output goes through return values, the tracer
(:mod:`repro.obs.events`), and the metrics registry -- never stdout.  A
stray ``print()`` in a device model or sweep runner corrupts piped CLI
output, breaks byte-stable golden comparisons, and hides information
from the structured observability layer that should carry it.

Exemptions, by design:

- files named ``cli.py`` (the CLI *is* the stdout boundary);
- calls inside an ``if __name__ == "__main__":`` block (the studies
  modules are runnable scripts; their demo output is fine).

Run directly (``python tools/check_no_print.py``) or via the test suite
(``tests/test_tooling.py``).  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator

DEFAULT_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

EXEMPT_FILENAMES = {"cli.py"}


def _is_main_guard(node: ast.If) -> bool:
    """True for ``if __name__ == "__main__":`` (either operand order)."""
    test = node.test
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, *test.comparators]
    names = {o.id for o in operands if isinstance(o, ast.Name)}
    consts = {o.value for o in operands if isinstance(o, ast.Constant)}
    return "__name__" in names and "__main__" in consts


def _main_guard_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    return [
        (node.lineno, node.end_lineno or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, ast.If) and _is_main_guard(node)
    ]


def find_violations(root: Path) -> Iterator[str]:
    """Yield ``path:line: source`` for every bare ``print(...)`` call.

    AST-based: ``print`` mentioned in strings/comments, or methods named
    ``print`` on other objects, do not trip it.
    """
    for path in sorted(root.rglob("*.py")):
        if path.name in EXEMPT_FILENAMES:
            continue
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        guards = _main_guard_ranges(tree)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                if any(lo <= node.lineno <= hi for lo, hi in guards):
                    continue
                line = lines[node.lineno - 1].strip()
                yield f"{path}:{node.lineno}: {line}"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    violations = list(find_violations(root))
    if violations:
        print(
            "bare print() is banned in library code; return strings, or "
            "emit through repro.obs (cli.py and __main__ blocks excepted):"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
