#!/usr/bin/env python
"""Lint: user-facing code imports only the supported API surface.

README code blocks and the scripts in ``examples/`` are the package's
public face: whatever they import, users will import.  If they reach
into ``repro.core.parallel`` or ``repro.sim.engine`` directly, those
module paths silently become API and can never move again.  This lint
pins the public face to the *supported* surface -- the ``repro`` top
level and :mod:`repro.api` -- so every deep path stays refactorable.

Checked sources:

- fenced ``python`` code blocks in ``README.md``;
- every ``examples/*.py`` script (whole file, AST-parsed).

A ``repro`` import is allowed only as ``import repro``, ``from repro
import ...`` or ``from repro.api import ...``.  Imports of anything
else (numpy, stdlib) are no concern of this lint.  Additionally, every
name imported from ``repro``/``repro.api`` must actually be in the
facade's ``__all__`` -- catching a name that was dropped from the
surface while a doc still advertises it.

Run directly (``python tools/check_api_surface.py``) or via the test
suite (``tests/test_api_surface.py``).  Exit status 0 = clean, 1 =
violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator

REPO_ROOT = Path(__file__).resolve().parents[1]

ALLOWED_MODULES = {"repro", "repro.api"}


def _facade_names(root: Path) -> set[str]:
    """The facade's ``__all__``, read from source (no package import)."""
    source = (root / "src" / "repro" / "__init__.py").read_text(
        encoding="utf-8"
    )
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets:
                return {
                    elt.value
                    for elt in node.value.elts  # type: ignore[attr-defined]
                    if isinstance(elt, ast.Constant)
                }
    raise AssertionError("src/repro/__init__.py has no literal __all__")


def _readme_blocks(readme: Path) -> Iterator[tuple[int, str]]:
    """Yield ``(first_line_number, source)`` per fenced python block."""
    lines = readme.read_text(encoding="utf-8").splitlines()
    block: list[str] = []
    start = 0
    in_block = False
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped in ("```python", "```py"):
            in_block = True
            block = []
            start = lineno + 1
        elif in_block and stripped.startswith("```"):
            in_block = False
            yield start, "\n".join(block)
        elif in_block:
            block.append(line)


def _import_violations(
    tree: ast.AST, label: str, offset: int, facade: set[str]
) -> Iterator[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top == "repro" and alias.name not in ALLOWED_MODULES:
                    yield (
                        f"{label}:{offset + node.lineno}: "
                        f"import {alias.name} -- import repro or repro.api"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            if node.module.split(".")[0] != "repro":
                continue
            if node.module not in ALLOWED_MODULES:
                yield (
                    f"{label}:{offset + node.lineno}: "
                    f"from {node.module} import ... -- only repro / "
                    "repro.api are supported import paths"
                )
                continue
            for alias in node.names:
                if alias.name != "*" and alias.name not in facade:
                    yield (
                        f"{label}:{offset + node.lineno}: "
                        f"'{alias.name}' is not part of the public surface "
                        "(repro.api.__all__)"
                    )


def find_violations(root: Path) -> list[str]:
    facade = _facade_names(root)
    violations: list[str] = []
    readme = root / "README.md"
    if readme.exists():
        for start, source in _readme_blocks(readme):
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue  # prose-like fragments (elided ``...`` etc.)
            violations.extend(
                _import_violations(tree, "README.md", start - 1, facade)
            )
    for path in sorted((root / "examples").glob("*.py")):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        label = str(path.relative_to(root))
        violations.extend(_import_violations(tree, label, 0, facade))
    return violations


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else REPO_ROOT
    violations = find_violations(root)
    if violations:
        print(
            "user-facing code must import from the supported surface "
            "(repro / repro.api) only:"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
