#!/usr/bin/env python3
"""Canonical bit-exact flattening of experiment results.

The kernel-performance work (and any future hot-path change) is gated on
a hard correctness bar: the optimized simulator must produce *bit-identical*
``ExperimentResult`` values for every catalog device.  Raw ``pickle`` bytes
are the wrong comparison medium -- adding ``__slots__`` to a dataclass or
reordering its fields changes the pickle byte stream without changing a
single simulated value.  This module instead flattens a result to a
canonical JSON structure in which every float is rendered with
``float.hex()`` (a lossless, bit-exact encoding), so two results compare
equal iff every numeric value in them is bit-for-bit identical, regardless
of class layout.

Used by ``tests/kernel/test_golden_equivalence.py`` (fixtures live in
``tests/kernel/golden/``) and regenerable via::

    PYTHONPATH=src python tools/golden_result.py --write

Regenerating is only legitimate when simulated *behaviour* is meant to
change (a model fix, a new noise draw order); a perf-only PR must leave
these fixtures untouched.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_DIR = REPO_ROOT / "tests" / "kernel" / "golden"


def flatten(obj: object) -> object:
    """Flatten a result object tree to a canonical JSON-able structure.

    Floats become ``float.hex()`` strings (bit-exact, including inf/nan);
    dataclasses become ``[type name, [(field, value)...]]`` pairs; numpy
    arrays become lists of hex floats.  The encoding depends only on the
    *values* a simulation produced, never on class layout, ``__slots__``,
    dict ordering, or pickle protocol details.
    """
    import numpy as np

    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, flatten(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [
                [f.name, flatten(getattr(obj, f.name))]
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, np.ndarray):
        return ["ndarray", [flatten(v) for v in obj.tolist()]]
    if isinstance(obj, np.floating):
        return float(obj).hex()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, dict):
        return [
            "dict",
            sorted(
                ([flatten(k), flatten(v)] for k, v in obj.items()), key=repr
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return ["seq", [flatten(item) for item in obj]]
    raise TypeError(
        f"golden flattening does not know how to encode {type(obj).__name__}"
    )


def golden_configs() -> dict:
    """The pinned per-device-class experiments the goldens cover.

    One governed write path and one read path per catalog device; the
    capped SSD additionally runs under a non-default power state so the
    governor admission loop is exercised.  Stop conditions are small
    enough that the whole golden suite replays in a few seconds.
    """
    from repro._units import MiB
    from repro.core.experiment import ExperimentConfig
    from repro.iogen.spec import IoPattern, JobSpec

    def job(pattern: IoPattern, iodepth: int) -> JobSpec:
        return JobSpec(
            pattern=pattern,
            block_size=64 * 1024,
            iodepth=iodepth,
            runtime_s=0.02,
            size_limit_bytes=8 * MiB,
        )

    configs = {}
    for device in ("ssd1", "ssd2", "ssd3", "hdd"):
        configs[f"{device}_randwrite"] = ExperimentConfig(
            device=device, job=job(IoPattern.RANDWRITE, 8), seed=7
        )
        configs[f"{device}_randread"] = ExperimentConfig(
            device=device, job=job(IoPattern.RANDREAD, 8), seed=7
        )
    # Governor admission under a real cap (ssd2 publishes NVMe states).
    configs["ssd2_randwrite_ps2"] = ExperimentConfig(
        device="ssd2", job=job(IoPattern.RANDWRITE, 16), power_state=2, seed=7
    )
    configs["ssd2_seqwrite"] = ExperimentConfig(
        device="ssd2", job=job(IoPattern.WRITE, 4), seed=7
    )
    # Online policy runtime: the feedback controller tracking a step
    # budget, so the decision trail (ticks, set-point changes, retained
    # samples) is pinned bit-for-bit alongside the physics.
    from repro.policy import BudgetSchedule, PolicySpec

    configs["ssd2_policy_feedback"] = ExperimentConfig(
        device="ssd2",
        job=job(IoPattern.RANDWRITE, 8),
        seed=7,
        policy=PolicySpec(
            kind="feedback",
            budget=BudgetSchedule.step(high_w=14.0, low_w=9.0, period_s=0.01),
            interval_s=1.5e-3,
            window_s=3e-3,
        ),
    )
    configs["ssd2_policy_ladder"] = ExperimentConfig(
        device="ssd2",
        job=job(IoPattern.RANDWRITE, 8),
        seed=7,
        policy=PolicySpec(
            kind="ladder",
            budget=BudgetSchedule.diurnal(high_w=13.0, low_w=8.0, period_s=0.02),
            interval_s=2e-3,
            window_s=4e-3,
        ),
    )
    return configs


def compute_fleet_golden() -> object:
    """Epoch digests of a tiny but complete :func:`run_fleet` day.

    The full :class:`~repro.fleet.cluster.FleetResult` carries rollup and
    validation payloads whose shapes are free to evolve; the *physics* of
    the run is the per-epoch budget/allocation/power/latency digest plus
    the actuator ranges, so exactly that is pinned.
    """
    from repro._units import MiB
    from repro.fleet import FleetSpec, run_fleet
    from repro.studies.common import StudyScale

    scale = StudyScale(
        ssd_runtime_s=0.02,
        ssd_bytes=12 * MiB,
        hdd_runtime_s=1.0,
        hdd_bytes=12 * MiB,
    )
    spec = FleetSpec.sized(
        3, mix=("ssd1", "ssd2", "ssd3"), epochs=2, tenants=8, skew=1.0, seed=5
    )
    result = run_fleet(spec, scale)
    return flatten(
        {
            "epochs": result.epochs,
            "floors_w": result.floors_w,
            "ceilings_w": result.ceilings_w,
        }
    )


def compute_golden(name: str) -> object:
    if name == "fleet_tiny":
        return compute_fleet_golden()
    from repro.core.experiment import run_experiment

    return flatten(run_experiment(golden_configs()[name]))


def golden_names() -> list:
    """Every golden fixture name, experiment grid plus composite runs."""
    return sorted(golden_configs()) + ["fleet_tiny"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="(re)generate the golden fixtures instead of verifying them",
    )
    args = parser.parse_args(argv)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    failures = []
    for name in golden_names():
        path = GOLDEN_DIR / f"{name}.json"
        flat = compute_golden(name)
        if args.write:
            path.write_text(json.dumps(flat, indent=1) + "\n")
            print(f"wrote {path.relative_to(REPO_ROOT)}")
        else:
            if not path.exists():
                failures.append(f"{name}: missing fixture {path}")
                continue
            if json.loads(path.read_text()) != flat:
                failures.append(f"{name}: result diverged from golden fixture")
            else:
                print(f"ok {name}")
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
