#!/usr/bin/env python
"""Lint: no inline magic epsilons in ``tests/equivalence/``.

The differential harness's whole value is that its tolerances are a
*declared contract*: every slack lives as a named constant in
``tests/equivalence/tolerances.py`` with a written rationale, so
widening one is a reviewed decision rather than a drive-by edit inside
an assertion.  This check enforces the house rule mechanically -- any
approximate assertion in ``tests/equivalence/`` (an ordering comparison,
a ``pytest.approx``, a ``math.isclose``) that carries a bare float
literal instead of a named tolerance constant is a violation.

What trips it::

    assert rel_error < 0.05                     # magic epsilon
    assert x == pytest.approx(y, rel=1e-6)      # inline rel
    assert math.isclose(a, b, abs_tol=1e-9)     # inline abs_tol

What passes::

    assert rel_error < tol.SPLICE_MEAN_POWER_RTOL
    assert x == pytest.approx(y, rel=BATCH_MEAN_POWER_RTOL)
    assert count > 0 and len(records) >= 200    # integers are counts
    assert worst > 0.0                          # zero is not a slack

``0.0`` is exempt: comparing against zero asserts exactness, not an
approximation -- the zero-slack *contract* itself still lives as a
named constant (``BATCH_EVENT_TIME_ABS_S``) where its rationale is.

A line can opt out with ``# tolerance: <reason>`` on it or the line
above, for the rare assertion whose bound is structural rather than a
measurement slack.

Run directly (``python tools/check_tolerances.py``) or via the test
suite (``tests/test_tooling.py``); CI's lints job picks it up with the
other ``check_*`` tools.  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List

DEFAULT_ROOT = Path(__file__).resolve().parents[1] / "tests" / "equivalence"

#: The one file allowed to spell out float literals: the declarations.
DECLARATIONS = "tolerances.py"

PRAGMA = "# tolerance:"

_ORDERING = (ast.Gt, ast.GtE, ast.Lt, ast.LtE)
_APPROX_CALLEES = {"approx", "isclose"}
_TOLERANCE_KWARGS = {"rel", "abs", "rel_tol", "abs_tol"}


def _has_pragma(lines: List[str], lineno: int) -> bool:
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines) and PRAGMA in lines[candidate - 1]:
            return True
    return False


def _float_literals(node: ast.AST) -> Iterator[ast.Constant]:
    """Non-zero float literals anywhere under ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, float)
            and sub.value != 0.0
        ):
            yield sub


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def find_violations(root: Path) -> Iterator[str]:
    """Yield ``path:line: source -- why`` per inline epsilon."""
    for path in sorted(root.rglob("*.py")):
        if path.name == DECLARATIONS:
            continue
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Compare) and any(
                isinstance(op, _ORDERING) for op in node.ops
            ):
                offenders = list(_float_literals(node))
            elif (
                isinstance(node, ast.Call)
                and _callee_name(node) in _APPROX_CALLEES
            ):
                offenders = [
                    literal
                    for keyword in node.keywords
                    if keyword.arg in _TOLERANCE_KWARGS
                    for literal in _float_literals(keyword.value)
                ]
            else:
                continue
            for literal in offenders:
                if _has_pragma(lines, literal.lineno):
                    continue
                line = lines[literal.lineno - 1].strip()
                yield (
                    f"{path}:{literal.lineno}: {line} -- inline epsilon "
                    f"{literal.value!r}"
                )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    violations = sorted(set(find_violations(root)))
    if violations:
        print(
            "approximate assertions in tests/equivalence/ must use a "
            "named constant from tolerances.py (or justify with "
            f"`{PRAGMA} <reason>`):"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
