#!/usr/bin/env python
"""Lint: every tracer emission in ``src/repro`` must be guard-gated.

The observability layer's core promise is zero cost when off: a
simulation run without ``--trace`` must not build event kwargs or touch
the tracer's subscriber list in its hot loop.  The convention is to
cheap-check ``tracer.enabled`` first::

    if tracer.enabled:
        tracer.emit(EventKind.IO_SUBMIT, component, nbytes=n)

or to bail out of the whole helper early::

    if not tracer.enabled or self._resident is None:
        return
    tracer.emit(...)

This check walks the AST and flags any ``*.emit(...)`` call that is
neither inside an ``if`` whose test reads an ``.enabled`` attribute nor
preceded (in the same function) by an ``.enabled`` early-return guard.
Call sites that are safe for a different, deliberate reason -- e.g. a
cold path whose caller hands in a null-object tracer -- can opt out
with an ``# obs-guard: <reason>`` comment on the call line or the line
above it.

``repro/obs`` itself is exempt: it *implements* the tracer, so its
internal ``self.emit`` calls are behind the enabled check by
construction.

Run directly (``python tools/check_obs_guards.py``) or via the test
suite (``tests/test_tooling.py``).  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List

DEFAULT_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Comment marker exempting one emission (state the reason after it).
PRAGMA = "# obs-guard:"

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _mentions_enabled(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "enabled"
        for sub in ast.walk(node)
    )


def _has_pragma(lines: List[str], lineno: int) -> bool:
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines) and PRAGMA in lines[candidate - 1]:
            return True
    return False


def _is_guarded(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> bool:
    node: ast.AST = call
    while node in parents:
        parent = parents[node]
        if isinstance(parent, ast.If) and _mentions_enabled(parent.test):
            return True
        if isinstance(parent, _FUNCTIONS):
            # An `if not tracer.enabled: return` (or raise) earlier in
            # the same function guards everything after it.
            for stmt in parent.body:
                if stmt.lineno >= call.lineno:
                    break
                if (
                    isinstance(stmt, ast.If)
                    and _mentions_enabled(stmt.test)
                    and stmt.body
                    and isinstance(stmt.body[-1], (ast.Return, ast.Raise))
                ):
                    return True
            # Guards do not cross function boundaries: a guarded outer
            # function says nothing about a closure defined inside it.
            return False
        node = parent
    return False


def find_violations(root: Path) -> Iterator[str]:
    """Yield ``path:line: source`` for every unguarded ``.emit(...)``."""
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if relative.parts and relative.parts[0] == "obs":
            continue
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            if _has_pragma(lines, node.lineno):
                continue
            if _is_guarded(node, parents):
                continue
            line = lines[node.lineno - 1].strip()
            yield f"{path}:{node.lineno}: {line}"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    violations = list(find_violations(root))
    if violations:
        print(
            "unguarded tracer emission (wrap in `if tracer.enabled:` or "
            f"justify with `{PRAGMA} <reason>`):"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
