#!/usr/bin/env python
"""Lint: forbid the builtin ``hash()`` anywhere in ``src/repro``.

``hash()`` over anything containing a string is randomized per interpreter
process (``PYTHONHASHSEED``), which once made sweep seeds differ on every
run and would make parallel workers disagree with sequential execution.
Deterministic digests (``hashlib.blake2b``, ``zlib.crc32``) are the
sanctioned replacements; this check keeps the bug class from returning.

Run directly (``python tools/check_no_bare_hash.py``) or via the test
suite (``tests/test_tooling.py``).  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator

DEFAULT_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def find_violations(root: Path) -> Iterator[str]:
    """Yield ``path:line: source`` for every builtin ``hash(...)`` call.

    AST-based, so mentions in comments/docstrings and calls of *other*
    callables ending in ``hash`` (``hashlib.blake2b``,
    ``config_content_hash``, ``obj.__hash__``) do not trip it.
    """
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                line = lines[node.lineno - 1].strip()
                yield f"{path}:{node.lineno}: {line}"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    violations = list(find_violations(root))
    if violations:
        print(
            "builtin hash() is randomized per process (PYTHONHASHSEED); "
            "use hashlib.blake2b or zlib.crc32 instead:"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
