#!/usr/bin/env python
"""Lint: forbid exception-swallowing handlers in ``src/repro``.

A resilience subsystem lives or dies by honest error propagation.  Two
patterns silently eat errors and are banned in library code:

- bare ``except:`` -- catches ``KeyboardInterrupt`` and ``SystemExit``,
  so a Ctrl-C during a sweep can be swallowed by the very code whose job
  is to checkpoint and stop cleanly;
- ``except Exception: pass`` (or ``...``) -- keeps the interrupt path
  alive but turns every programming error into silence.

What remains legal, deliberately:

- catching ``Exception`` and *doing something* with it (``PointFailure``
  capture in the executor does exactly this);
- narrow swallows such as ``except OSError: pass`` or
  ``contextlib.suppress(OSError)`` -- naming the exception is the
  reviewer-visible statement that this specific failure is expected.

Run directly (``python tools/check_no_bare_except.py``) or via the test
suite (``tests/test_tooling.py``).  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator

DEFAULT_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Handler types whose body may not be only ``pass``/``...``.
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches Exception/BaseException (incl. tuples)."""
    def names(node: ast.expr) -> Iterator[str]:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                yield from names(element)

    assert handler.type is not None
    return any(name in _BROAD_NAMES for name in names(handler.type))


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing (``pass`` / ``...`` only)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def find_violations(root: Path) -> Iterator[str]:
    """Yield ``path:line: reason`` for every banned handler."""
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (
                    f"{path}:{node.lineno}: bare 'except:' (catches "
                    "KeyboardInterrupt/SystemExit; name the exception)"
                )
            elif _is_broad(node) and _swallows(node):
                yield (
                    f"{path}:{node.lineno}: 'except Exception: pass' "
                    "silently swallows errors (handle it or narrow the type)"
                )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    violations = list(find_violations(root))
    if violations:
        print(
            "exception-swallowing handlers are banned in library code "
            "(capture the error or name the specific exception type):"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
