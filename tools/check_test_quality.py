#!/usr/bin/env python
"""Lint: forbid vacuous tests in ``tests/``.

Three patterns make a test look like coverage while verifying nothing,
and each has silently neutered a real suite before:

- ``assert True`` (or any constant-valued assert): always passes, keeps
  the name in the report, checks nothing.  Usually the fossil of a
  deleted assertion.
- ``pytest.skip()`` / ``pytest.mark.skip`` without a reason: the suite
  shrinks with no record of why, so nobody ever unskips it.
- assertion-less test functions: a test that calls the code under test
  but asserts nothing only proves the absence of exceptions, and should
  say so with an explicit assert on the result.

A test counts as asserting when it contains an ``assert`` statement,
uses a ``pytest.raises``/``warns``/``fail``/``skip``/``xfail`` call, or
calls any helper whose name mentions ``assert`` (``assert_allclose``
and friends).  Fixtures, helpers, and non-test functions are ignored.

Run directly (``python tools/check_test_quality.py``) or via the test
suite (``tests/test_tooling.py``).  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator

DEFAULT_ROOT = Path(__file__).resolve().parents[1] / "tests"

#: pytest calls that make a test meaningful without an ``assert``.
_ASSERTING_PYTEST_CALLS = {"raises", "warns", "fail", "skip", "xfail", "importorskip"}


def _is_pytest_attr(node: ast.expr, names: set[str]) -> bool:
    """True for ``pytest.<name>`` or ``pytest.mark.<name>``."""
    if not isinstance(node, ast.Attribute) or node.attr not in names:
        return False
    value = node.value
    if isinstance(value, ast.Name):
        return value.id == "pytest"
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "mark"
        and isinstance(value.value, ast.Name)
        and value.value.id == "pytest"
    )


def _constant_asserts(tree: ast.AST) -> Iterator[ast.Assert]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert) and isinstance(node.test, ast.Constant):
            yield node


def _bare_skips(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and _is_pytest_attr(node.func, {"skip"})
            and not node.args
            and not any(kw.arg == "reason" for kw in node.keywords)
        ):
            yield node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                if _is_pytest_attr(decorator, {"skip"}):
                    yield decorator  # @pytest.mark.skip with no reason


def _asserts_something(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Assert):
            return True
        if isinstance(node, ast.Call):
            if _is_pytest_attr(node.func, _ASSERTING_PYTEST_CALLS):
                return True
            name = ""
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if "assert" in name:
                return True
    return False


def find_violations(root: Path) -> Iterator[str]:
    """Yield ``path:line: message`` for every vacuous-test pattern."""
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        for node in _constant_asserts(tree):
            yield f"{path}:{node.lineno}: constant assert verifies nothing"
        for node in _bare_skips(tree):
            yield f"{path}:{node.lineno}: skip without a reason"
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name.startswith("test_")
                and not _asserts_something(node)
            ):
                yield (
                    f"{path}:{node.lineno}: test '{node.name}' contains "
                    "no assertion"
                )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    root = Path(argv[0]) if argv else DEFAULT_ROOT
    violations = list(find_violations(root))
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} test-quality violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
