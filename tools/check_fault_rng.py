#!/usr/bin/env python
"""Lint: fault/policy code may only draw randomness from keyed streams.

The determinism story for fault injection and online control rests on
one rule: every random draw comes from a *named*
:class:`~repro.sim.rng.RngStreams` stream under the ``faults.`` or
``policy.`` prefix.  A stray ``random.random()``, a module-level
``numpy.random`` call, or an ad-hoc ``default_rng()`` in those packages
would decouple fault sequences from the experiment seed and silently
break bit-reproducibility across processes and ``PYTHONHASHSEED``
values.

This check walks the AST of ``src/repro/faults`` and
``src/repro/policy`` and flags:

- any import of the stdlib ``random`` module or of ``numpy.random``;
- any call to ``default_rng(...)`` / ``RandomState(...)``;
- any ``<rng-ish>.get(...)`` call -- a receiver whose expression
  mentions a name or attribute containing ``rng`` or equal to
  ``streams`` -- whose first argument is not a string literal (or
  f-string head) starting with ``faults.`` or ``policy.``.

Call sites that are deliberate exceptions can opt out with a
``# fault-rng: <reason>`` comment on the offending line or the line
above it.

Run directly (``python tools/check_fault_rng.py``) or via the test
suite (``tests/test_tooling.py``).  Exit status 0 = clean, 1 = violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List

_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"
DEFAULT_ROOTS = (_SRC / "faults", _SRC / "policy")

#: Comment marker exempting one draw (state the reason after it).
PRAGMA = "# fault-rng:"

#: Stream-name prefixes the keyed-stream rule allows.
ALLOWED_PREFIXES = ("faults.", "policy.")

_FORBIDDEN_CALLS = ("default_rng", "RandomState")


def _has_pragma(lines: List[str], lineno: int) -> bool:
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines) and PRAGMA in lines[candidate - 1]:
            return True
    return False


def _mentions_rng(node: ast.AST) -> bool:
    """Whether an expression looks like an RNG-stream registry."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            name = sub.id.lower()
        elif isinstance(sub, ast.Attribute):
            name = sub.attr.lower()
        else:
            continue
        if "rng" in name or name == "streams":
            return True
    return False


def _first_arg_is_keyed(call: ast.Call) -> bool:
    if not call.args:
        return False
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value.startswith(ALLOWED_PREFIXES)
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value.startswith(ALLOWED_PREFIXES)
    return False


def _violation_reason(node: ast.AST) -> str | None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random" or alias.name.startswith("numpy.random"):
                return f"import of {alias.name!r}"
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "random" or module.startswith("numpy.random"):
            return f"import from {module!r}"
        if module == "numpy" and any(
            alias.name == "random" for alias in node.names
        ):
            return "import of numpy.random"
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _FORBIDDEN_CALLS:
            return f"ad-hoc generator {name}(...)"
        if (
            name == "get"
            and isinstance(func, ast.Attribute)
            and _mentions_rng(func.value)
            and not _first_arg_is_keyed(node)
        ):
            return (
                "stream name is not a literal under "
                + "/".join(repr(p) for p in ALLOWED_PREFIXES)
            )
    return None


def find_violations(roots) -> Iterator[str]:
    """Yield ``path:line: reason`` for every unkeyed randomness source."""
    for root in roots:
        for path in sorted(Path(root).rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            lines = source.splitlines()
            tree = ast.parse(source, filename=str(path))
            for node in ast.walk(tree):
                reason = _violation_reason(node)
                if reason is None:
                    continue
                if _has_pragma(lines, node.lineno):
                    continue
                line = lines[node.lineno - 1].strip()
                yield f"{path}:{node.lineno}: {reason}: {line}"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    roots = [Path(arg) for arg in argv] if argv else list(DEFAULT_ROOTS)
    violations = list(find_violations(roots))
    if violations:
        print(
            "unkeyed randomness in fault/policy code (draw from a "
            "literal 'faults.*'/'policy.*' stream or justify with "
            f"`{PRAGMA} <reason>`):"
        )
        for violation in violations:
            print(f"  {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
