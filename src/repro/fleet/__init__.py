"""Fleet-scale power-adaptive cluster simulation.

The paper models one device at a time; this package scales the question
up to a cluster: tens-to-hundreds of heterogeneous devices behind a
datacenter front-end, governed against one global power budget.  The
pieces:

- :mod:`repro.fleet.api` -- the :class:`BudgetAllocator` protocol and
  its value types (:class:`DeviceView`, :class:`BudgetSplit`).
- :mod:`repro.fleet.model` -- the *offline* allocator: the paper's
  section 3.3 fleet Pareto composition (:class:`FleetModel`), moved
  here from ``repro.core.fleet`` (which remains a deprecated alias).
- :mod:`repro.fleet.governor` -- the *online* allocator: demand-weighted
  water-filling from live meters (:class:`ClusterGovernor`).
- :mod:`repro.fleet.workload` -- the diurnal, tenant-skewed front-end
  stream (:class:`FrontEnd`).
- :mod:`repro.fleet.cluster` -- :func:`run_fleet`: baseline + governed
  phases over the process-pool executor, per-device caps actuated
  through :mod:`repro.policy`, mergeable fleet metrics, run-ledger
  provenance and validation verdicts.

House rule (same as :mod:`repro.policy` / :mod:`repro.faults`): nothing
in :mod:`repro.core` imports this package -- a non-fleet run never loads
it, which ``tests/fleet/test_determinism.py`` pins with a poisoned
import.
"""

from repro.fleet.api import BudgetAllocator, BudgetSplit, DeviceView
from repro.fleet.cluster import (
    DEFAULT_MIX,
    FleetEpoch,
    FleetResult,
    FleetSpec,
    device_power_range,
    run_fleet,
)
from repro.fleet.governor import ClusterGovernor
from repro.fleet.model import FleetAllocation, FleetModel
from repro.fleet.workload import FrontEnd

__all__ = [
    "BudgetAllocator",
    "BudgetSplit",
    "ClusterGovernor",
    "DEFAULT_MIX",
    "DeviceView",
    "FleetAllocation",
    "FleetEpoch",
    "FleetModel",
    "FleetResult",
    "FleetSpec",
    "FrontEnd",
    "device_power_range",
    "run_fleet",
]
