"""The fleet budget-allocation protocol: one API, two planners.

The paper derives per-device power-throughput models and composes them
into a fleet Pareto frontier (section 3.3); ROADMAP item 1 asks what
that buys a *cluster operator*.  The answer is one small contract:

- :class:`DeviceView` -- what the allocator is allowed to know about a
  device at decision time: its actuator range (floor/ceiling watts, the
  same range :class:`~repro.policy.runtime.PolicyRuntime` derives from
  the device config) plus live signals (last measured draw, offered
  load).
- :class:`BudgetSplit` -- a division of the global budget into
  per-device caps, in the same slot order as the views.
- :class:`BudgetAllocator` -- anything that turns ``(budget_w, views)``
  into per-device caps.

Two implementations ship:

- :class:`~repro.fleet.model.FleetModel` plans *offline* from fitted
  models (greedy marginal throughput-per-watt along the concave hull of
  each device's frontier); it ignores the live views.
- :class:`~repro.fleet.governor.ClusterGovernor` governs *online* from
  live meters (demand-weighted water-filling between actuator floors
  and ceilings); it needs no fitted model.

Both return an object exposing ``caps_w`` (per-slot cap tuple) and
``total_power_w`` (their sum); :func:`repro.fleet.cluster.run_fleet`
actuates whichever it is given through the per-device policy runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

__all__ = ["BudgetAllocator", "BudgetSplit", "DeviceView"]


@dataclass(frozen=True)
class DeviceView:
    """What a fleet allocator may know about one device slot.

    Attributes:
        label: Device catalog label (``ssd2``, ``hdd``, ...); purely
            informational -- allocation must key on the numbers, not
            the name.
        floor_w: Lowest power cap the device's actuator can honor (its
            deepest operational rung; caps below it are unactuatable).
        ceiling_w: Highest useful cap (full-performance draw); budget
            handed out above it is wasted.
        measured_w: Last measured mean draw (the "live meter"); 0.0
            when no measurement exists yet.
        demand: Relative offered load on this device (unitless; only
            ratios between slots matter).  0.0 means idle.
    """

    label: str
    floor_w: float
    ceiling_w: float
    measured_w: float = 0.0
    demand: float = 0.0

    def __post_init__(self) -> None:
        if not self.floor_w > 0:
            raise ValueError(
                f"floor_w must be positive, got {self.floor_w!r}"
            )
        if self.ceiling_w < self.floor_w:
            raise ValueError(
                f"ceiling_w ({self.ceiling_w!r}) must be >= floor_w "
                f"({self.floor_w!r})"
            )
        if self.measured_w < 0 or self.demand < 0:
            raise ValueError("measured_w and demand must be >= 0")


@dataclass(frozen=True)
class BudgetSplit:
    """A global budget divided into per-device caps.

    Attributes:
        caps_w: One cap per device slot, in view order.  Every cap sits
            inside its device's ``[floor_w, ceiling_w]`` range.
        budget_w: The global budget the split was computed for.
        deficit_w: How far the budget fell short of the sum of floors
            (0.0 when feasible).  A nonzero deficit means the fleet
            cannot track the budget by shaping alone -- the operator
            must stand devices down (standby) to close the gap, which
            is out of scope for cap allocation.
    """

    caps_w: tuple[float, ...]
    budget_w: float
    deficit_w: float = 0.0

    @property
    def total_power_w(self) -> float:
        """Sum of the handed-out caps (never exceeds ``budget_w`` when
        feasible; equals the floor sum when in deficit)."""
        return sum(self.caps_w)

    def describe(self) -> str:
        text = (
            f"{len(self.caps_w)} caps, {self.total_power_w:.1f} W of "
            f"{self.budget_w:.1f} W budget"
        )
        if self.deficit_w > 0:
            text += f" (deficit {self.deficit_w:.1f} W: floors exceed budget)"
        return text


@runtime_checkable
class BudgetAllocator(Protocol):
    """Anything that divides a fleet power budget into per-device caps.

    Implementations must accept a budget and (optionally) live
    per-device views, and return an object exposing ``caps_w`` -- one
    cap per device slot -- and ``total_power_w``.  Offline planners
    (:class:`~repro.fleet.model.FleetModel`) may ignore ``views``;
    online governors (:class:`~repro.fleet.governor.ClusterGovernor`)
    require them.
    """

    def allocate(
        self,
        budget_w: float,
        views: Optional[Sequence[DeviceView]] = None,
    ):  # -> object with .caps_w / .total_power_w
        ...
