"""Multi-device model composition and offline fleet power budgeting.

Paper section 3.3: "In scenarios with multiple, heterogeneous devices,
power-throughput models of multiple devices can be combined to derive the
performance Pareto frontier of device configurations under a power budget."

:class:`FleetModel` does exactly that: it holds one
:class:`~repro.core.model.PowerThroughputModel` per device (devices may
repeat -- a storage server with 16 identical SSDs is 16 entries) and

- composes the fleet-level Pareto frontier,
- allocates a fleet power budget across devices by greedy marginal
  throughput-per-watt, which is optimal along the concave hull of each
  device's frontier.

It is the *offline* half of the :class:`~repro.fleet.api.BudgetAllocator`
protocol: it plans from fitted models and ignores live device views (the
online half, :class:`~repro.fleet.governor.ClusterGovernor`, does the
opposite).  This module moved here from ``repro.core.fleet``, which
remains as a deprecated alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro._units import mib_per_s
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.pareto import pareto_frontier
from repro.fleet.api import DeviceView

__all__ = ["FleetAllocation", "FleetModel"]


@dataclass(frozen=True)
class FleetAllocation:
    """A per-device configuration choice for the whole fleet.

    Attributes:
        assignments: Chosen operating point per device slot (same order as
            the fleet's models); ``None`` means the device could not be
            given any point under the budget (treated as its minimum-power
            point by the power accounting).
        total_power_w / total_throughput_bps: Fleet sums.
    """

    assignments: tuple[Optional[ModelPoint], ...]
    total_power_w: float
    total_throughput_bps: float

    @property
    def caps_w(self) -> tuple[float, ...]:
        """Per-slot power caps (the chosen point's draw; 0.0 for an
        unassigned slot), satisfying the ``BudgetSplit`` half of the
        :class:`~repro.fleet.api.BudgetAllocator` contract."""
        return tuple(
            0.0 if a is None else a.power_w for a in self.assignments
        )

    def describe(self) -> str:
        active = sum(1 for a in self.assignments if a is not None)
        return (
            f"{active}/{len(self.assignments)} devices configured, "
            f"{self.total_power_w:.1f} W, "
            f"{mib_per_s(self.total_throughput_bps):.0f} MiB/s"
        )


class FleetModel:
    """A set of per-device power-throughput models managed together."""

    def __init__(self, models: Sequence[PowerThroughputModel]) -> None:
        if not models:
            raise ValueError("a fleet needs at least one device model")
        self.models = tuple(models)

    @property
    def min_power_w(self) -> float:
        """Fleet floor: every device at its lowest-power operating point."""
        return sum(m.min_power_w for m in self.models)

    @property
    def max_power_w(self) -> float:
        return sum(m.max_power_w for m in self.models)

    @property
    def max_throughput_bps(self) -> float:
        return sum(m.max_throughput_bps for m in self.models)

    # -- frontier composition ------------------------------------------------

    def device_frontiers(self) -> list[list[ModelPoint]]:
        return [pareto_frontier(m.points) for m in self.models]

    def allocate(
        self,
        budget_w: float,
        views: Optional[Sequence[DeviceView]] = None,
    ) -> FleetAllocation:
        """Greedy marginal-throughput-per-watt allocation of ``budget_w``.

        Every device starts at its cheapest frontier point; remaining budget
        buys frontier upgrades in order of throughput-gained per extra watt.
        Raises ``ValueError`` if the budget cannot even cover the fleet's
        floor (the operator must stand devices down instead -- see
        :mod:`repro.core.redirection`).

        ``views`` is accepted for :class:`~repro.fleet.api.BudgetAllocator`
        compatibility and ignored: an offline plan is a function of the
        fitted models alone, so the same budget always yields the same
        allocation regardless of live load.
        """
        del views  # offline planner: fitted models already encode demand
        frontiers = self.device_frontiers()
        floor = sum(f[0].power_w for f in frontiers)
        if budget_w < floor:
            raise ValueError(
                f"budget {budget_w:.1f} W below fleet floor {floor:.1f} W; "
                "stand devices down (standby) instead of shaping"
            )
        level = [0] * len(frontiers)  # index into each device's frontier
        spent = floor

        def upgrade_gain(i: int) -> Optional[tuple[float, float, float]]:
            """(gain per watt, extra watts, extra throughput) of next step."""
            frontier = frontiers[i]
            if level[i] + 1 >= len(frontier):
                return None
            current, nxt = frontier[level[i]], frontier[level[i] + 1]
            extra_w = nxt.power_w - current.power_w
            extra_t = nxt.throughput_bps - current.throughput_bps
            if extra_w <= 0:
                return (float("inf"), extra_w, extra_t)
            return (extra_t / extra_w, extra_w, extra_t)

        while True:
            best_i, best = -1, None
            for i in range(len(frontiers)):
                gain = upgrade_gain(i)
                if gain is None:
                    continue
                if gain[1] > budget_w - spent + 1e-12:
                    continue
                if best is None or gain[0] > best[0]:
                    best_i, best = i, gain
            if best is None:
                break
            level[best_i] += 1
            spent += best[1]

        assignments = tuple(
            frontiers[i][level[i]] for i in range(len(frontiers))
        )
        return FleetAllocation(
            assignments=assignments,
            total_power_w=sum(a.power_w for a in assignments),
            total_throughput_bps=sum(a.throughput_bps for a in assignments),
        )

    def fleet_frontier(self, steps: int = 20) -> list[tuple[float, float]]:
        """Sampled fleet-level (power, throughput) frontier.

        Evaluates :meth:`allocate` across ``steps`` budgets between the
        fleet floor and maximum power.
        """
        if steps < 2:
            raise ValueError("steps must be >= 2")
        lo, hi = self.min_power_w, self.max_power_w
        samples = []
        for k in range(steps):
            budget = lo + (hi - lo) * k / (steps - 1)
            allocation = self.allocate(budget)
            samples.append(
                (allocation.total_power_w, allocation.total_throughput_bps)
            )
        return samples
