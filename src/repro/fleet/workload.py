"""Datacenter front-end: a diurnal, tenant-skewed request stream.

A fleet simulation is only as interesting as its load.  This module
models the front-end of a storage cluster the way capacity papers
describe one:

- **Tenants with Zipf skew.**  ``tenants`` logical customers carry
  weight ``1 / rank**skew`` (normalized): a handful of heavy hitters
  dominate, with a long light tail -- the shape behind every "top-k
  tenants drive most of the IO" observation.
- **Deterministic placement.**  Each tenant is pinned to one device
  slot by a keyed ``blake2b`` hash of ``(seed, tenant)`` -- the same
  house rule as every other seed derivation in this repo (never the
  builtin ``hash()``), so placement is bit-identical across processes
  and ``PYTHONHASHSEED`` values.
- **Diurnal intensity.**  Offered load follows a day/night cosine
  across the run's epochs, peaking at epoch 0 ("midnight deploy" shape
  is the governor's problem, not the front-end's).

Per (device, epoch), the front-end emits a relative demand (what the
cluster governor weighs) and a concrete :class:`~repro.iogen.spec.JobSpec`
(what the device simulates): queue depth scales with demand, and the
access mix -- block size, read/write -- comes from the device's heaviest
tenant.  Everything is a pure function of ``(spec fields, indices)``;
there is no RNG stream and no state.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro._units import KiB
from repro.iogen.spec import IoPattern, JobSpec
from repro.studies.common import StudyScale

__all__ = ["FrontEnd"]

#: Day/night swing of offered load: the trough is this fraction of peak.
_NIGHT_FRACTION = 0.35

#: Peak per-device queue depth at demand 1.0 (the paper's sweep top end).
_PEAK_IODEPTH = 16

#: Access mix by tenant rank (rank cycles through these): heavy tenants
#: stream large sequential-ish writes, light tenants do small reads.
_TENANT_MIX = (
    (256 * KiB, IoPattern.RANDWRITE),
    (64 * KiB, IoPattern.RANDWRITE),
    (16 * KiB, IoPattern.RANDREAD),
    (4 * KiB, IoPattern.RANDREAD),
)


def _place(seed: int, tenant: int, n_devices: int) -> int:
    """Deterministic tenant -> device slot placement (keyed blake2b)."""
    digest = hashlib.blake2b(
        f"fleet.place:{seed}:{tenant}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_devices


@dataclass(frozen=True)
class FrontEnd:
    """The request-stream generator for one fleet run.

    Attributes:
        n_devices: Device slots behind the load balancer.
        tenants: Logical customers generating load.
        skew: Zipf exponent of the tenant weight distribution
            (0 = uniform; ~1 = classic heavy-tailed).
        seed: Placement seed (feeds the keyed hash, nothing else).
    """

    n_devices: int
    tenants: int
    skew: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(
                f"n_devices must be >= 1, got {self.n_devices!r}"
            )
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants!r}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew!r}")

    # -- tenants ---------------------------------------------------------

    def tenant_weights(self) -> tuple[float, ...]:
        """Normalized Zipf weights, heaviest first (rank 1 = index 0)."""
        raw = [1.0 / (rank**self.skew) for rank in range(1, self.tenants + 1)]
        total = sum(raw)
        return tuple(w / total for w in raw)

    def placement(self) -> tuple[int, ...]:
        """Device slot per tenant (index = tenant rank - 1)."""
        return tuple(
            _place(self.seed, tenant, self.n_devices)
            for tenant in range(self.tenants)
        )

    # -- time ------------------------------------------------------------

    def intensity(self, epoch: int, epochs: int) -> float:
        """Fleet-wide offered-load factor in (0, 1] for one epoch.

        A cosine day: 1.0 at epoch 0, dipping to ``_NIGHT_FRACTION``
        half way through the run, back to peak at the end.
        """
        if not 0 <= epoch < epochs:
            raise ValueError(f"epoch {epoch} outside 0..{epochs - 1}")
        phase = (epoch + 0.5) / epochs
        mid = 0.5 * (1.0 + _NIGHT_FRACTION)
        amp = 0.5 * (1.0 - _NIGHT_FRACTION)
        return mid + amp * math.cos(2.0 * math.pi * phase)

    # -- per-device load -------------------------------------------------

    def demands(self, epoch: int, epochs: int) -> tuple[float, ...]:
        """Relative offered load per device slot for one epoch.

        The tenant weights landing on each slot are summed and scaled
        by the diurnal intensity and the device count, so a perfectly
        balanced fleet at peak sees demand ~1.0 per slot; skewed
        placement pushes hot slots above and cold slots below.
        """
        weights = self.tenant_weights()
        placement = self.placement()
        load = [0.0] * self.n_devices
        for tenant, slot in enumerate(placement):
            load[slot] += weights[tenant]
        scale = self.intensity(epoch, epochs) * self.n_devices
        return tuple(share * scale for share in load)

    def _dominant_tenant(self, slot: int) -> int:
        """The heaviest tenant on a slot (lowest rank wins ties); the
        slot's access mix follows it.  Unloaded slots serve rank 0."""
        placement = self.placement()
        for tenant, where in enumerate(placement):
            if where == slot:
                return tenant
        return 0

    def job_for(
        self,
        slot: int,
        epoch: int,
        epochs: int,
        scale: StudyScale,
        device: str,
    ) -> JobSpec:
        """The concrete job one device slot runs for one epoch.

        Stop rules (runtime, byte budget) come from ``scale`` exactly
        like every other study; demand moves the queue depth between 1
        and ``_PEAK_IODEPTH`` and the dominant tenant fixes block size
        and pattern.
        """
        demand = self.demands(epoch, epochs)[slot]
        iodepth = max(1, min(_PEAK_IODEPTH, round(demand * _PEAK_IODEPTH)))
        block_size, pattern = _TENANT_MIX[
            self._dominant_tenant(slot) % len(_TENANT_MIX)
        ]
        base = scale.job(pattern, block_size, iodepth, device)
        return base
