"""Fleet-scale cluster simulation: a governor over many governed devices.

This is the runner behind ``repro fleet`` and
:mod:`repro.studies.fleet_scale`.  One :func:`run_fleet` call simulates
``len(spec.devices)`` heterogeneous devices for ``spec.epochs`` epochs,
twice:

- **Baseline phase** -- every (device, epoch) job from the
  :class:`~repro.fleet.workload.FrontEnd` runs uncontrolled, in one
  deterministic process-pool batch
  (:func:`repro.core.parallel.run_configs`).  This establishes the
  fleet's natural draw and tail latency under the same diurnal,
  tenant-skewed stream.
- **Governed phase** -- epoch by epoch, the
  :class:`~repro.fleet.api.BudgetAllocator` re-divides the global
  budget (a time-varying :class:`~repro.policy.spec.BudgetSchedule`
  evaluated once per epoch) into per-device caps, using last epoch's
  measured draws as its live meters; each cap is actuated through the
  existing per-device policy runtime (a ``static`` controller pinned at
  the cap), and the epoch's devices run as one pool batch.

An epoch is therefore the governor's re-division cadence: within an
epoch caps are constant and the per-device controllers do the fast
actuation; across epochs the cluster loop closes (measure -> re-divide
-> actuate), mirroring the online multi-disk DPM blueprint in PAPERS.md.

Everything observable is deterministic: jobs and placement are pure
functions of the spec, per-run seeds derive from keyed ``blake2b``, the
executor preserves submission order, and :meth:`FleetResult.digest`
condenses the whole outcome into a hash that must be byte-identical
across processes and ``PYTHONHASHSEED`` values (pinned by
``tests/fleet/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.options import ExecutionOptions
from repro.core.parallel import PointFailure, SweepExecutionError, run_configs
from repro.devices.catalog import DEVICE_PRESETS
from repro.devices.hdd_drive import HddConfig
from repro.fleet.api import BudgetAllocator, DeviceView
from repro.fleet.governor import ClusterGovernor
from repro.fleet.workload import FrontEnd
from repro.iogen.stats import LatencyStats
from repro.obs.aggregate import BucketedHistogram, SweepRollup, merge_snapshots
from repro.policy.runtime import _hdd_range, _ssd_range
from repro.policy.spec import BudgetSchedule, PolicySpec
from repro.studies.common import DEFAULT, StudyScale
from repro.validate.checkers import RESULT_INVARIANTS, check_result
from repro.validate.report import Tolerances, ValidationReport, Violation

__all__ = [
    "DEFAULT_MIX",
    "FleetEpoch",
    "FleetResult",
    "FleetSpec",
    "device_power_range",
    "run_fleet",
]

#: Heterogeneous slot mix cycled by :meth:`FleetSpec.sized` -- the
#: paper's four Table 1 devices in presentation order.
DEFAULT_MIX = ("ssd1", "ssd2", "ssd3", "hdd")

#: Fleet-level invariants checked on top of the per-result physics set.
FLEET_INVARIANTS = (
    "fleet_budget_partition",
    "fleet_cap_bounds",
    "fleet_budget_tracking",
)

#: Budget-tracking slack: relative to the epoch's baseline draw, plus an
#: absolute fleet-wide cushion in watts.  Tracking is *directional*, not
#: numeric cap adherence: several catalog actuators are rung-quantized
#: or cannot shed load-dependent power at all (the HDD's EPC under media
#: access, the SATA drive's read path), so a device pinned at its floor
#: cap can legitimately draw above the cap.  What a correct governor can
#: never do is make the fleet draw *more* than it would uncontrolled.
_TRACKING_REL = 0.03
_TRACKING_ABS_W = 0.5


def device_power_range(label: str) -> tuple[float, float]:
    """(floor_w, ceiling_w) a device preset's actuator can honor.

    Delegates to the policy runtime's range derivation so governor caps
    are, by construction, caps the per-device actuator can actually
    hold (NVMe operational power states, the analog governor envelope,
    or the HDD's EPC/seek range).
    """
    config = DEVICE_PRESETS[label]()
    if isinstance(config, HddConfig):
        floor_w, ceiling_w, _ = _hdd_range(config)
    else:
        floor_w, ceiling_w, _ = _ssd_range(config)
    return floor_w, ceiling_w


def _seed_for(base_seed: int, phase: str, slot: int, epoch: int) -> int:
    """Per-run seed from the keyed hash house rule (never ``hash()``)."""
    digest = hashlib.blake2b(
        f"fleet:{base_seed}:{phase}:{slot}:{epoch}".encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class FleetSpec:
    """One fleet simulation, fully described.

    Attributes:
        devices: Catalog label per device slot (repeats allowed; a rack
            of 16 identical SSDs is 16 entries).
        epochs: Governor re-division periods over the simulated day.
        tenants: Front-end customers generating the skewed stream.
        skew: Zipf exponent of tenant weights (0 = uniform).
        budget_low / budget_high: The global diurnal budget envelope as
            fractions of the fleet's actuator-ceiling sum.
        seed: Base seed for placement and per-run streams.
    """

    devices: tuple[str, ...]
    epochs: int = 4
    tenants: int = 64
    skew: float = 1.1
    budget_low: float = 0.55
    budget_high: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a fleet needs at least one device slot")
        unknown = sorted(set(self.devices) - set(DEVICE_PRESETS))
        if unknown:
            raise ValueError(
                f"unknown device preset(s) {unknown}; choose from "
                f"{sorted(DEVICE_PRESETS)}"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs!r}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants!r}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew!r}")
        if not 0 < self.budget_low <= self.budget_high:
            raise ValueError(
                "budget fractions must satisfy 0 < low <= high, got "
                f"low={self.budget_low!r} high={self.budget_high!r}"
            )
        if self.budget_high > 1.0:
            raise ValueError(
                f"budget_high is a fraction of fleet ceiling; "
                f"got {self.budget_high!r} > 1"
            )

    @classmethod
    def sized(
        cls,
        n_devices: int,
        mix: Sequence[str] = DEFAULT_MIX,
        **kwargs,
    ) -> "FleetSpec":
        """A spec with ``n_devices`` slots cycling through ``mix``."""
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices!r}")
        if not mix:
            raise ValueError("mix must name at least one device preset")
        devices = tuple(mix[i % len(mix)] for i in range(n_devices))
        return cls(devices=devices, **kwargs)

    def budget_schedule(self) -> BudgetSchedule:
        """The global diurnal budget over one simulated day (t in days)."""
        ceiling = sum(device_power_range(d)[1] for d in self.devices)
        return BudgetSchedule.diurnal(
            high_w=self.budget_high * ceiling,
            low_w=self.budget_low * ceiling,
            period_s=1.0,
        )


@dataclass(frozen=True)
class FleetEpoch:
    """One governor period: what was asked, granted, and measured.

    Attributes:
        index: Epoch number (0-based).
        budget_w: Global budget the schedule imposed this epoch.
        allocated_w: Sum of the caps the allocator handed out.
        deficit_w: Floor shortfall reported by the allocator (0 when
            the budget was feasible).
        measured_w: Governed fleet draw (sum of true mean powers).
        baseline_w: Uncontrolled fleet draw under the same jobs.
        p99_s / baseline_p99_s: Exact fleet-wide p99 latency over every
            IO completed in the epoch (governed / baseline).
        intensity: The front-end's diurnal load factor this epoch.
    """

    index: int
    budget_w: float
    allocated_w: float
    deficit_w: float
    measured_w: float
    baseline_w: float
    p99_s: float
    baseline_p99_s: float
    intensity: float


@dataclass(frozen=True)
class FleetResult:
    """Everything :func:`run_fleet` measured, plus the verdicts.

    Attributes:
        spec: The fleet that ran.
        epochs: Per-epoch budget/power/latency accounting.
        floors_w / ceilings_w: Actuator range per device slot.
        rollup: Per-device-class governed-phase rollup snapshot
            (:meth:`repro.obs.aggregate.SweepRollup.snapshot`).
        metrics: Fleet-wide mergeable metrics folded across epochs with
            :func:`repro.obs.aggregate.merge_snapshots` (counters plus
            a bucketed latency histogram; exact percentiles are
            per-epoch only -- see DESIGN.md section 15).
        validation: Physics invariants over every run plus the
            fleet-level budget invariants.
    """

    spec: FleetSpec
    epochs: tuple[FleetEpoch, ...]
    floors_w: tuple[float, ...]
    ceilings_w: tuple[float, ...]
    rollup: dict = field(repr=False)
    metrics: dict = field(repr=False)
    validation: ValidationReport = field(repr=False)

    @property
    def ok(self) -> bool:
        return self.validation.ok

    @property
    def baseline_power_w(self) -> float:
        """Mean uncontrolled fleet draw across epochs."""
        return sum(e.baseline_w for e in self.epochs) / len(self.epochs)

    @property
    def governed_power_w(self) -> float:
        """Mean governed fleet draw across epochs."""
        return sum(e.measured_w for e in self.epochs) / len(self.epochs)

    @property
    def harvest_fraction(self) -> float:
        """Fleet power harvested vs. the uncontrolled baseline."""
        base = self.baseline_power_w
        if base <= 0:
            return 0.0
        return (base - self.governed_power_w) / base

    @property
    def dynamic_range_w(self) -> float:
        """Peak-to-trough swing of governed fleet power -- the dynamic
        range the governor actually drove across the simulated day."""
        measured = [e.measured_w for e in self.epochs]
        return max(measured) - min(measured)

    @property
    def p99_blowup(self) -> float:
        """Worst per-epoch governed/baseline p99 ratio (1.0 = free)."""
        worst = 1.0
        for e in self.epochs:
            if e.baseline_p99_s > 0:
                worst = max(worst, e.p99_s / e.baseline_p99_s)
        return worst

    def digest(self) -> str:
        """Hex digest of every number the headline result depends on.

        Byte-identical digests across two processes mean the two fleet
        runs agreed on every epoch's budget, allocation, measured power
        and tail latency -- the cross-process determinism contract.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(repr(self.spec).encode())
        for e in self.epochs:
            h.update(
                (
                    f"{e.index}:{e.budget_w!r}:{e.allocated_w!r}:"
                    f"{e.deficit_w!r}:{e.measured_w!r}:{e.baseline_w!r}:"
                    f"{e.p99_s!r}:{e.baseline_p99_s!r}"
                ).encode()
            )
        return h.hexdigest()

    def summary(self) -> dict:
        """Compact JSON-ready digest for the run ledger close-out."""
        return {
            "devices": len(self.spec.devices),
            "epochs": len(self.epochs),
            "baseline_power_w": self.baseline_power_w,
            "governed_power_w": self.governed_power_w,
            "harvest_fraction": self.harvest_fraction,
            "dynamic_range_w": self.dynamic_range_w,
            "p99_blowup": self.p99_blowup,
            "digest": self.digest(),
        }


def _policy_for(label: str, cap_w: float) -> PolicySpec:
    """The per-device actuation of one governor cap: a static controller
    pinned at the cap, on the device class's natural decision timescale
    (mechanical vs. NVMe cadence, as in the policy tracking study)."""
    if label == "hdd":
        return PolicySpec(
            kind="static",
            budget=BudgetSchedule.constant(cap_w),
            interval_s=0.05,
            window_s=0.1,
        )
    return PolicySpec(
        kind="static",
        budget=BudgetSchedule.constant(cap_w),
        interval_s=1.5e-3,
        window_s=3e-3,
    )


def _epoch_p99(results: Sequence[ExperimentResult]) -> float:
    """Exact fleet-wide p99 over every IO the epoch completed."""
    latencies = [
        record.latency for result in results for record in result.job.records
    ]
    if not latencies:
        return 0.0
    return LatencyStats.from_latencies(latencies).p99


def _epoch_metrics(results: Sequence[ExperimentResult]) -> dict:
    """A mergeable metrics snapshot for one fleet epoch.

    Counters add and the latency histogram is bucketed, so epoch (and
    cross-shard) snapshots fold associatively through
    :func:`~repro.obs.aggregate.merge_snapshots` without fabricating
    percentiles -- the honest-aggregation contract from PR 7.
    """
    ios = 0
    nbytes = 0
    energy_j = 0.0
    histogram = BucketedHistogram()
    for result in results:
        job = result.job
        ios += len(job.records)
        nbytes += sum(r.nbytes for r in job.records)
        energy_j += result.true_mean_power_w * job.duration
        for record in job.records:
            histogram.observe(record.latency)
    return {
        "fleet.ios": {"all": {"type": "counter", "value": ios}},
        "fleet.bytes": {"all": {"type": "counter", "value": nbytes}},
        "fleet.energy_mj": {
            "all": {"type": "counter", "value": round(energy_j * 1e3)}
        },
        "fleet.latency_s": {"all": histogram.snapshot()},
    }


def _fleet_violations(
    spec: FleetSpec,
    epoch: FleetEpoch,
    caps: Sequence[float],
    floors: Sequence[float],
    ceilings: Sequence[float],
) -> list[Violation]:
    """Fleet-level budget invariants for one governed epoch."""
    violations: list[Violation] = []
    subject = f"fleet@epoch{epoch.index}"
    feasible_total = epoch.budget_w if epoch.deficit_w == 0 else sum(floors)
    if epoch.allocated_w > feasible_total + 1e-6:
        violations.append(
            Violation(
                invariant="fleet_budget_partition",
                subject=subject,
                message=(
                    "allocator handed out more than the global budget: "
                    f"{epoch.allocated_w:.3f} W of {feasible_total:.3f} W"
                ),
                measured=epoch.allocated_w,
                expected=feasible_total,
            )
        )
    for i, cap in enumerate(caps):
        if not floors[i] - 1e-9 <= cap <= ceilings[i] + 1e-9:
            violations.append(
                Violation(
                    invariant="fleet_cap_bounds",
                    subject=f"{spec.devices[i]}[{i}]@epoch{epoch.index}",
                    message=(
                        f"cap {cap:.3f} W outside actuator range "
                        f"[{floors[i]:.3f}, {ceilings[i]:.3f}] W"
                    ),
                    measured=cap,
                    expected=ceilings[i],
                )
            )
    slack = max(_TRACKING_REL * epoch.baseline_w, _TRACKING_ABS_W)
    if epoch.measured_w > epoch.baseline_w + slack:
        violations.append(
            Violation(
                invariant="fleet_budget_tracking",
                subject=subject,
                message=(
                    f"governed fleet draw {epoch.measured_w:.3f} W exceeds "
                    f"the uncontrolled baseline {epoch.baseline_w:.3f} W "
                    f"beyond slack {slack:.3f} W (capping must never cost "
                    "power)"
                ),
                measured=epoch.measured_w,
                expected=epoch.baseline_w,
            )
        )
    return violations


def run_fleet(
    spec: FleetSpec,
    scale: StudyScale = DEFAULT,
    *,
    allocator: Optional[BudgetAllocator] = None,
    budget: Optional[BudgetSchedule] = None,
    n_workers: Optional[int] = 1,
    cache_dir=None,
    ledger=None,
    tolerances: Optional[Tolerances] = None,
) -> FleetResult:
    """Simulate the fleet: baseline phase, then the governed epochs.

    Args:
        spec: The fleet to simulate.
        scale: Stop rules per device class (``QUICK`` for CI scale).
        allocator: Any :class:`~repro.fleet.api.BudgetAllocator`;
            defaults to the online :class:`ClusterGovernor`.  The
            offline :class:`~repro.fleet.model.FleetModel` drops in
            unchanged -- that interchangeability is the point of the
            protocol.
        budget: Global budget schedule in absolute watts over one
            simulated day (t in [0, 1)); defaults to the spec's diurnal
            fraction-of-ceiling envelope.
        n_workers: Process-pool width for each batch (``None`` = all
            cores); results are order- and value-deterministic either
            way.
        cache_dir: Optional :class:`~repro.core.parallel.ResultCache`
            (or path) shared by both phases.
        ledger: Optional run ledger (path or
            :class:`~repro.core.ledger.RunLedger`): appends one point
            record per run, one ``fleet`` record per epoch, and a
            ``run`` close-out carrying the validation verdict and the
            fleet digest.
        tolerances: Validation tolerances (``None`` = library defaults).

    Raises:
        SweepExecutionError: If any underlying run fails outright
            (validation violations do *not* raise -- they are reported
            in ``result.validation`` and gate the CLI exit code).
    """
    if ledger is not None:
        from repro.core.ledger import RunLedger

        ledger = ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
    if allocator is None:
        allocator = ClusterGovernor()
    if not isinstance(allocator, BudgetAllocator):
        raise TypeError(
            f"allocator {allocator!r} does not satisfy BudgetAllocator "
            "(needs an allocate(budget_w, views=None) method)"
        )
    schedule = budget if budget is not None else spec.budget_schedule()
    front = FrontEnd(
        n_devices=len(spec.devices),
        tenants=spec.tenants,
        skew=spec.skew,
        seed=spec.seed,
    )
    ranges = [device_power_range(label) for label in spec.devices]
    floors = tuple(r[0] for r in ranges)
    ceilings = tuple(r[1] for r in ranges)
    n = len(spec.devices)
    epochs = spec.epochs
    options = ExecutionOptions(
        n_workers=n_workers, cache_dir=cache_dir, ledger=ledger
    )

    def job(slot: int, epoch: int):
        return front.job_for(slot, epoch, epochs, scale, spec.devices[slot])

    def check_failures(outcomes):
        failures = [o for o in outcomes if isinstance(o, PointFailure)]
        if failures:
            raise SweepExecutionError(failures)
        return outcomes

    # -- baseline phase: every (slot, epoch), one pool batch -------------
    baseline_configs = [
        ExperimentConfig(
            device=spec.devices[slot],
            job=job(slot, epoch),
            warmup_fraction=scale.warmup(spec.devices[slot]),
            seed=_seed_for(spec.seed, "baseline", slot, epoch),
        )
        for epoch in range(epochs)
        for slot in range(n)
    ]
    baseline_flat = check_failures(run_configs(baseline_configs, options))
    baseline: list[list[ExperimentResult]] = [
        list(baseline_flat[epoch * n : (epoch + 1) * n])
        for epoch in range(epochs)
    ]

    # -- governed phase: epoch by epoch, meters feeding the allocator ----
    epoch_records: list[FleetEpoch] = []
    epoch_caps: list[tuple[float, ...]] = []
    governed: list[list[ExperimentResult]] = []
    metrics: Optional[dict] = None
    previous: Optional[list[ExperimentResult]] = None
    for epoch in range(epochs):
        budget_w = schedule.watts_at((epoch + 0.5) / epochs)
        demands = front.demands(epoch, epochs)
        meters = previous if previous is not None else baseline[0]
        views = [
            DeviceView(
                label=spec.devices[i],
                floor_w=floors[i],
                ceiling_w=ceilings[i],
                measured_w=meters[i].true_mean_power_w,
                demand=demands[i],
            )
            for i in range(n)
        ]
        split = allocator.allocate(budget_w, views)
        caps = tuple(split.caps_w)
        if len(caps) != n:
            raise ValueError(
                f"allocator returned {len(caps)} caps for {n} devices"
            )
        configs = [
            ExperimentConfig(
                device=spec.devices[i],
                job=job(i, epoch),
                warmup_fraction=scale.warmup(spec.devices[i]),
                seed=_seed_for(spec.seed, "governed", i, epoch),
                policy=_policy_for(spec.devices[i], caps[i]),
            )
            for i in range(n)
        ]
        results = list(check_failures(run_configs(configs, options)))
        record = FleetEpoch(
            index=epoch,
            budget_w=budget_w,
            allocated_w=sum(caps),
            deficit_w=getattr(split, "deficit_w", 0.0),
            measured_w=sum(r.true_mean_power_w for r in results),
            baseline_w=sum(
                r.true_mean_power_w for r in baseline[epoch]
            ),
            p99_s=_epoch_p99(results),
            baseline_p99_s=_epoch_p99(baseline[epoch]),
            intensity=front.intensity(epoch, epochs),
        )
        epoch_records.append(record)
        epoch_caps.append(caps)
        governed.append(results)
        snapshot = _epoch_metrics(results)
        metrics = (
            snapshot if metrics is None else merge_snapshots(metrics, snapshot)
        )
        previous = results
        if ledger is not None:
            ledger.append(
                {
                    "rec": "fleet",
                    "epoch": epoch,
                    "devices": n,
                    "budget_w": record.budget_w,
                    "allocated_w": record.allocated_w,
                    "deficit_w": record.deficit_w,
                    "measured_w": record.measured_w,
                    "baseline_w": record.baseline_w,
                    "p99_us": record.p99_s * 1e6,
                    "baseline_p99_us": record.baseline_p99_s * 1e6,
                    "intensity": record.intensity,
                }
            )

    # -- verdicts --------------------------------------------------------
    all_results = [r for epoch in baseline for r in epoch]
    all_results += [r for epoch in governed for r in epoch]
    violations: list[Violation] = []
    for result in all_results:
        violations.extend(check_result(result, tolerances))
    for epoch in range(epochs):
        violations.extend(
            _fleet_violations(
                spec, epoch_records[epoch], epoch_caps[epoch], floors, ceilings
            )
        )
    validation = ValidationReport(
        violations=tuple(violations),
        checked=len(all_results) + epochs,
        invariants=tuple(RESULT_INVARIANTS) + FLEET_INVARIANTS,
    )
    rollup = SweepRollup.from_results(
        [r for epoch in governed for r in epoch], group_by=("device",)
    ).snapshot()

    result = FleetResult(
        spec=spec,
        epochs=tuple(epoch_records),
        floors_w=floors,
        ceilings_w=ceilings,
        rollup=rollup,
        metrics=metrics or {},
        validation=validation,
    )
    if ledger is not None:
        from repro.core.ledger import run_record
        from repro.core.parallel import ResultCache

        record = run_record(
            "fleet",
            validation=validation,
            points=len(all_results),
            failures=0,
            cache=cache_dir.stats
            if isinstance(cache_dir, ResultCache)
            else None,
        )
        record["fleet"] = result.summary()
        ledger.append(record)
    return result
