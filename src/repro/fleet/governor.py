"""Online cluster power governor: re-divide a global budget from live meters.

The blueprint is the online multi-disk dynamic power management line of
work (PAPERS.md, "Energy-Aware Disk Storage Management"): a cluster
governor does not need fitted power-throughput models to divide a budget
-- it needs each device's actuator range and a live signal of who is
busy.  :class:`ClusterGovernor` implements the online half of the
:class:`~repro.fleet.api.BudgetAllocator` protocol with demand-weighted
water-filling:

1. Every device is granted its actuator floor (a cap below the floor is
   unactuatable, so handing out less buys nothing).
2. The remaining budget is poured proportionally to per-device weights,
   clamping at each device's ceiling and recycling the overflow, until
   the budget is exhausted or every weighted device is saturated.
3. If the budget does not even cover the sum of floors, every device is
   pinned at its floor and the shortfall is reported as
   :attr:`~repro.fleet.api.BudgetSplit.deficit_w` -- a graceful
   brownout signal, not an exception, because an online governor runs
   inside the control loop and must always produce *some* actuatable
   split (contrast :meth:`repro.fleet.model.FleetModel.allocate`, an
   offline planner that refuses infeasible budgets outright).

Weights come from the views, in precedence order: offered ``demand``
when any device reports load; else measured draw above floor (busy
devices keep their headroom); else raw actuator headroom (cold start).
The arithmetic is pure and iteration order is slot order, so a split is
a deterministic function of ``(budget_w, views)`` -- no RNG, no state,
bit-identical across processes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fleet.api import BudgetSplit, DeviceView

__all__ = ["ClusterGovernor"]

#: Watts below which remaining budget is considered fully poured.
_EPSILON_W = 1e-9


class ClusterGovernor:
    """Demand-weighted water-filling allocator over live device views."""

    def weights(self, views: Sequence[DeviceView]) -> tuple[float, ...]:
        """Per-device pour weights for the water-filling pass.

        Demand is the strongest signal (the front-end knows who it is
        loading); measured draw above floor is the fallback (a busy
        device radiates its need); actuator headroom seeds a cold start
        where neither exists.
        """
        if any(v.demand > 0 for v in views):
            return tuple(v.demand for v in views)
        if any(v.measured_w > v.floor_w for v in views):
            return tuple(max(v.measured_w - v.floor_w, 0.0) for v in views)
        return tuple(v.ceiling_w - v.floor_w for v in views)

    def allocate(
        self,
        budget_w: float,
        views: Optional[Sequence[DeviceView]] = None,
    ) -> BudgetSplit:
        """Divide ``budget_w`` into per-device caps (view order)."""
        if views is None or not views:
            raise ValueError(
                "ClusterGovernor.allocate needs live DeviceView readings; "
                "for offline planning from fitted models use "
                "FleetModel.allocate"
            )
        if not budget_w > 0:
            raise ValueError(f"budget_w must be positive, got {budget_w!r}")
        caps = [v.floor_w for v in views]
        floor_total = sum(caps)
        if budget_w <= floor_total:
            return BudgetSplit(
                caps_w=tuple(caps),
                budget_w=budget_w,
                deficit_w=floor_total - budget_w,
            )
        weights = self.weights(views)
        remaining = budget_w - floor_total
        active = [
            i
            for i, v in enumerate(views)
            if weights[i] > 0 and v.ceiling_w - caps[i] > _EPSILON_W
        ]
        while remaining > _EPSILON_W and active:
            total_weight = sum(weights[i] for i in active)
            poured = 0.0
            still_open = []
            for i in active:
                share = remaining * weights[i] / total_weight
                new_cap = min(views[i].ceiling_w, caps[i] + share)
                poured += new_cap - caps[i]
                caps[i] = new_cap
                if views[i].ceiling_w - new_cap > _EPSILON_W:
                    still_open.append(i)
            remaining -= poured
            if poured <= _EPSILON_W:
                break  # numeric dead end: nothing accepted water
            active = still_open
        return BudgetSplit(caps_w=tuple(caps), budget_w=budget_w)
