"""The supported public surface of :mod:`repro`, in one place.

Import from here (or from the :mod:`repro` top level, which re-exports the
same names) rather than from submodules: everything below is covered by
the API-surface snapshot test (``tests/test_api_surface.py``) and the
README/examples import lint (``tools/check_api_surface.py``), so it cannot
change or disappear without a deliberate snapshot update.  Submodule paths
are implementation detail and may move between releases.

The surface in one screen::

    from repro.api import (
        ExperimentConfig, run_experiment,          # one experiment
        SweepGrid, ExecutionOptions, run_sweep,    # a grid of them
        PowerThroughputModel,                      # fit the paper's model
        OnlinePowerController, FleetModel,         # act on it
        Tracer, MetricsCollector, RunProfiler,     # observe any of it
        FaultPlan,                                 # and break it on purpose
    )
"""

from repro._units import GiB, KiB, MiB
from repro.core.adaptive import AdaptivePlan, PowerAdaptivePlanner
from repro.core.asymmetric import AsymmetricPlan, AsymmetricPlanner
from repro.core.checkpoint import CheckpointJournal, PointState
from repro.core.controller import (
    BudgetSignal,
    ControlAction,
    ControllerConfig,
    DemandResponseResult,
    OnlinePowerController,
    run_demand_response,
)
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.ledger import RunLedger
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.options import ExecutionOptions
from repro.core.parallel import (
    PointFailure,
    ResultCache,
    RetryPolicy,
    SweepExecutionError,
    run_configs,
)
from repro.core.redirection import (
    RedirectionDecision,
    RedirectionPolicy,
    StandbyProfile,
)
from repro.core.sweep import (
    SweepGrid,
    SweepOutcome,
    SweepPoint,
    run_sweep,
    sweep_outcome,
)
from repro.core.telemetry import (
    PointSpan,
    ProgressUpdate,
    SweepTelemetry,
    WorkerStats,
)
from repro.core.tiering import AbsorptionResult, WriteAbsorptionScenario
from repro.devices import DEVICE_PRESETS, build_device
from repro.devices.base import IOKind, IORequest, IOResult, StorageDevice
from repro.devices.link import LinkPowerMode
from repro.faults import (
    ActuatorFaultSpec,
    FaultInjector,
    FaultPlan,
    FaultSummary,
    SensorFaultSpec,
    parse_fault_plan,
    render_fault_plan,
)
from repro.fleet.api import BudgetAllocator, BudgetSplit, DeviceView
from repro.fleet.cluster import FleetResult, FleetSpec, run_fleet
from repro.fleet.governor import ClusterGovernor
from repro.fleet.model import FleetAllocation, FleetModel
from repro.iogen import IoPattern, JobSpec
from repro.nvme.cli import NvmeCli
from repro.obs import (
    BucketedHistogram,
    EventKind,
    MetricsCollector,
    MetricsRegistry,
    NullTracer,
    RunProfiler,
    SimEvent,
    SweepRollup,
    Tracer,
    merge_snapshots,
)
from repro.policy import (
    BudgetSchedule,
    FeedbackBudgetPolicy,
    HysteresisLadderPolicy,
    PolicySpec,
    PolicySummary,
    StaticCapPolicy,
    WatchdogSpec,
    build_policy,
)
from repro.power.adc import AdcConfig
from repro.power.meter import MeterConfig, PowerMeter
from repro.sata.alpm import AlpmController
from repro.sata.ata import (
    AtaPowerMode,
    check_power_mode,
    idle_immediate,
    standby_immediate,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.studies.common import DEFAULT, QUICK, StudyScale
from repro.studies.fig10 import build_model
from repro.validate import (
    InvariantViolationError,
    Tolerances,
    ValidationReport,
    Violation,
    validate_outcome,
    validate_result,
)

__all__ = [
    "AbsorptionResult",
    "ActuatorFaultSpec",
    "AdaptivePlan",
    "AdcConfig",
    "AlpmController",
    "AsymmetricPlan",
    "AsymmetricPlanner",
    "AtaPowerMode",
    "BucketedHistogram",
    "BudgetAllocator",
    "BudgetSchedule",
    "BudgetSignal",
    "BudgetSplit",
    "CheckpointJournal",
    "ClusterGovernor",
    "ControlAction",
    "ControllerConfig",
    "DEFAULT",
    "DEVICE_PRESETS",
    "DemandResponseResult",
    "DeviceView",
    "Engine",
    "EventKind",
    "ExecutionOptions",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "FeedbackBudgetPolicy",
    "FleetAllocation",
    "FleetModel",
    "FleetResult",
    "FleetSpec",
    "GiB",
    "HysteresisLadderPolicy",
    "IOKind",
    "IORequest",
    "IOResult",
    "InvariantViolationError",
    "IoPattern",
    "JobSpec",
    "KiB",
    "LinkPowerMode",
    "MeterConfig",
    "MetricsCollector",
    "MetricsRegistry",
    "MiB",
    "ModelPoint",
    "NullTracer",
    "NvmeCli",
    "OnlinePowerController",
    "PointFailure",
    "PointSpan",
    "PointState",
    "PolicySpec",
    "PolicySummary",
    "PowerAdaptivePlanner",
    "PowerMeter",
    "PowerThroughputModel",
    "ProgressUpdate",
    "QUICK",
    "RedirectionDecision",
    "RedirectionPolicy",
    "ResultCache",
    "RetryPolicy",
    "RngStreams",
    "RunLedger",
    "RunProfiler",
    "SensorFaultSpec",
    "SimEvent",
    "StandbyProfile",
    "StaticCapPolicy",
    "StorageDevice",
    "StudyScale",
    "SweepExecutionError",
    "SweepGrid",
    "SweepOutcome",
    "SweepPoint",
    "SweepRollup",
    "SweepTelemetry",
    "Tolerances",
    "Tracer",
    "ValidationReport",
    "Violation",
    "WatchdogSpec",
    "WorkerStats",
    "WriteAbsorptionScenario",
    "build_device",
    "build_model",
    "build_policy",
    "check_power_mode",
    "idle_immediate",
    "merge_snapshots",
    "parse_fault_plan",
    "render_fault_plan",
    "run_configs",
    "run_demand_response",
    "run_experiment",
    "run_fleet",
    "run_sweep",
    "standby_immediate",
    "sweep_outcome",
    "validate_outcome",
    "validate_result",
]
