"""Command-line interface: ``python -m repro ...``.

Ten subcommands cover the workflows a user of the artifact needs:

- ``devices`` -- list the calibrated device presets;
- ``run`` -- one experiment with fio-style options (the paper's inner
  measurement loop);
- ``sweep`` -- a mechanism grid on one device, fanned out across worker
  processes (``--workers``), with an optional on-disk result cache,
  resilience controls (``--timeout``, ``--retries``) and checkpointed
  resume (``--resume``);
- ``figure`` -- regenerate a paper table/figure and print its rows;
- ``validate`` -- audit the physics invariants (energy conservation,
  power envelopes, Little's law, monotonicity contracts) over a
  mechanism sweep of each device, exiting non-zero on any violation;
- ``policy`` -- run the online power-adaptive controllers
  (:mod:`repro.policy`) against time-varying budgets on each device and
  report harvested dynamic range vs. p99 cost, exiting non-zero on any
  invariant violation;
- ``chaos`` -- run a control-plane chaos campaign
  (:mod:`repro.faults.campaign`): enumerate sensor/actuator fault plans
  against every controller family, validate each cell, shrink any
  violation to a minimal ``--faults`` reproducer, and rank controllers
  by harvested-range retention; exits non-zero on any violation;
- ``fleet`` -- simulate a power-governed fleet (:mod:`repro.fleet`):
  tens of heterogeneous devices serve a diurnal tenant-skewed stream
  while a cluster governor re-divides one global power budget into
  per-device caps each epoch; reports harvested fleet power, governed
  dynamic range and p99 blowup, exiting non-zero on any invariant
  violation;
- ``report`` -- render a sweep health report (throughput trend, slowest
  points, cache effectiveness, retry/timeout incidents, policy tracking
  rollups, chaos campaign verdicts, fleet epoch accounting, validation
  verdicts) from the run ledger that ``sweep``, ``policy``, ``chaos``
  and ``fleet`` append beside their ``--cache`` directory;
- ``plan`` -- fit a device's power-throughput model and plan a power cut
  (the section-3.3 worked example).

``sweep --cache DIR`` additionally appends provenance records to
``DIR/ledger.jsonl`` (one per point plus a run summary) for ``repro
report``, and ``sweep --progress`` paints a live done/ETA line on
stderr.  Both observe a finished result; neither changes it.

``run`` and ``sweep`` accept ``--faults SPEC`` for deterministic fault
injection (see :func:`repro.faults.parse_fault_plan` for the grammar,
e.g. ``io_error:p=0.01;governor:at=0.02``) and observability options:
``--trace PATH``
(with ``--trace-format jsonl|chrome``) exports every mechanism event --
power-state transitions, governor throttling, GC, spindle, ALPM -- and
``--metrics PATH`` writes a sim-time metrics snapshot (power-state
residency, queue depths, cache hit rates) plus runner profiling.  The
chrome format loads directly in Perfetto (https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro._units import parse_size
from repro.core.adaptive import PowerAdaptivePlanner
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.devices.catalog import DEVICE_PRESETS
from repro.iogen.spec import IoPattern, JobSpec
from repro.policy.spec import POLICY_KINDS

__all__ = ["build_parser", "main"]


def _workers_arg(value: str) -> Optional[int]:
    """Parse ``--workers``: a positive integer, or ``all`` for all cores."""
    if value.strip().lower() == "all":
        return None
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'all', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1 (or 'all'), got {workers}"
        )
    return workers


def _faults_arg(value: str):
    from repro.faults import FaultSpecError, parse_fault_plan

    try:
        return parse_fault_plan(value)
    except FaultSpecError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None

_FIGURES = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "claims",
)


# -- shared flag groups ----------------------------------------------------
#
# Each builder returns an ``add_help=False`` parent parser holding one
# flag group that several subcommands share; ``add_parser(...,
# parents=[...])`` wires them declaratively.  Help strings differ per
# subcommand, so builders take the text as a parameter where needed.

_WORKERS_HELP = (
    "worker processes: a positive integer or 'all' (default 1 = in-process)"
)
_CACHE_HELP = (
    "on-disk result cache; re-runs skip already-computed points"
)


def _workers_parent(help_text: str = _WORKERS_HELP) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers", type=_workers_arg, default=1, help=help_text
    )
    return parent


def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0)
    return parent


def _quick_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--quick", action="store_true", help="CI-scale run (coarser, faster)"
    )
    return parent


def _faults_parent(help_text: str) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--faults",
        type=_faults_arg,
        default=None,
        metavar="SPEC",
        help=help_text,
    )
    return parent


def _fastpath_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--fastpath",
        nargs="?",
        const="auto",
        default=None,
        choices=["auto", "splice", "batch"],
        metavar="MODE",
        help="accelerate eligible steady-state runs analytically "
        "(auto|splice|batch; bare flag = auto).  Ineligible runs fall "
        "back to the exact kernel bit-identically; accelerated runs are "
        "equivalent within declared tolerances (see DESIGN.md)",
    )
    return parent


def _cache_parent(help_text: str = _CACHE_HELP) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--cache", default=None, metavar="DIR", help=help_text
    )
    return parent


def _device_parent(help_text: str) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--device",
        action="append",
        choices=sorted(DEVICE_PRESETS),
        help=help_text,
    )
    return parent


def _resilience_parent(
    resume_help: str, *, pool_controls: bool = False
) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("resilience")
    if pool_controls:
        group.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per point attempt; hung workers are "
            "killed and the point retried",
        )
        group.add_argument(
            "--retries",
            type=int,
            default=0,
            help="extra attempts per failing point (timeouts, crashes, "
            "exceptions)",
        )
    group.add_argument("--resume", action="store_true", help=resume_help)
    return parent


def _obs_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    obs = parent.add_argument_group("observability")
    obs.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="export mechanism events (power states, governor, GC, "
        "spindle, ALPM, IO) to PATH",
    )
    obs.add_argument(
        "--trace-format",
        default="jsonl",
        choices=["jsonl", "chrome"],
        help="jsonl = one event per line; chrome = Perfetto-loadable "
        "trace_event JSON (default: jsonl)",
    )
    obs.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a sim-time metrics snapshot (JSON) to PATH",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Can Storage Devices be Power Adaptive?' "
            "(HotStorage '24)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the calibrated device presets")

    run_p = sub.add_parser(
        "run",
        help="run one measurement experiment",
        parents=[
            _seed_parent(),
            _faults_parent(
                "inject faults, e.g. 'io_error:p=0.01;governor:at=0.02' "
                "(kinds: io_error, spike, throttle, stuck, governor, spinup)"
            ),
            _fastpath_parent(),
            _obs_parent(),
        ],
    )
    run_p.add_argument("--device", required=True, choices=sorted(DEVICE_PRESETS))
    run_p.add_argument(
        "--rw",
        default="randwrite",
        choices=[p.value for p in IoPattern],
        help="access pattern (fio rw=)",
    )
    run_p.add_argument("--bs", default="256k", help="chunk size (fio bs=)")
    run_p.add_argument("--iodepth", type=int, default=64)
    run_p.add_argument("--runtime", type=float, default=0.08, help="seconds")
    run_p.add_argument("--size", default="48M", help="byte stop condition")
    run_p.add_argument("--ps", type=int, default=None, help="NVMe power state")

    sweep_p = sub.add_parser(
        "sweep",
        help="run a mechanism grid, optionally across worker processes",
        parents=[
            _workers_parent(),
            _cache_parent(),
            _seed_parent(),
            _faults_parent(
                "inject faults into every point, e.g. 'io_error:p=0.01'"
            ),
            _fastpath_parent(),
            _resilience_parent(
                "continue an interrupted sweep: requires --cache; completed "
                "points are skipped via the cache and checkpoint journal",
                pool_controls=True,
            ),
            _obs_parent(),
        ],
    )
    sweep_p.add_argument("--device", required=True, choices=sorted(DEVICE_PRESETS))
    sweep_p.add_argument(
        "--rw",
        action="append",
        choices=[p.value for p in IoPattern],
        help="access pattern; repeat for several (default: randwrite)",
    )
    sweep_p.add_argument(
        "--bs",
        action="append",
        help="chunk size; repeat for several (default: the paper's six)",
    )
    sweep_p.add_argument(
        "--iodepth",
        action="append",
        type=int,
        help="queue depth; repeat for several (default: the paper's six)",
    )
    sweep_p.add_argument(
        "--ps",
        action="append",
        type=int,
        help="NVMe power state; repeat for several (default: none)",
    )
    sweep_p.add_argument("--runtime", type=float, default=0.05, help="seconds")
    sweep_p.add_argument("--size", default="32M", help="byte stop condition")
    sweep_p.add_argument(
        "--progress",
        action="store_true",
        help="paint a live done/cached/ETA line on stderr while the "
        "sweep runs",
    )

    fig_p = sub.add_parser(
        "figure",
        help="regenerate a paper table/figure",
        parents=[
            _quick_parent(),
            _workers_parent(
                "worker processes for sweep-backed figures: a positive "
                "integer or 'all'"
            ),
        ],
    )
    fig_p.add_argument("name", choices=_FIGURES)

    sub.add_parser(
        "validate",
        help="audit physics invariants over a mechanism sweep",
        description=(
            "Run a fig10-style mechanism sweep per device with every "
            "repro.validate invariant checker enabled (energy "
            "conservation, power envelopes, Little's law, monotonicity "
            "contracts, ...) plus one live-audited experiment per device, "
            "and report any violation.  Exit status 1 if an invariant "
            "failed."
        ),
        parents=[
            _device_parent(
                "device to audit; repeat for several (default: the paper's "
                "four Table 1 devices)"
            ),
            _quick_parent(),
            _workers_parent(),
            _seed_parent(),
        ],
    )

    policy_p = sub.add_parser(
        "policy",
        help="run online power-adaptive controllers against time-varying "
        "budgets",
        description=(
            "Run the policy tracking study: an uncontrolled baseline per "
            "device, then each controller family (static cap, PI "
            "feedback, hysteresis ladder) tracking a budget schedule "
            "derived from it.  Reports harvested dynamic range, p99 "
            "blowup, set-point changes and tracking error per (device, "
            "policy), and validates every result against the physics "
            "invariants.  Exit status 1 if any invariant failed."
        ),
        parents=[
            _device_parent(
                "device to control; repeat for several (default: the "
                "paper's four Table 1 devices)"
            ),
            _quick_parent(),
            _seed_parent(),
            _workers_parent(),
            _faults_parent(
                "inject faults into every policy run (baselines stay "
                "clean), e.g. 'governor:at=0.02'"
            ),
            _cache_parent(),
            _resilience_parent(
                "continue an interrupted study: requires --cache"
            ),
        ],
    )
    policy_p.add_argument(
        "--policy",
        action="append",
        choices=POLICY_KINDS,
        help="controller family; repeat for several (default: all three)",
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="run a control-plane chaos campaign against the controllers",
        description=(
            "Enumerate control-plane fault plans (lying/dead meters, "
            "lossy/stuck actuators, governor failures) against each "
            "controller family, validate every cell against the "
            "physics and budget-safety invariants, shrink violations "
            "to minimal --faults reproducers, and rank controllers by "
            "harvested-range retention and p99 blowup.  Exit status 1 "
            "if any cell violated an invariant."
        ),
        parents=[
            _device_parent(
                "device to attack; repeat for several (default: ssd2)"
            ),
            _quick_parent(),
            _seed_parent(),
            _workers_parent(),
            _cache_parent(
                "on-disk result cache; also appends campaign records to "
                "DIR/ledger.jsonl for `repro report`"
            ),
        ],
    )
    chaos_p.add_argument(
        "--controllers",
        action="append",
        choices=("all",) + POLICY_KINDS + ("unsafe",),
        help="controller family; repeat for several; 'all' adds the "
        "deliberately-unsafe fixture to the shipped families "
        "(default: all)",
    )
    chaos_p.add_argument(
        "--budget-cells",
        type=int,
        default=None,
        metavar="N",
        help="cap on executed fault cells (deterministic coverage-first "
        "sampling; default: the full grid)",
    )
    chaos_p.add_argument(
        "--no-watchdog",
        action="store_true",
        help="disarm the safe-mode watchdog (measures the unprotected "
        "controllers)",
    )

    fleet_p = sub.add_parser(
        "fleet",
        help="simulate a power-governed fleet against a global diurnal "
        "budget",
        description=(
            "Run the fleet-scale study: N heterogeneous devices serve a "
            "diurnal, tenant-skewed front-end stream while a cluster "
            "governor re-divides one global power budget into per-device "
            "caps each epoch, actuated through the per-device policy "
            "runtime.  Reports per-epoch budget/power/latency accounting, "
            "harvested fleet power, governed dynamic range and worst-epoch "
            "p99 blowup, and validates every run against the physics and "
            "fleet budget invariants.  Exit status 1 if any invariant "
            "failed."
        ),
        parents=[
            _quick_parent(),
            _seed_parent(),
            _workers_parent(),
            _cache_parent(
                "on-disk result cache; also appends fleet records to "
                "DIR/ledger.jsonl for `repro report`"
            ),
        ],
    )
    fleet_p.add_argument(
        "--devices",
        type=int,
        default=64,
        metavar="N",
        help="fleet size; slots cycle through the paper's four catalog "
        "devices (default 64)",
    )
    fleet_p.add_argument(
        "--epochs",
        type=int,
        default=4,
        help="governor re-division periods over the simulated day "
        "(default 4)",
    )
    fleet_p.add_argument(
        "--tenants",
        type=int,
        default=96,
        help="front-end tenants generating the skewed stream (default 96)",
    )
    fleet_p.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf exponent of tenant weights; 0 = uniform (default 1.1)",
    )
    fleet_p.add_argument(
        "--budget-low",
        type=float,
        default=0.55,
        metavar="FRAC",
        help="diurnal budget trough as a fraction of the fleet's actuator "
        "ceiling (default 0.55)",
    )
    fleet_p.add_argument(
        "--budget-high",
        type=float,
        default=0.85,
        metavar="FRAC",
        help="diurnal budget peak as a fraction of the fleet's actuator "
        "ceiling (default 0.85)",
    )

    report_p = sub.add_parser(
        "report",
        help="render a sweep health report from a run ledger",
        description=(
            "Read the append-only run ledger that sweep/policy/chaos/"
            "fleet runs write beside their --cache directory and render "
            "a sweep health report: executor throughput trend and "
            "slowest points, retry/timeout incidents, cache "
            "effectiveness, per-(device, power-state) metric rollups, "
            "policy tracking error, fleet epoch accounting, and "
            "validation verdicts.  Exit status 1 if the latest run "
            "recorded failures or a failed validation, 2 if there is no "
            "ledger to read."
        ),
    )
    report_p.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="ledger file to read (default: LEDGER inside --cache)",
    )
    report_p.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="cache directory of the sweep; reads DIR/ledger.jsonl",
    )
    report_p.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of markdown",
    )

    plan_p = sub.add_parser("plan", help="plan a power cut on a device model")
    plan_p.add_argument("--device", required=True, choices=sorted(DEVICE_PRESETS))
    plan_p.add_argument(
        "--cut", type=float, default=0.2, help="power reduction fraction"
    )
    plan_p.add_argument(
        "--slo-p99-ms", type=float, default=None, help="latency SLO in ms"
    )
    return parser


class _ObsSession:
    """Tracer + metrics + profiler bundle behind --trace/--metrics."""

    def __init__(self, args: argparse.Namespace) -> None:
        from repro.obs import MetricsCollector, RunProfiler, Tracer

        self.trace_path = args.trace
        self.trace_format = args.trace_format
        self.metrics_path = args.metrics
        self.enabled = bool(self.trace_path or self.metrics_path)
        self.tracer = None
        self.collector = None
        self.profiler = None
        if not self.enabled:
            return
        # Keep the event buffer only if a trace file was asked for.
        self.tracer = Tracer(keep_events=bool(self.trace_path))
        if self.metrics_path:
            self.collector = MetricsCollector()
            self.tracer.subscribe(self.collector)
            self.profiler = RunProfiler()

    def export(self, cache=None) -> list[str]:
        """Write the requested files; returns human summary lines."""
        from repro.obs import (
            write_chrome_trace,
            write_events_jsonl,
            write_metrics_json,
        )

        notes = []
        if self.trace_path:
            if self.trace_format == "chrome":
                count = write_chrome_trace(self.tracer.events, self.trace_path)
                notes.append(
                    f"trace: {count} trace events -> {self.trace_path} "
                    "(chrome trace_event; open in https://ui.perfetto.dev)"
                )
            else:
                count = write_events_jsonl(self.tracer.events, self.trace_path)
                notes.append(f"trace: {count} events -> {self.trace_path} (jsonl)")
        if self.metrics_path:
            write_metrics_json(
                self.collector.snapshot(),
                self.metrics_path,
                profile=self.profiler.snapshot() if self.profiler else None,
                cache=cache.stats.snapshot() if cache is not None else None,
            )
            notes.append(f"metrics: -> {self.metrics_path}")
            if self.profiler is not None and self.profiler.points:
                notes.append(f"profile: {self.profiler.describe()}")
        return notes


def _cmd_devices() -> str:
    from repro.core.reporting import format_table
    from repro.devices.hdd_drive import HddConfig

    rows = []
    for label in sorted(DEVICE_PRESETS):
        config = DEVICE_PRESETS[label]()
        if isinstance(config, HddConfig):
            kind = "HDD"
            states = "standby/EPC"
        else:
            kind = "SSD"
            states = (
                f"{len(config.power_states)} NVMe states"
                if config.power_states
                else "ALPM"
            )
        rows.append([label, kind, f"{config.idle_power_w:.2f}", states])
    return format_table(
        ["Preset", "Type", "Idle W", "Power control"], rows
    )


def _cmd_run(args: argparse.Namespace) -> str:
    job = JobSpec(
        pattern=IoPattern(args.rw),
        block_size=parse_size(args.bs),
        iodepth=args.iodepth,
        runtime_s=args.runtime,
        size_limit_bytes=parse_size(args.size),
    )
    obs = _ObsSession(args)
    fastpath = _fastpath_options(args)
    result = run_experiment(
        ExperimentConfig(
            device=args.device,
            job=job,
            power_state=args.ps,
            seed=args.seed,
            faults=args.faults,
            fastpath=fastpath,
        ),
        tracer=obs.tracer,
        profiler=obs.profiler,
    )
    lines = [result.summary()]
    if result.faults is not None:
        lines.append(f"faults: {result.faults.describe()}")
    if result.fastpath is not None:
        lines.append(f"fastpath: {result.fastpath.describe()}")
    if obs.enabled:
        lines.extend(obs.export())
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> tuple[str, int]:
    from pathlib import Path

    from repro.core.checkpoint import CheckpointJournal
    from repro.core.options import ExecutionOptions
    from repro.core.parallel import ResultCache
    from repro.core.reporting import format_table
    from repro.core.sweep import SweepGrid, sweep_outcome
    from repro.iogen.spec import (
        JobSpec,
        PAPER_CHUNK_SIZES,
        PAPER_QUEUE_DEPTHS,
    )

    if args.resume and not args.cache:
        return (
            "sweep: --resume requires --cache (completed points are "
            "skipped via their cached results)",
            2,
        )
    patterns = tuple(
        IoPattern(rw) for rw in (args.rw or ["randwrite"])
    )
    grid = SweepGrid(
        device=args.device,
        patterns=patterns,
        block_sizes=tuple(parse_size(bs) for bs in args.bs)
        if args.bs
        else PAPER_CHUNK_SIZES,
        iodepths=tuple(args.iodepth) if args.iodepth else PAPER_QUEUE_DEPTHS,
        power_states=tuple(args.ps) if args.ps else (None,),
        base_job=JobSpec(
            pattern=patterns[0],
            block_size=4096,
            iodepth=1,
            runtime_s=args.runtime,
            size_limit_bytes=parse_size(args.size),
        ),
        seed=args.seed,
        faults=args.faults,
    )
    obs = _ObsSession(args)
    cache = ResultCache(args.cache) if args.cache else None
    checkpoint = Path(args.cache) / "checkpoint.jsonl" if args.cache else None
    ledger = Path(args.cache) / "ledger.jsonl" if args.cache else None
    progress = _progress_printer() if args.progress else None
    notes = []
    if args.resume and checkpoint is not None:
        entries = CheckpointJournal.load(checkpoint)
        notes.append(
            f"resuming from {checkpoint}: {CheckpointJournal.summarize(entries)}"
        )
    try:
        outcome = sweep_outcome(
            grid,
            ExecutionOptions(
                n_workers=args.workers,
                cache_dir=cache if cache is not None else None,
                tracer=obs.tracer,
                profiler=obs.profiler,
                timeout_s=args.timeout,
                retries=args.retries,
                checkpoint=checkpoint,
                resume=args.resume,
                fastpath=_fastpath_options(args),
                telemetry=bool(args.progress or ledger is not None),
                ledger=ledger,
                progress=progress,
            ),
        )
    finally:
        if progress is not None:
            progress.finish()
    rows = [
        [
            point.describe(),
            f"{result.mean_power_w:.2f}",
            f"{result.throughput_mib_s:.0f}",
            f"{result.latency().p99 * 1e6:.0f}",
        ]
        for point, result in outcome.results.items()
    ]
    blocks = []
    if notes:
        blocks.append("\n".join(notes))
    blocks.append(
        format_table(
            ["Point", "Mean W", "MiB/s", "p99 us"],
            rows,
            title=f"Sweep of {args.device}: {len(rows)} points.",
        )
    )
    if outcome.failures:
        blocks.append(
            f"{len(outcome.failures)} point(s) FAILED:\n"
            + "\n".join(
                f"  {failure.describe()}"
                for failure in outcome.failures.values()
            )
        )
    summary_notes = []
    if cache is not None:
        stats = cache.stats
        summary_notes.append(
            f"cache: {stats.hits} hit(s), {stats.misses} miss(es) "
            f"({stats.snapshot()['hit_rate']:.0%} hit rate), "
            f"{stats.corrupt} corrupt, {stats.puts} write(s)"
        )
    if outcome.telemetry is not None:
        summary_notes.append(f"executor: {outcome.telemetry.describe()}")
    if ledger is not None:
        summary_notes.append(
            f"ledger: -> {ledger} (render with `repro report --cache "
            f"{args.cache}`)"
        )
    if summary_notes:
        blocks.append("\n".join(summary_notes))
    if obs.enabled:
        blocks.append("\n".join(obs.export(cache=cache)))
    return "\n\n".join(blocks), 0 if outcome.ok else 1


def _fastpath_options(args: argparse.Namespace):
    """Build FastpathOptions from --fastpath (None when the flag is absent).

    Imported lazily so a run without the flag never loads
    :mod:`repro.sim.fastpath` (the poisoned-import test pins this).
    """
    if args.fastpath is None:
        return None
    from repro.sim.fastpath import FastpathOptions

    return FastpathOptions(mode=args.fastpath)


class _progress_printer:
    """Stderr live-progress sink for ``ExecutionOptions(progress=...)``.

    Repaints one carriage-return line per update so a long sweep shows
    done/cached counts and an ETA without polluting stdout (which holds
    the machine-readable report).
    """

    def __init__(self) -> None:
        import sys

        self._err = sys.stderr
        self._width = 0

    def __call__(self, update) -> None:
        line = update.describe()
        pad = " " * max(0, self._width - len(line))
        self._width = len(line)
        self._err.write("\r" + line + pad)
        self._err.flush()

    def finish(self) -> None:
        if self._width:
            self._err.write("\n")
            self._err.flush()


def _cmd_figure(args: argparse.Namespace) -> str:
    import importlib
    import inspect

    from repro.studies.common import DEFAULT, QUICK

    module = importlib.import_module(f"repro.studies.{args.name}")
    scale = QUICK if args.quick else DEFAULT
    if args.name == "fig7":  # trace study: no scale parameter
        return module.render(module.run())
    kwargs = {}
    if "n_workers" in inspect.signature(module.run).parameters:
        kwargs["n_workers"] = args.workers
    return module.render(module.run(scale, **kwargs))


def _cmd_validate(args: argparse.Namespace) -> tuple[str, int]:
    from repro.core.options import ExecutionOptions
    from repro.core.sweep import SweepGrid, sweep_outcome
    from repro.iogen.spec import IoPattern
    from repro.studies.common import DEFAULT, QUICK, point_config
    from repro.studies.fig10 import DEVICE_STATES, SWEEP_CHUNKS, SWEEP_DEPTHS
    from repro.validate import live_validate
    from repro.validate.strategies import PAPER_DEVICES

    devices = tuple(args.device) if args.device else PAPER_DEVICES
    scale = QUICK if args.quick else DEFAULT
    pattern = IoPattern.RANDWRITE
    blocks = []
    total_checked = 0
    total_violations = 0
    for device in devices:
        grid = SweepGrid(
            device=device,
            patterns=(pattern,),
            block_sizes=SWEEP_CHUNKS,
            iodepths=SWEEP_DEPTHS,
            power_states=DEVICE_STATES.get(device, (None,)),
            base_job=scale.job(pattern, 4096, 1, device),
            warmup_fraction=scale.warmup(device),
            seed=args.seed,
        )
        outcome = sweep_outcome(
            grid,
            ExecutionOptions(n_workers=args.workers, validate=True),
        )
        report = outcome.validation
        lines = [f"{device}: {report.render()}"]
        if outcome.failures:
            lines.append(
                f"{device}: {len(outcome.failures)} point(s) failed to run:\n"
                + "\n".join(
                    f"  {failure.describe()}"
                    for failure in outcome.failures.values()
                )
            )
        # One fully live-audited experiment on top of the post-hoc sweep
        # checks: rail energy conservation and event-stream invariants
        # need in-process shadow state a worker pool cannot ship back.
        _result, live_report = live_validate(
            point_config(device, pattern, 256 * 1024, 8, scale=scale,
                         seed=args.seed)
        )
        lines.append(f"{device} (live audit): {live_report.render()}")
        total_checked += report.checked + live_report.checked
        total_violations += (
            len(report.violations)
            + len(live_report.violations)
            + len(outcome.failures)
        )
        blocks.append("\n".join(lines))
    verdict = (
        f"validated {total_checked} experiment(s) across "
        f"{len(devices)} device(s): "
        + ("all invariants hold" if total_violations == 0
           else f"{total_violations} violation(s)")
    )
    blocks.append(verdict)
    return "\n\n".join(blocks), 0 if total_violations == 0 else 1


def _cmd_policy(args: argparse.Namespace) -> tuple[str, int]:
    from pathlib import Path

    from repro.core.parallel import ResultCache
    from repro.studies import policy_tracking
    from repro.studies.common import DEFAULT, QUICK

    if args.resume and not args.cache:
        return (
            "policy: --resume requires --cache (completed points are "
            "skipped via their cached results)",
            2,
        )
    cache = ResultCache(args.cache) if args.cache else None
    checkpoint = Path(args.cache) / "checkpoint.jsonl" if args.cache else None
    ledger = Path(args.cache) / "ledger.jsonl" if args.cache else None
    result = policy_tracking.run(
        scale=QUICK if args.quick else DEFAULT,
        n_workers=args.workers,
        seed=args.seed,
        devices=tuple(args.device) if args.device else policy_tracking.DEVICES,
        policies=tuple(args.policy) if args.policy else POLICY_KINDS,
        faults=args.faults,
        cache_dir=cache,
        checkpoint=checkpoint,
        resume=args.resume,
        ledger=ledger,
    )
    # Validation runs post-hoc over the *returned* results, cache hits
    # included, so the exit code cannot be laundered by a warm cache.
    return policy_tracking.render(result), 0 if result.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> tuple[str, int]:
    from pathlib import Path

    from repro.core.parallel import ResultCache
    from repro.studies import chaos_resilience
    from repro.studies.common import DEFAULT, QUICK

    controllers = None
    if args.controllers and "all" not in args.controllers:
        controllers = tuple(dict.fromkeys(args.controllers))
    cache = ResultCache(args.cache) if args.cache else None
    ledger = Path(args.cache) / "ledger.jsonl" if args.cache else None
    result = chaos_resilience.run(
        scale=QUICK if args.quick else DEFAULT,
        n_workers=args.workers,
        seed=args.seed,
        devices=tuple(args.device) if args.device else ("ssd2",),
        controllers=controllers,
        budget_cells=args.budget_cells,
        watchdog=not args.no_watchdog,
        cache_dir=cache,
        ledger=ledger,
    )
    # Validation runs post-hoc over the returned results, cache hits
    # included, so the exit code cannot be laundered by a warm cache.
    return chaos_resilience.render(result), 0 if result.ok else 1


def _cmd_fleet(args: argparse.Namespace) -> tuple[str, int]:
    from pathlib import Path

    from repro.core.parallel import ResultCache
    from repro.studies import fleet_scale
    from repro.studies.common import DEFAULT, QUICK

    cache = ResultCache(args.cache) if args.cache else None
    ledger = Path(args.cache) / "ledger.jsonl" if args.cache else None
    result = fleet_scale.run(
        scale=QUICK if args.quick else DEFAULT,
        n_workers=args.workers,
        seed=args.seed,
        n_devices=args.devices,
        epochs=args.epochs,
        tenants=args.tenants,
        skew=args.skew,
        budget_low=args.budget_low,
        budget_high=args.budget_high,
        cache_dir=cache,
        ledger=ledger,
    )
    # Validation runs post-hoc over the returned results, cache hits
    # included, so the exit code cannot be laundered by a warm cache.
    return fleet_scale.render(result), 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace) -> tuple[str, int]:
    import json
    from pathlib import Path

    from repro.core.ledger import RunLedger
    from repro.core.report import build_report, render_markdown

    if not args.ledger and not args.cache:
        return ("report: provide --ledger PATH or --cache DIR", 2)
    path = (
        Path(args.ledger)
        if args.ledger
        else Path(args.cache) / "ledger.jsonl"
    )
    if not path.exists():
        return (
            f"report: no ledger at {path} (run `repro sweep --cache` or "
            "`repro policy --cache` first)",
            2,
        )
    records = RunLedger.load(path)
    if not records:
        return (f"report: ledger at {path} holds no records", 2)
    report = build_report(records)
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        text = render_markdown(report)
    return text, 0 if report["ok"] else 1


def _cmd_plan(args: argparse.Namespace) -> str:
    from repro.studies.common import QUICK
    from repro.studies.fig10 import build_model

    model = build_model(args.device, scale=QUICK)
    planner = PowerAdaptivePlanner(model)
    slo = None if args.slo_p99_ms is None else args.slo_p99_ms * 1e-3
    plan = planner.plan_power_cut(args.cut, max_latency_p99_s=slo)
    return (
        f"{args.device}: model of {len(model.points)} points, "
        f"peak {model.max_power_w:.2f} W\n"
        f"power cut {args.cut:.0%}: {plan.describe()}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        print(_cmd_devices())
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "sweep":
        text, code = _cmd_sweep(args)
        print(text)
        return code
    elif args.command == "figure":
        print(_cmd_figure(args))
    elif args.command == "validate":
        text, code = _cmd_validate(args)
        print(text)
        return code
    elif args.command == "policy":
        text, code = _cmd_policy(args)
        print(text)
        return code
    elif args.command == "chaos":
        text, code = _cmd_chaos(args)
        print(text)
        return code
    elif args.command == "fleet":
        text, code = _cmd_fleet(args)
        print(text)
        return code
    elif args.command == "report":
        text, code = _cmd_report(args)
        print(text)
        return code
    elif args.command == "plan":
        print(_cmd_plan(args))
    return 0
