"""Command-line interface: ``python -m repro ...``.

Four subcommands cover the workflows a user of the artifact needs:

- ``devices`` -- list the calibrated device presets;
- ``run`` -- one experiment with fio-style options (the paper's inner
  measurement loop);
- ``figure`` -- regenerate a paper table/figure and print its rows;
- ``plan`` -- fit a device's power-throughput model and plan a power cut
  (the section-3.3 worked example).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro._units import parse_size
from repro.core.adaptive import PowerAdaptivePlanner
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.devices.catalog import DEVICE_PRESETS
from repro.iogen.spec import IoPattern, JobSpec

__all__ = ["build_parser", "main"]

_FIGURES = (
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "claims",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Can Storage Devices be Power Adaptive?' "
            "(HotStorage '24)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the calibrated device presets")

    run_p = sub.add_parser("run", help="run one measurement experiment")
    run_p.add_argument("--device", required=True, choices=sorted(DEVICE_PRESETS))
    run_p.add_argument(
        "--rw",
        default="randwrite",
        choices=[p.value for p in IoPattern],
        help="access pattern (fio rw=)",
    )
    run_p.add_argument("--bs", default="256k", help="chunk size (fio bs=)")
    run_p.add_argument("--iodepth", type=int, default=64)
    run_p.add_argument("--runtime", type=float, default=0.08, help="seconds")
    run_p.add_argument("--size", default="48M", help="byte stop condition")
    run_p.add_argument("--ps", type=int, default=None, help="NVMe power state")
    run_p.add_argument("--seed", type=int, default=0)

    fig_p = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig_p.add_argument("name", choices=_FIGURES)
    fig_p.add_argument(
        "--quick", action="store_true", help="CI-scale run (coarser, faster)"
    )

    plan_p = sub.add_parser("plan", help="plan a power cut on a device model")
    plan_p.add_argument("--device", required=True, choices=sorted(DEVICE_PRESETS))
    plan_p.add_argument(
        "--cut", type=float, default=0.2, help="power reduction fraction"
    )
    plan_p.add_argument(
        "--slo-p99-ms", type=float, default=None, help="latency SLO in ms"
    )
    return parser


def _cmd_devices() -> str:
    from repro.core.reporting import format_table
    from repro.devices.hdd_drive import HddConfig

    rows = []
    for label in sorted(DEVICE_PRESETS):
        config = DEVICE_PRESETS[label]()
        if isinstance(config, HddConfig):
            kind = "HDD"
            states = "standby/EPC"
        else:
            kind = "SSD"
            states = (
                f"{len(config.power_states)} NVMe states"
                if config.power_states
                else "ALPM"
            )
        rows.append([label, kind, f"{config.idle_power_w:.2f}", states])
    return format_table(
        ["Preset", "Type", "Idle W", "Power control"], rows
    )


def _cmd_run(args: argparse.Namespace) -> str:
    job = JobSpec(
        pattern=IoPattern(args.rw),
        block_size=parse_size(args.bs),
        iodepth=args.iodepth,
        runtime_s=args.runtime,
        size_limit_bytes=parse_size(args.size),
    )
    result = run_experiment(
        ExperimentConfig(
            device=args.device,
            job=job,
            power_state=args.ps,
            seed=args.seed,
        )
    )
    return result.summary()


def _cmd_figure(args: argparse.Namespace) -> str:
    import importlib

    from repro.studies.common import DEFAULT, QUICK

    module = importlib.import_module(f"repro.studies.{args.name}")
    scale = QUICK if args.quick else DEFAULT
    if args.name == "fig7":  # trace study: no scale parameter
        return module.render(module.run())
    return module.render(module.run(scale))


def _cmd_plan(args: argparse.Namespace) -> str:
    from repro.studies.common import QUICK
    from repro.studies.fig10 import build_model

    model = build_model(args.device, scale=QUICK)
    planner = PowerAdaptivePlanner(model)
    slo = None if args.slo_p99_ms is None else args.slo_p99_ms * 1e-3
    plan = planner.plan_power_cut(args.cut, max_latency_p99_s=slo)
    return (
        f"{args.device}: model of {len(model.points)} points, "
        f"peak {model.max_power_w:.2f} W\n"
        f"power cut {args.cut:.0%}: {plan.describe()}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "devices":
        print(_cmd_devices())
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "figure":
        print(_cmd_figure(args))
    elif args.command == "plan":
        print(_cmd_plan(args))
    return 0
