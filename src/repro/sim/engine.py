"""Event loop and simulated clock.

The engine keeps a priority queue of ``(time, sequence, event)`` triples.
Processing an event at time ``t`` advances the clock to ``t`` and runs the
event's callbacks, which typically resume waiting
:class:`~repro.sim.process.Process` coroutines.

The kernel is deliberately minimal: events are one-shot, callbacks run in
deterministic FIFO order (ties broken by a monotonically increasing sequence
number), and there is no wall-clock coupling.  Determinism matters here --
every experiment in the reproduction must be exactly repeatable from a seed.

The engine also carries the simulation's :mod:`repro.obs` tracer so any
component holding the engine can emit structured observability events
(``self.engine.tracer``).  The default is the zero-cost null tracer;
tracing is strictly passive and never alters scheduling.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.obs.events import NULL_TRACER

__all__ = ["Engine", "Event", "SimulationError", "StopEngine", "Timeout"]

# Lazily bound Process class (engine <-> process import cycle); filled on
# the first Engine.process() call instead of paying a sys.modules lookup
# on every spawn.
_PROCESS_CLS = None


class SimulationError(Exception):
    """Raised for kernel misuse (scheduling in the past, double-trigger...)."""


class StopEngine(Exception):
    """Raised internally to stop :meth:`Engine.run` early."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (which schedules its callbacks), and *processed*
    once the engine has run those callbacks.

    Attributes:
        engine: The owning :class:`Engine`.
        callbacks: Callables invoked with the event when processed.  ``None``
            after processing (appending then is an error).
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value (success or failure) already."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        # Inlined immediate _schedule(delay=0): triggering is the hottest
        # kernel operation, so skip the delay validation a zero literal
        # cannot fail.
        if self._scheduled:
            raise SimulationError("event already scheduled")
        self._scheduled = True
        engine = self.engine
        engine._seq += 1
        heapq.heappush(engine._queue, (engine._now, engine._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = False
        self._value = exception
        if self._scheduled:
            raise SimulationError("event already scheduled")
        self._scheduled = True
        engine = self.engine
        engine._seq += 1
        heapq.heappush(engine._queue, (engine._now, engine._seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately --
        this keeps "wait on an already-completed IO" race-free.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ and _schedule: a freshly constructed event
        # cannot already be scheduled and the delay was validated above.
        # Timeouts are the most-constructed object in a simulation.
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self.delay = delay
        engine._seq += 1
        heapq.heappush(engine._queue, (engine._now + delay, engine._seq, self))


class AnyOf(Event):
    """Fires when the first of ``events`` fires; value is that event."""

    __slots__ = ()

    def __init__(self, engine: "Engine", events: list[Event]) -> None:
        super().__init__(engine)
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._ok is not None:
            return  # already fired on an earlier child
        if event._ok:
            self.succeed(event)
        else:
            self.fail(event._value)


class AllOf(Event):
    """Fires when all ``events`` have fired; value is the list of values."""

    __slots__ = ("_remaining", "_events")

    def __init__(self, engine: "Engine", events: list[Event]) -> None:
        super().__init__(engine)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class Engine:
    """The simulation event loop.

    Example:
        >>> eng = Engine()
        >>> log = []
        >>> def ticker(engine):
        ...     for _ in range(3):
        ...         yield engine.timeout(1.0)
        ...         log.append(engine.now)
        >>> _ = eng.process(ticker(eng))
        >>> eng.run()
        >>> log
        [1.0, 2.0, 3.0]
    """

    def __init__(self, tracer=None) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.events_processed = 0
        # Kernel events an analytic fast-forward accounted for without
        # processing (see repro.sim.fastpath); the effective event rate
        # of an accelerated run is (processed + fast_forwarded) / wall.
        self.events_fast_forwarded = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.attach(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction helpers -------------------------------------

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that fires on the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that fires once every event in ``events`` has fired."""
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Spawn a :class:`~repro.sim.process.Process` from a generator."""
        global _PROCESS_CLS
        if _PROCESS_CLS is None:
            from repro.sim.process import Process as _PROCESS_CLS  # noqa: PLW0603

        return _PROCESS_CLS(self, generator)

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time``.

        Returns the underlying event so callers can also wait on it.
        """
        if time < self._now:
            raise SimulationError(
                f"call_at({time!r}) is in the past (now={self._now!r})"
            )
        event = Timeout(self, time - self._now)
        event.add_callback(lambda _e: callback())
        return event

    # -- the loop ----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it).

        A *failed* event that nothing is waiting on re-raises its exception
        here: errors never pass silently.  Failures with waiters are
        delivered to them instead (thrown into waiting processes).
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        if not callbacks and event._ok is False:
            raise event._value
        for callback in callbacks:
            callback(event)

    def run_until_complete(self, event: Event) -> None:
        """Process events until ``event`` triggers.

        Semantically identical to ``while event._ok is None: engine.step()``
        (including the re-raise of unwaited failures) but with the loop
        body inlined -- this is the experiment driver's hot loop, and the
        per-step method call and attribute lookups are measurable at
        millions of events per run.
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        try:
            while event._ok is None:
                if not queue:
                    raise SimulationError("step() on an empty event queue")
                when, _seq, popped = pop(queue)
                self._now = when
                processed += 1
                callbacks = popped.callbacks
                popped.callbacks = None
                if not callbacks and popped._ok is False:
                    raise popped._value
                for callback in callbacks:
                    callback(popped)
        finally:
            self.events_processed += processed

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the next event lies beyond it, mirroring simpy semantics so that
        power-trace windows have exact, reproducible extents.
        """
        try:
            if until is None:
                while self._queue:
                    self.step()
            else:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until!r}) is in the past "
                        f"(now={self._now!r})"
                    )
                while self._queue and self._queue[0][0] <= until:
                    self.step()
                self._now = until
        except StopEngine:
            pass

    def stop(self) -> None:
        """Stop :meth:`run` from inside a callback or process."""
        raise StopEngine()
