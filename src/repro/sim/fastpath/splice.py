"""The analytic fast-forward: replicate a stationary window N times.

Splicing is state surgery on a *live* simulation, performed only at a
stable point (no pending event at the current instant).  Exact-shift
invariants make it safe:

- Shifting every pending heap entry by a constant ``N * W`` preserves
  both the heap property and the sequence tie-break, so the resumed
  event order is exactly the order the kernel would have reached -- just
  later.  In-flight housekeeping timers (maintenance, APST probes) are
  no-ops under a read-only steady load, so their phase shift is
  behaviorally invisible.
- The power trace is extended by tiling the template window's
  breakpoints, so the energy added is *exactly* ``N`` times the template
  window's integral (the ``fastpath_equivalence`` invariant).
- IO records are tiled the same way, and the offset stream is advanced
  by the skipped submissions (:meth:`OffsetGenerator.skip`) so the
  resumed simulation draws exactly the offsets the slow path would have
  drawn at that point in the stream.
- The up-to-``iodepth`` IOs in flight across the splice carry submit
  timestamps from before the jump; their records are corrected by the
  shift after the job completes (:class:`Fixup`), which preserves their
  latency -- the quantity that is actually equivalent.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.iogen.stats import IoRecord
from repro.sim.fastpath.detect import WindowStats
from repro.sim.fastpath.options import SpliceRecord

__all__ = ["Fixup", "apply_fixups", "splice_windows"]


@dataclass(frozen=True)
class Fixup:
    """Deferred submit-time correction for IOs in flight across a splice.

    Any record appended after ``position`` whose submit time is at or
    before ``t_splice`` was submitted before the jump and completed
    after it; adding ``shift_s`` to its submit time restores the latency
    the slow path would have recorded.  Post-splice submissions all
    carry timestamps beyond ``t_splice + shift_s``, so the predicate is
    unambiguous.
    """

    position: int
    t_splice: float
    shift_s: float


def apply_fixups(records: list, fixups: list[Fixup]) -> int:
    """Rewrite stale in-flight submit times in place; returns count fixed."""
    fixed = 0
    for fixup in fixups:
        for i in range(fixup.position, len(records)):
            r = records[i]
            if r.submit_time <= fixup.t_splice:
                records[i] = IoRecord(
                    r.submit_time + fixup.shift_s, r.complete_time, r.nbytes
                )
                fixed += 1
    return fixed


def splice_windows(
    engine, device, job, stats: WindowStats, n_windows: int
) -> tuple[SpliceRecord, Fixup]:
    """Fast-forward the run by ``n_windows`` copies of the template window.

    Must be called at a stable point with ``engine.now == stats.t_end``.
    Returns the accounting record and the in-flight fixup to apply after
    the job completes.
    """
    window_s = stats.window_s
    shift = n_windows * window_s
    t_splice = stats.t_end
    trace = device.rail.trace

    # -- energy/trace replication (before appending anything) -----------
    energy_per_window = trace.integrate(stats.t_start, t_splice)
    times = trace._times
    values = trace._values
    # Template breakpoints in (t_start, t_end]; the value *at* t_start
    # seeds each replica's leading segment so every replica integrates to
    # exactly the template's energy.
    lo = bisect.bisect_right(times, stats.t_start)
    hi = bisect.bisect_right(times, t_splice)
    v_start = values[lo - 1] if lo > 0 else values[0]
    template_t = np.asarray([stats.t_start] + times[lo:hi], float)
    template_v = np.asarray([v_start] + values[lo:hi], float)
    offsets = np.repeat(np.arange(1, n_windows + 1) * window_s, len(template_t))
    tiled_t = np.tile(template_t, n_windows) + offsets
    tiled_v = np.tile(template_v, n_windows)
    # A replica boundary can coincide with the trace's current last
    # breakpoint; duplicates are fine (sampling takes the last entry at a
    # time, which is exactly the overwrite semantics of StepTrace.set).
    times.extend(tiled_t.tolist())
    values.extend(tiled_v.tolist())
    energy_added = float(
        trace.integrate(t_splice, t_splice + shift)
    )

    # -- record replication ---------------------------------------------
    template_records = job.records[stats.records_start : stats.records_end]
    append = job.records.append
    for k in range(1, n_windows + 1):
        dt = k * window_s
        for r in template_records:
            append(IoRecord(r.submit_time + dt, r.complete_time + dt, r.nbytes))
    records_added = n_windows * len(template_records)

    # -- submission-side bookkeeping ------------------------------------
    skipped_submissions = n_windows * stats.submissions
    job._offsets.skip(skipped_submissions)
    job._issued_bytes += skipped_submissions * job.spec.block_size

    # -- device counters -------------------------------------------------
    device.ios_completed += records_added
    device.bytes_read += sum(r.nbytes for r in template_records) * n_windows
    device._last_activity += shift

    # -- time jump --------------------------------------------------------
    queue = engine._queue
    queue[:] = [(t + shift, seq, event) for t, seq, event in queue]
    engine._now = t_splice + shift
    events_skipped = n_windows * stats.events
    engine.events_fast_forwarded += events_skipped

    record = SpliceRecord(
        t_from=t_splice,
        t_to=t_splice + shift,
        window_s=window_s,
        n_windows=n_windows,
        records_per_window=len(template_records),
        records_added=records_added,
        energy_per_window_j=energy_per_window,
        energy_added_j=energy_added,
        events_skipped=events_skipped,
    )
    return record, Fixup(position=len(job.records), t_splice=t_splice, shift_s=shift)
