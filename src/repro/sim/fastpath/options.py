"""Fastpath configuration and accounting records.

Everything here is a small frozen dataclass so fastpath settings ride on
:class:`~repro.core.experiment.ExperimentConfig` exactly like fault plans
and policies do: pickled to pool workers unchanged, folded into result
cache keys by content, and carrying no imports from the simulation
layers (the fastpath package itself stays unloaded until a config
actually enables it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FastpathOptions", "FastpathSummary", "SpliceRecord"]

_MODES = ("auto", "splice", "batch")


@dataclass(frozen=True)
class FastpathOptions:
    """How aggressively to trade exactness for speed.

    Attributes:
        mode: ``"splice"`` runs the event kernel with analytic
            fast-forward over detected steady windows; ``"batch"``
            dispatches eligible read jobs through the flat
            availability-clock kernel with no event loop at all;
            ``"auto"`` picks batch when the whole job qualifies, else
            splice, else exact stepping.
        window_records: Completions per observation window.  Larger
            windows make the stationarity test stricter (means computed
            over more samples) but delay the first possible splice.
        min_windows: Smallest number of whole windows worth skipping
            for a splice to engage -- below this the bookkeeping costs
            more than the events it saves.
        margin_windows: Exact-simulation margin left before every
            behavior-change horizon (job deadline, size limit), in
            windows.  The run always finishes under the event kernel so
            boundary behavior (final partial queue drain, deadline
            crossing) is simulated, not extrapolated.
        rate_rtol: Maximum relative disagreement in completion rate
            between consecutive windows for them to count as stationary.
        power_rtol: Same, for mean rail power over the windows.
        latency_rtol: Same, for mean completion latency.
        max_splices: Hard cap on splices per run (defensive bound; a
            steady run needs exactly one).
    """

    mode: str = "auto"
    window_records: int = 96
    min_windows: int = 8
    margin_windows: int = 2
    rate_rtol: float = 0.02
    power_rtol: float = 0.02
    latency_rtol: float = 0.10
    max_splices: int = 4

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"fastpath mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.window_records < 8:
            raise ValueError("window_records must be >= 8")
        if self.min_windows < 1:
            raise ValueError("min_windows must be >= 1")
        if self.margin_windows < 1:
            raise ValueError("margin_windows must be >= 1")
        for name in ("rate_rtol", "power_rtol", "latency_rtol"):
            if not 0 < getattr(self, name) < 1:
                raise ValueError(f"{name} must be in (0, 1)")
        if self.max_splices < 1:
            raise ValueError("max_splices must be >= 1")


@dataclass(frozen=True)
class SpliceRecord:
    """Accounting for one analytic fast-forward.

    The exactness contract the ``fastpath_equivalence`` invariant checks
    lives here: the splice *must* have added exactly ``n_windows`` copies
    of the observed window -- ``records_added == n_windows *
    records_per_window`` and ``energy_added_j == n_windows *
    energy_per_window_j`` (up to float summation) -- and advanced time by
    exactly ``n_windows * window_s``.

    Attributes:
        t_from: Simulated time the splice engaged.
        t_to: Simulated time exact stepping resumed.
        window_s: Span of the replicated observation window.
        n_windows: Whole windows skipped.
        records_per_window: Completed IOs in the template window.
        records_added: IO records synthesized by replication.
        energy_per_window_j: Rail energy of the template window.
        energy_added_j: Rail energy of the replicated span.
        events_skipped: Kernel events the window would have cost,
            scaled by ``n_windows`` (measured, not estimated: the
            detector counts the template window's events).
    """

    t_from: float
    t_to: float
    window_s: float
    n_windows: int
    records_per_window: int
    records_added: int
    energy_per_window_j: float
    energy_added_j: float
    events_skipped: int


@dataclass(frozen=True)
class FastpathSummary:
    """What the fastpath actually did for one experiment.

    Attributes:
        engaged: Whether any fast-forward or batch dispatch happened.
        mode: The mode that ran (``"splice"``, ``"batch"``, or
            ``"exact"`` when the eligibility gate declined).
        reason: Why the gate declined (empty when engaged).
        splices: Per-splice accounting (splice mode).
        batched_ios: IOs dispatched through the flat kernel (batch mode).
        events_fast_forwarded: Kernel events skipped analytically; the
            benchmark's "effective events/sec" adds these to
            ``engine.events_processed``.
        time_fast_forwarded_s: Simulated seconds skipped analytically.
    """

    engaged: bool
    mode: str
    reason: str = ""
    splices: tuple[SpliceRecord, ...] = field(default_factory=tuple)
    batched_ios: int = 0
    events_fast_forwarded: int = 0
    time_fast_forwarded_s: float = 0.0

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        if not self.engaged:
            return f"declined ({self.reason}); ran exact"
        if self.mode == "batch":
            return (
                f"batch: {self.batched_ios} IOs dispatched flat "
                f"({self.events_fast_forwarded} events skipped)"
            )
        return (
            f"splice: {len(self.splices)} splice(s), "
            f"{self.time_fast_forwarded_s * 1e3:.1f} ms and "
            f"{self.events_fast_forwarded} events fast-forwarded"
        )
