"""Steady-state detection from observed simulation signals.

The detector never models the device -- it watches what the run already
produces: the job's completion records, the submission counter, the rail
power trace, and the kernel event counter.  A checkpoint is taken every
``window_records`` completions (at a *stable point*: no pending event at
the current instant, so no same-time cascade is in flight).  Three
consecutive checkpoints define two adjacent windows; when the windows
agree on completion rate, mean latency, and mean rail power within the
configured relative tolerances, the run is declared stationary and the
most recent window becomes the splice template.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.fastpath.options import FastpathOptions

__all__ = ["StationarityDetector", "WindowStats"]


@dataclass(frozen=True)
class WindowStats:
    """The template window a splice replicates.

    Attributes:
        t_start / t_end: Window bounds (both stable-point probe times).
        records_start / records_end: ``job.records`` indices bounding the
            window's completions.
        submissions: IOs submitted during the window.
        events: Kernel events the window cost.
        mean_power_w: Rail mean over the window.
    """

    t_start: float
    t_end: float
    records_start: int
    records_end: int
    submissions: int
    events: int
    mean_power_w: float

    @property
    def window_s(self) -> float:
        return self.t_end - self.t_start

    @property
    def records(self) -> int:
        return self.records_end - self.records_start


@dataclass(frozen=True)
class _Checkpoint:
    n_records: int
    t: float
    events: int
    issued_bytes: int


def _rel_close(a: float, b: float, rtol: float) -> bool:
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return True
    return abs(a - b) <= rtol * scale


class StationarityDetector:
    """Windowed stationarity test over a running job.

    Usage from the splice driver's stepping loop::

        if len(job.records) >= detector.next_probe_len and stable_point:
            stats = detector.probe(now, events_processed)
            if stats is not None:
                ...splice...
                detector.reset()
    """

    def __init__(self, job, rail, opts: FastpathOptions) -> None:
        self._job = job
        self._rail = rail
        self._opts = opts
        self._checkpoints: list[_Checkpoint] = []
        self.next_probe_len = opts.window_records

    def reset(self) -> None:
        """Forget all checkpoints (after a splice: the timeline moved)."""
        self._checkpoints.clear()
        self.next_probe_len = len(self._job.records) + self._opts.window_records

    def probe(self, now: float, events_processed: int) -> WindowStats | None:
        """Take a checkpoint; return the template window if stationary."""
        job = self._job
        n = len(job.records)
        self._checkpoints.append(
            _Checkpoint(n, now, events_processed, job._issued_bytes)
        )
        if len(self._checkpoints) > 3:
            self._checkpoints.pop(0)
        self.next_probe_len = n + self._opts.window_records
        if len(self._checkpoints) < 3:
            return None
        c0, c1, c2 = self._checkpoints
        w1 = c1.t - c0.t
        w2 = c2.t - c1.t
        n1 = c1.n_records - c0.n_records
        n2 = c2.n_records - c1.n_records
        if w1 <= 0 or w2 <= 0 or n1 <= 0 or n2 <= 0:
            return None
        opts = self._opts
        if not _rel_close(n1 / w1, n2 / w2, opts.rate_rtol):
            return None
        records = job.records
        lat1 = sum(
            r.complete_time - r.submit_time
            for r in records[c0.n_records : c1.n_records]
        ) / n1
        lat2 = sum(
            r.complete_time - r.submit_time
            for r in records[c1.n_records : c2.n_records]
        ) / n2
        if not _rel_close(lat1, lat2, opts.latency_rtol):
            return None
        trace = self._rail.trace
        p1 = trace.mean(c0.t, c1.t)
        p2 = trace.mean(c1.t, c2.t)
        if not _rel_close(p1, p2, opts.power_rtol):
            return None
        return WindowStats(
            t_start=c1.t,
            t_end=c2.t,
            records_start=c1.n_records,
            records_end=c2.n_records,
            submissions=(c2.issued_bytes - c1.issued_bytes)
            // job.spec.block_size,
            events=c2.events - c1.events,
            mean_power_w=p2,
        )
