"""Analytic steady-state fast-forward and batched kernel dispatch.

The event kernel pays per-event cost through every microsecond of a run,
yet the paper's measurements live in long quasi-steady windows where
nothing *changes* -- the same queue-depth of reads cycles through the
same service stations at the same rates.  This package skips simulation
where the answer is analytically known:

- **Splice mode** (:mod:`~repro.sim.fastpath.splice`): a stationarity
  detector watches the job's completion stream and the power rail; once
  consecutive observation windows agree, the run fast-forwards by whole
  windows -- pending events are shifted in time, the power trace and IO
  records are extended by replication, and exact simulation resumes a
  safety margin before the next behavior-change horizon (job deadline,
  size limit).
- **Batch mode** (:mod:`~repro.sim.fastpath.batch`): the whole read job
  is dispatched through the NAND/die timing model as flat arithmetic on
  per-resource availability clocks -- no coroutines, no event heap.

Both are opt-in via ``ExperimentConfig(fastpath=FastpathOptions(...))``
(or ``ExecutionOptions(fastpath=...)`` for sweeps) and are **never**
imported otherwise: a run without fastpath is bit-identical to a build
without this package (the zero-cost house rule).  With fastpath on,
results are *approximately* equivalent within the declared tolerances of
``tests/equivalence/tolerances.py``; scenarios the eligibility gate
declines fall back to exact stepping and stay bit-identical.  The
differential-testing harness under ``tests/equivalence/`` enforces both
regimes.
"""

from repro.sim.fastpath.driver import drive_job, splice_eligibility
from repro.sim.fastpath.options import (
    FastpathOptions,
    FastpathSummary,
    SpliceRecord,
)

__all__ = [
    "FastpathOptions",
    "FastpathSummary",
    "SpliceRecord",
    "drive_job",
    "splice_eligibility",
]
