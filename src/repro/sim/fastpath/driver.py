"""Fastpath experiment driver: eligibility gate + chunked stepping loop.

:func:`drive_job` replaces ``run_until_complete`` when an experiment
carries :class:`~repro.sim.fastpath.options.FastpathOptions`.  It first
decides *whether* the run can be accelerated at all; ineligible runs
take the exact inlined stepping loop and are bit-identical to a run
without fastpath (the differential harness pins this).

Eligibility is deliberately conservative -- every condition corresponds
to hidden state a fast-forward could not replicate:

- writes mutate FTL/allocator/wear/GC state page by page;
- fault plans are windowed in absolute time and draw their own RNG;
- online policies observe the live rail at cadence ticks;
- the program-intensity wave draws jittered RNG per toggle;
- a rail audit shadows every individual draw update;
- HDDs carry head-position state the records do not expose.

Read-only jobs on an operational SSD have none of these: reads are not
power-governed (no governor state), touch no FTL state, and the
housekeeping loops (maintenance, APST) are no-ops while the device is
busy -- which is what makes the splice's constant time shift of pending
events behaviorally invisible.
"""

from __future__ import annotations

import heapq

from repro.devices.ssd import SimulatedSSD
from repro.devices.link import LinkPowerMode
from repro.obs.events import EventKind
from repro.sim.engine import SimulationError
from repro.sim.fastpath.batch import run_batched_read_job
from repro.sim.fastpath.detect import StationarityDetector
from repro.sim.fastpath.options import FastpathOptions, FastpathSummary
from repro.sim.fastpath.splice import apply_fixups, splice_windows

__all__ = ["drive_job", "splice_eligibility"]


def splice_eligibility(device, config) -> str:
    """Why this run must not fast-forward; empty string when it may."""
    if not isinstance(device, SimulatedSSD):
        return "device is not a simulated SSD"
    if not config.job.pattern.is_read:
        return "write workloads mutate FTL/GC state"
    if config.faults is not None:
        return "fault plans are windowed in absolute time"
    if config.policy is not None:
        return "online policies observe the live rail"
    if device.config.power_wave_w > 0:
        return "program-intensity wave draws per-toggle RNG"
    if device.rail._audit is not None:
        return "rail audit shadows every draw update"
    resident = device.current_power_state
    if resident is not None and not resident.operational:
        return "device is in a non-operational power state"
    return ""


def _batch_eligibility(device, config) -> str:
    """Extra conditions for whole-job flat dispatch (beyond splice's)."""
    reason = splice_eligibility(device, config)
    if reason:
        return reason
    if device.link.mode is not LinkPowerMode.ACTIVE:
        return "link is in a low-power mode (wake path has state)"
    if device.config.apst_idle_timeout_s is not None:
        return "APST could doze inside the batch window"
    if device.engine.tracer.enabled:
        return "tracing needs the per-IO event stream"
    return ""


def drive_job(engine, device, job, config, opts: FastpathOptions) -> FastpathSummary:
    """Run ``job`` to completion under the configured fastpath mode."""
    if opts.mode in ("auto", "batch"):
        reason = _batch_eligibility(device, config)
        if not reason:
            dispatched = run_batched_read_job(engine, device, job)
            return FastpathSummary(
                engaged=True,
                mode="batch",
                batched_ios=dispatched,
                events_fast_forwarded=engine.events_fast_forwarded,
                time_fast_forwarded_s=job._end_time - job._start_time,
            )
        if opts.mode == "batch":
            # Explicit batch request that cannot run: exact fallback.
            master = job.start()
            engine.run_until_complete(master)
            return FastpathSummary(engaged=False, mode="exact", reason=reason)

    reason = splice_eligibility(device, config)
    master = job.start()
    if reason:
        engine.run_until_complete(master)
        return FastpathSummary(engaged=False, mode="exact", reason=reason)
    return _run_with_splices(engine, device, job, master, opts)


def _plan_windows(job, stats, opts: FastpathOptions) -> int:
    """Whole windows to skip, honoring every horizon with margin."""
    window_s = stats.window_s
    if window_s <= 0:
        return 0
    margin = opts.margin_windows
    by_deadline = int(
        (job.deadline - stats.t_end) / window_s - margin
    )
    n = by_deadline
    if stats.submissions > 0:
        bytes_per_window = stats.submissions * job.spec.block_size
        remaining = job.spec.size_limit_bytes - job._issued_bytes
        by_size = int(remaining / bytes_per_window) - margin
        if by_size < n:
            n = by_size
    if n < opts.min_windows:
        return 0
    return n


def _run_with_splices(engine, device, job, master, opts) -> FastpathSummary:
    """The exact inlined stepping loop, with stable-point splice probes.

    Identical event processing to ``Engine.run_until_complete`` -- the
    probe fires only *between* events, at instants where the next event
    lies strictly in the future (so no same-time cascade is in flight
    and every in-flight IO is accounted in ``device._inflight_ios``).
    """
    detector = StationarityDetector(job, device.rail, opts)
    splices = []
    fixups = []
    records = job.records
    tracer = engine.tracer
    queue = engine._queue
    pop = heapq.heappop
    base_events = engine.events_processed
    processed = 0
    try:
        while master._ok is None:
            if not queue:
                raise SimulationError("step() on an empty event queue")
            when, _seq, popped = pop(queue)
            engine._now = when
            processed += 1
            callbacks = popped.callbacks
            popped.callbacks = None
            if not callbacks and popped._ok is False:
                raise popped._value
            for callback in callbacks:
                callback(popped)
            if len(records) < detector.next_probe_len:
                continue
            if len(splices) >= opts.max_splices:
                continue
            if queue and queue[0][0] <= engine._now:
                continue  # same-time cascade still in flight
            stats = detector.probe(engine._now, base_events + processed)
            if stats is None:
                continue
            n_windows = _plan_windows(job, stats, opts)
            if n_windows <= 0:
                continue
            record, fixup = splice_windows(engine, device, job, stats, n_windows)
            splices.append(record)
            fixups.append(fixup)
            detector.reset()
            if tracer.enabled:
                tracer.emit(
                    EventKind.FAST_FORWARD,
                    f"{device.name}.fastpath",
                    t_from=record.t_from,
                    t_to=record.t_to,
                    n_windows=record.n_windows,
                    records_added=record.records_added,
                    events_skipped=record.events_skipped,
                )
    finally:
        engine.events_processed += processed
    fixed = apply_fixups(records, fixups)
    assert fixed <= len(fixups) * job.spec.iodepth
    return FastpathSummary(
        engaged=bool(splices),
        mode="splice",
        reason="" if splices else "no stationary window detected",
        splices=tuple(splices),
        events_fast_forwarded=sum(s.events_skipped for s in splices),
        time_fast_forwarded_s=sum(s.t_to - s.t_from for s in splices),
    )
