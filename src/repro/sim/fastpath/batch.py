"""Batched read dispatch: the NAND timing model as a flat event sweep.

The general kernel walks every read through generator coroutines,
``Event`` objects with callback lists, and ``Resource`` grant machinery
-- roughly nine allocated events per IO plus six per page.  For a
read-only job on an operational SSD the service network is fixed (cores
-> dies -> channels -> host link -> completion) with deterministic
service times, so this module replays the identical queueing discipline
as a flat sweep: one heap of plain tuples, per-station FIFO deques, and
scalar timestamps.  No coroutines, no Event allocation, no callback
dispatch.

The sweep is *hop-faithful*: every heap entry the event engine would
create on this path (process spawn, resource grant, timeout) has a flat
counterpart scheduled at the same instant, and sequence numbers are
assigned at the same moments the engine assigns them.  That matters
because the engine breaks same-instant ties by its global ``(time,
seq)`` order -- when two sense-ends hit one channel bus at the identical
float timestamp, the grant goes to whichever page's sense *timeout was
scheduled first*.  Reproducing that discipline hop for hop makes the
sweep's records bit-identical to the exact kernel's, tie interleavings
included, which is what lets ``tests/equivalence/`` hold batch mode to
event-time bit identity rather than statistical bounds.

Power activity is collected as ``(time, +/-watts)`` edges during the
sweep and folded into the rail trace in one sorted pass afterwards; only
same-instant float summation order can differ from the engine there.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.iogen.stats import IoRecord
from repro.nand.ops import OpKind

__all__ = ["run_batched_read_job"]

_PHANTOM_HASH = 2654435761
_PHANTOM_MOD = 2**32

# Flat mirrors of the event kernel's hops, one kind per heap entry the
# engine would create (heap entries sort by (time, seq); kind is payload).
_LOOP = 0  # worker resumes its submit loop
_IO_START = 1  # SimulatedSSD._io process spawn: request a core
_CORE_GRANT = 2  # cores.request() granted
_CORE_END = 3  # command-time timeout fires; spawn page processes
_PAGE_START = 4  # _read_page process spawn: request the die
_DIE_GRANT = 5  # die._server.request() granted
_SENSE_END = 6  # sense timeout fires; request the channel bus
_CHAN_GRANT = 7  # channel._bus.request() granted
_XFER_END = 8  # bus transfer timeout fires; release channel + die
_PAGE_DONE = 9  # _read_page process-done event
_ALLOF = 10  # all_of(readers) fires; request the host link
_LINK_GRANT = 11  # link._bus.request() granted
_LINK_END = 12  # link transfer timeout fires
_COMPLETE = 13  # completion-time timeout fires
_IO_DONE = 14  # the IO's done event; worker appends its record


def run_batched_read_job(engine, device, job) -> int:
    """Run ``job`` (already validated as batch-eligible) to completion.

    Fills ``job.records``/timestamps exactly as :meth:`FioJob.start` +
    engine stepping would, advances ``engine`` to the job's end time,
    and credits ``engine.events_fast_forwarded``.  Returns the number of
    IOs dispatched.
    """
    spec = job.spec
    config = device.config
    geometry = config.geometry
    page_size = geometry.page_size
    t0 = engine._now
    job._started = True
    job._start_time = t0
    deadline = t0 + spec.runtime_s
    size_limit = spec.size_limit_bytes
    block_size = spec.block_size
    host_overhead = spec.host_overhead_s
    cmd_t = config.controller.command_time_s
    completion_t = config.controller.completion_time_s
    core_w = config.controller.core_active_power_w
    die_read_t = device.array.dies[0]._op_duration[OpKind.READ]
    die_read_w = device.array._op_draw[OpKind.READ]
    chan_bw = config.channel_bandwidth
    chan_w = config.channel_transfer_power_w
    link = device.link
    link_w = link.transfer_power_w
    link_xfer_t = block_size / link.bandwidth
    phantom = config.phantom_reads
    total_pages = geometry.total_pages
    pages_per_die = geometry.pages_per_die
    dies_per_channel = geometry.dies_per_channel
    page_map = device.page_map
    next_offset = job._offsets.next_offset

    # Stations mirror Resource exactly: cores are a counting semaphore
    # with a FIFO waiter deque; dies, channels, and the link are
    # single-server FIFO (the die is held from sense start through
    # channel-transfer end, as in SimulatedSSD._read_page).
    cores_cap = config.controller.cores
    cores_used = 0
    core_waiters: deque = deque()
    n_dies = geometry.total_dies
    die_busy = [False] * n_dies
    die_waiters = [deque() for _ in range(n_dies)]
    chan_busy = [False] * geometry.channels
    chan_waiters = [deque() for _ in range(geometry.channels)]
    link_busy = False
    link_waiters: deque = deque()
    die_counts = [0] * n_dies
    chan_bytes = [0] * geometry.channels

    # Power activity as (time, delta_watts) edges, folded into the rail
    # trace after the sweep in one sorted pass.
    edges: list[tuple[float, float]] = []
    edge = edges.append

    # IO state, indexed by a dense id: [t_sub, worker, pages_left, offset].
    ios: list[list] = []
    records = job.records
    last_exit = t0
    last_complete = t0
    dispatched = 0

    heap: list[tuple] = []
    push = heapq.heappush
    pop = heapq.heappop
    seq = 0
    for w in range(spec.iodepth):
        seq += 1
        push(heap, (t0, seq, _LOOP, w, 0, 0))

    while heap:
        t, _s, kind, a, b, c = pop(heap)
        if kind == _SENSE_END:
            # a = io_id, b = die index, c = (channel, nbytes): sense
            # finished; the die stays held while the page waits for and
            # uses the channel bus.
            die_counts[b] += 1
            edge((t, -die_read_w))
            channel, nbytes = c
            if chan_busy[channel]:
                chan_waiters[channel].append((a, b, nbytes))
            else:
                chan_busy[channel] = True
                seq += 1
                push(heap, (t, seq, _CHAN_GRANT, a, b, nbytes))
        elif kind == _CHAN_GRANT:
            edge((t, chan_w))
            seq += 1
            push(heap, (t + c / chan_bw, seq, _XFER_END, a, b, c))
        elif kind == _XFER_END:
            # a = io_id, b = die index, c = nbytes.  Creation order
            # mirrors _read_page's unwind: channel release first, then
            # die release, then the page process-done event.
            channel = b // dies_per_channel
            chan_bytes[channel] += c
            edge((t, -chan_w))
            waiters = chan_waiters[channel]
            if waiters:
                na, nb, nn = waiters.popleft()
                seq += 1
                push(heap, (t, seq, _CHAN_GRANT, na, nb, nn))
            else:
                chan_busy[channel] = False
            dwaiters = die_waiters[b]
            if dwaiters:
                na, nc = dwaiters.popleft()
                seq += 1
                push(heap, (t, seq, _DIE_GRANT, na, b, nc))
            else:
                die_busy[b] = False
            seq += 1
            push(heap, (t, seq, _PAGE_DONE, a, 0, 0))
        elif kind == _PAGE_START:
            # a = io_id, b = die index (-1: unmapped zero-fill, no NAND
            # touch), c = (channel, nbytes).
            if b < 0:
                seq += 1
                push(heap, (t, seq, _PAGE_DONE, a, 0, 0))
            elif die_busy[b]:
                die_waiters[b].append((a, c))
            else:
                die_busy[b] = True
                seq += 1
                push(heap, (t, seq, _DIE_GRANT, a, b, c))
        elif kind == _DIE_GRANT:
            edge((t, die_read_w))
            seq += 1
            push(heap, (t + die_read_t, seq, _SENSE_END, a, b, c))
        elif kind == _PAGE_DONE:
            io = ios[a]
            io[2] -= 1
            if io[2] == 0:
                seq += 1
                push(heap, (t, seq, _ALLOF, a, 0, 0))
        elif kind == _ALLOF:
            if link_busy:
                link_waiters.append(a)
            else:
                link_busy = True
                seq += 1
                push(heap, (t, seq, _LINK_GRANT, a, 0, 0))
        elif kind == _LINK_GRANT:
            edge((t, link_w))
            seq += 1
            push(heap, (t + link_xfer_t, seq, _LINK_END, a, 0, 0))
        elif kind == _LINK_END:
            link.bytes_transferred += block_size
            edge((t, -link_w))
            if link_waiters:
                seq += 1
                push(heap, (t, seq, _LINK_GRANT, link_waiters.popleft(), 0, 0))
            else:
                link_busy = False
            if completion_t > 0:
                seq += 1
                push(heap, (t + completion_t, seq, _COMPLETE, a, 0, 0))
            else:
                last_complete = t
                seq += 1
                push(heap, (t, seq, _IO_DONE, a, 0, 0))
        elif kind == _COMPLETE:
            last_complete = t
            seq += 1
            push(heap, (t, seq, _IO_DONE, a, 0, 0))
        elif kind == _IO_DONE:
            io = ios[a]
            records.append(IoRecord(io[0], t, block_size))
            dispatched += 1
            if host_overhead > 0:
                seq += 1
                push(heap, (t + host_overhead, seq, _LOOP, io[1], 0, 0))
            else:
                # Zero host overhead: the worker loops within the done
                # event's callback, no intervening hop.
                if t >= deadline or job._issued_bytes >= size_limit:
                    if t > last_exit:
                        last_exit = t
                else:
                    offset = next_offset()
                    job._issued_bytes += block_size
                    io_id = len(ios)
                    ios.append([t, io[1], 0, offset])
                    seq += 1
                    push(heap, (t, seq, _IO_START, io_id, 0, 0))
        elif kind == _LOOP:
            # a = worker index.  Mirrors FioJob._worker's stop check.
            if t >= deadline or job._issued_bytes >= size_limit:
                if t > last_exit:
                    last_exit = t
                continue
            offset = next_offset()
            job._issued_bytes += block_size
            io_id = len(ios)
            ios.append([t, a, 0, offset])
            seq += 1
            push(heap, (t, seq, _IO_START, io_id, 0, 0))
        elif kind == _IO_START:
            if cores_used < cores_cap:
                cores_used += 1
                seq += 1
                push(heap, (t, seq, _CORE_GRANT, a, 0, 0))
            else:
                core_waiters.append(a)
        elif kind == _CORE_GRANT:
            edge((t, core_w))
            seq += 1
            push(heap, (t + cmd_t, seq, _CORE_END, a, 0, 0))
        else:  # _CORE_END
            # _controller_step unwinds (release grants the next waiter)
            # *before* _read spawns the page processes.
            edge((t, -core_w))
            if core_waiters:
                seq += 1
                push(heap, (t, seq, _CORE_GRANT, core_waiters.popleft(), 0, 0))
            else:
                cores_used -= 1
            io = ios[a]
            offset = io[3]
            end = offset + block_size
            first = offset // page_size
            last = (end - 1) // page_size
            pages = 0
            for lpn in range(first, last + 1):
                ppn = page_map.lookup(lpn)
                pages += 1
                seq += 1
                if ppn is None and not phantom:
                    push(heap, (t, seq, _PAGE_START, a, -1, 0))
                    continue
                if ppn is None:
                    ppn = (lpn * _PHANTOM_HASH) % _PHANTOM_MOD % total_pages
                page_start = lpn * page_size
                nbytes = min(end, page_start + page_size) - max(
                    offset, page_start
                )
                # ppa_from_index reduced to the two fields reads use.
                die_linear = ppn // pages_per_die
                channel = die_linear // dies_per_channel
                push(
                    heap,
                    (t, seq, _PAGE_START, a, die_linear, (channel, nbytes)),
                )
            io[2] = pages

    # -- fold the power edges into the rail trace -----------------------
    # Same-time edges collapse into one breakpoint; the net draw returns
    # to zero so the rail's component ledger needs no update.
    edges.sort()
    rail = device.rail
    trace = rail.trace
    total = rail._total
    set_point = trace.set
    i = 0
    n_edges = len(edges)
    while i < n_edges:
        t, dw = edges[i]
        i += 1
        while i < n_edges and edges[i][0] == t:
            dw += edges[i][1]
            i += 1
        if dw != 0.0:
            total += dw
            set_point(t, total)

    # -- per-die / per-channel / device accounting ----------------------
    for die, count in zip(device.array.dies, die_counts):
        die.op_counts[OpKind.READ] += count
    for chan, nbytes in zip(device.array.channels, chan_bytes):
        chan.bytes_transferred += nbytes
    device.ios_completed += dispatched
    device.bytes_read += dispatched * block_size

    # -- job/engine finalization ----------------------------------------
    # seq counts the swept heap entries, one per engine hop on this path.
    engine._now = last_exit
    engine.events_fast_forwarded += seq
    job._end_time = last_exit
    device._last_activity = last_complete
    return dispatched
