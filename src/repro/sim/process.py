"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.sim.engine.Event`; the process sleeps until that event fires
and is resumed with the event's value (or has the failure exception thrown
into it).  A process is itself an event, firing with the generator's return
value, so processes can wait on each other::

    def child(engine):
        yield engine.timeout(1.0)
        return 42

    def parent(engine):
        result = yield engine.process(child(engine))
        assert result == 42
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["Interrupt", "Process"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Attributes:
        cause: Arbitrary value describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running coroutine; also an event that fires when it returns.

    Uncaught exceptions inside the generator fail the process event.  If
    nothing is waiting on a failed process the exception propagates out of
    the engine loop -- errors never pass silently.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        engine: Engine,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next engine step so creation order does not matter.
        # Inlined start.succeed() + add_callback: a fresh event cannot be
        # triggered, scheduled or processed yet, and process spawns are
        # per-IO in the device models.
        start = Event(engine)
        start._ok = True
        start._scheduled = True
        engine._seq += 1
        heapq.heappush(engine._queue, (engine._now, engine._seq, start))
        start.callbacks.append(self._resume)
        self._waiting_on = start

    @property
    def is_alive(self) -> bool:
        """Whether the generator can still run."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; check :attr:`is_alive`
        first when the race is possible.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting_on = self._waiting_on
        self._waiting_on = None
        if waiting_on is not None and waiting_on.callbacks is not None:
            try:
                waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver on a fresh immediate event to stay inside the engine loop.
        wakeup = Event(self.engine)
        wakeup.fail(Interrupt(cause))
        wakeup.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self._ok is not None:  # finished; late wakeups are no-ops
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} died of an unhandled Interrupt"
            ) from None
        except BaseException as exc:
            # The generator raised (or re-raised a failure it was thrown):
            # fail the process event.  If something waits on this process
            # the exception is delivered there; otherwise the engine
            # re-raises it when the failure is processed.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        if target is self:
            raise SimulationError(f"process {self.name!r} waited on itself")
        self._waiting_on = target
        # Inlined target.add_callback(self._resume): one method call per
        # yield adds up at millions of events per run.
        callbacks = target.callbacks
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume)
