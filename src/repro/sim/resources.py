"""Shared-resource primitives for device modelling.

- :class:`Resource` -- classic counted resource with FIFO queueing.  Models
  NAND dies, channel buses, controller cores, the HDD actuator.
- :class:`AdjustableResource` -- a resource whose capacity can change at
  runtime.  This is the heart of the power-cap governor: lowering an NVMe
  power state shrinks the number of NAND operations allowed in flight.
- :class:`Store` -- FIFO buffer of items with blocking put/get, used for the
  SSD DRAM write buffer and the HDD write-back cache.
- :class:`Gate` -- a boolean barrier processes can wait to open, used for
  standby/spin-up holds.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["AdjustableResource", "Gate", "Resource", "Store"]


class Resource:
    """A counted resource with FIFO grant order.

    Usage from a process::

        grant = yield resource.request()
        try:
            yield engine.timeout(service_time)
        finally:
            resource.release()

    Attributes:
        capacity: Maximum concurrent holders.
        in_use: Current number of holders.
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.name = name
        self._capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def queued(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a unit is granted."""
        engine = self.engine
        event = Event(engine)
        if self.in_use < self._capacity:
            self.in_use += 1
            # Inlined event.succeed(self): a fresh event can be neither
            # triggered nor scheduled, and grants happen once per die/bus/
            # core acquisition -- several times per simulated IO.
            event._ok = True
            event._value = self
            event._scheduled = True
            engine._seq += 1
            heapq.heappush(engine._queue, (engine._now, engine._seq, event))
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"{self.name}: release() without a holder")
        if self._waiters and self.in_use <= self._capacity:
            # Hand the unit straight to the next waiter: in_use is unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self.in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} {self.in_use}/"
            f"{self._capacity} queued={self.queued}>"
        )


class AdjustableResource(Resource):
    """A :class:`Resource` whose capacity can change at runtime.

    Growing the capacity immediately grants queued waiters.  Shrinking never
    preempts current holders; the resource simply stops granting until
    ``in_use`` drops below the new capacity.  This matches how an SSD power
    governor behaves: in-flight NAND operations finish, new ones stall.
    """

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(
                f"{self.name}: capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        while self._waiters and self.in_use < self._capacity:
            self.in_use += 1
            self._waiters.popleft().succeed(self)


class Store:
    """FIFO item buffer with blocking ``put`` (when full) and ``get``.

    ``capacity`` may be ``None`` for an unbounded store.  Items are opaque.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1 or None")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has entered the store."""
        event = Event(self.engine)
        if self._getters:
            # Hand the item directly to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif not self.is_full:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns ``False`` if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Event that fires with the oldest item."""
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()


class Gate:
    """A reusable open/closed barrier.

    Processes wait with ``yield gate.wait_open()``; :meth:`open` releases all
    current waiters at once.  Used to hold IO while a device is in standby or
    an HDD is spinning up.
    """

    def __init__(self, engine: Engine, is_open: bool = True, name: str = "gate") -> None:
        self.engine = engine
        self.name = name
        self._open = is_open
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait_open(self) -> Event:
        """Event firing immediately if open, else when :meth:`open` is called."""
        event = Event(self.engine)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def close(self) -> None:
        self._open = False
