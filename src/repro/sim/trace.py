"""Piecewise-constant time series.

Instantaneous device power is a step function: every time a component starts
or stops drawing current the total changes and holds until the next change.
:class:`StepTrace` records those breakpoints and supports the operations the
measurement chain and the analysis layer need: point sampling at arbitrary
times (the ADC), time-weighted statistics, and energy integration.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["StepTrace"]


class StepTrace:
    """An append-only step function ``value(t)``.

    The trace holds ``value = values[i]`` on ``[times[i], times[i+1])``.
    Appends must be at non-decreasing times; re-setting the value at the
    current last time overwrites it (several components updating their draw
    at the same instant collapse into one breakpoint).
    """

    def __init__(self, t0: float = 0.0, initial: float = 0.0) -> None:
        self._times: list[float] = [t0]
        self._values: list[float] = [initial]

    def __len__(self) -> int:
        return len(self._times)

    @property
    def start_time(self) -> float:
        return self._times[0]

    @property
    def last_time(self) -> float:
        return self._times[-1]

    @property
    def last_value(self) -> float:
        return self._values[-1]

    def set(self, t: float, value: float) -> None:
        """Record that the function takes ``value`` from time ``t`` on."""
        last_t = self._times[-1]
        if t < last_t:
            raise ValueError(
                f"StepTrace.set at t={t!r} before last breakpoint {last_t!r}"
            )
        if t == last_t:
            self._values[-1] = value
        elif value != self._values[-1]:
            self._times.append(t)
            self._values.append(value)
        # equal value at a later time: nothing to record.

    def breakpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as arrays (copies)."""
        return np.asarray(self._times, float), np.asarray(self._values, float)

    # -- sampling ---------------------------------------------------------

    def value_at(self, t: float) -> float:
        """Value of the step function at time ``t``.

        Times before the first breakpoint return the initial value; times
        after the last return the last value (the step "holds").
        """
        idx = np.searchsorted(self._times, t, side="right") - 1
        return self._values[max(idx, 0)]

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`value_at` over ``times``."""
        times_arr = np.asarray(times, float)
        idx = np.searchsorted(self._times, times_arr, side="right") - 1
        idx = np.clip(idx, 0, None)
        return np.asarray(self._values, float)[idx]

    def sample_uniform(self, t_start: float, t_end: float, rate_hz: float) -> tuple[np.ndarray, np.ndarray]:
        """Sample at ``rate_hz`` on ``[t_start, t_end)``; returns (times, values)."""
        if t_end <= t_start:
            raise ValueError("t_end must be after t_start")
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        n = int(np.floor((t_end - t_start) * rate_hz))
        times = t_start + np.arange(n) / rate_hz
        return times, self.sample(times)

    # -- time-weighted statistics ------------------------------------------

    def _segments(self, t_start: float, t_end: float) -> tuple[np.ndarray, np.ndarray]:
        """Durations and values of the step segments covering a window."""
        if t_end <= t_start:
            raise ValueError("t_end must be after t_start")
        times, values = self.breakpoints()
        # Clamp the window into the trace, extending the last value forward.
        edges = np.concatenate(([t_start], times[(times > t_start) & (times < t_end)], [t_end]))
        durations = np.diff(edges)
        seg_values = self.sample(edges[:-1])
        return durations, seg_values

    def integrate(self, t_start: float, t_end: float) -> float:
        """Integral of the function over the window (power -> energy, J)."""
        durations, values = self._segments(t_start, t_end)
        return float(np.dot(durations, values))

    def mean(self, t_start: float, t_end: float) -> float:
        """Time-weighted mean over the window."""
        return self.integrate(t_start, t_end) / (t_end - t_start)

    def min(self, t_start: float, t_end: float) -> float:
        __, values = self._segments(t_start, t_end)
        return float(values.min())

    def max(self, t_start: float, t_end: float) -> float:
        __, values = self._segments(t_start, t_end)
        return float(values.max())

    def rolling_mean_max(self, window: float, t_start: float, t_end: float, step: float) -> float:
        """Maximum over sliding-window means -- used to verify NVMe caps.

        The NVMe specification defines a power state's maximum power as an
        average over any 10-second window; this measures exactly that.
        """
        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        last_start = np.floor((t_end - t_start - window + 1e-12) / step)
        if last_start < 0:
            # Window longer than the span: fall back to the full-span mean.
            return self.mean(t_start, t_end)
        # One pass over the breakpoints builds the cumulative integral;
        # each window mean is then two O(log n) lookups instead of a full
        # segment rebuild (the naive loop is O(windows x breakpoints)).
        times, values = self.breakpoints()
        cumulative = np.concatenate(([0.0], np.cumsum(np.diff(times) * values[:-1])))

        def integral_to(ts: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(times, ts, side="right") - 1
            idx = np.clip(idx, 0, None)
            return cumulative[idx] + (ts - times[idx]) * values[idx]

        starts = t_start + step * np.arange(int(last_start) + 1)
        integrals = integral_to(starts + window) - integral_to(starts)
        return float(integrals.max() / window)
