"""Deterministic named random streams.

Every stochastic element of the simulation (measurement noise, rotational
latency, random IO offsets, controller jitter) pulls from its own named
stream derived from one root seed.  Adding a new consumer therefore never
perturbs the draws seen by existing consumers, which keeps calibrated
experiment results stable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


def _name_spawn_key(name: str) -> tuple[int, ...]:
    """Map a stream name to a SeedSequence spawn key, stably.

    The digest covers the *full* name: truncating to a prefix would hand
    any two names sharing that prefix (``"controller.jitter"`` /
    ``"controllerXYZ"``) the same stream, silently correlating what should
    be independent noise sources.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )


class RngStreams:
    """A family of independent ``numpy.random.Generator`` streams.

    Example:
        >>> streams = RngStreams(seed=7)
        >>> a = streams.get("adc-noise")
        >>> b = streams.get("io-offsets")
        >>> a is streams.get("adc-noise")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            # Derive a child seed from (root seed, name) so stream identity
            # depends only on the name, not on creation order.
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=_name_spawn_key(name)
            )
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def fork(self, salt: int) -> "RngStreams":
        """A new family with a seed derived from this one and ``salt``.

        Used to give each experiment in a sweep its own independent noise
        while the sweep as a whole stays reproducible from one seed.
        """
        return RngStreams(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)
