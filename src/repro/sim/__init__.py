"""Discrete-event simulation kernel.

A small, dependency-free, simpy-style engine used as the substrate for all
device simulation in this project:

- :class:`~repro.sim.engine.Engine` -- the event loop and simulated clock.
- :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Timeout` --
  one-shot events processes can wait on.
- :class:`~repro.sim.process.Process` -- generator-based coroutines that
  ``yield`` events to wait for them.
- :mod:`~repro.sim.resources` -- FIFO resources (fixed and adjustable
  capacity), stores, and gates used to model controllers, dies, buses and
  power governors.
- :class:`~repro.sim.trace.StepTrace` -- piecewise-constant time series used
  to record instantaneous power draw.
- :class:`~repro.sim.rng.RngStreams` -- deterministic, named random streams.

Simulated time is a float in **seconds**.
"""

from repro.sim.engine import (
    Engine,
    Event,
    SimulationError,
    StopEngine,
    Timeout,
)
from repro.sim.process import Interrupt, Process
from repro.sim.resources import (
    AdjustableResource,
    Gate,
    Resource,
    Store,
)
from repro.sim.rng import RngStreams
from repro.sim.trace import StepTrace

__all__ = [
    "AdjustableResource",
    "Engine",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "Resource",
    "RngStreams",
    "SimulationError",
    "StepTrace",
    "Store",
    "StopEngine",
    "Timeout",
]
