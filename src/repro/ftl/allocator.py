"""Log-structured write allocation with die striping.

The allocator owns block lifecycle (free -> open -> full -> erased back to
free) and hands out physical pages for host writes and GC relocations.
Consecutive allocations rotate round-robin across dies, so a long write
burst spreads over the whole array -- this is what lets queue depth and IO
size modulate die-level parallelism, and with it both throughput *and*
power (paper Figs. 8 and 9).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.nand.geometry import NandGeometry, PhysicalPageAddress

__all__ = ["BlockInfo", "BlockState", "WriteAllocator"]


class BlockState(enum.Enum):
    FREE = "free"
    OPEN = "open"
    FULL = "full"


@dataclass(slots=True)
class BlockInfo:
    """Per-block bookkeeping.

    Attributes:
        block_id: Global block number.
        die_index: Die the block lives on.
        state: Lifecycle state.
        next_page: Next page offset to program in an OPEN block.
        valid: Set of in-block page offsets currently holding valid data.
    """

    block_id: int
    die_index: int
    state: BlockState = BlockState.FREE
    next_page: int = 0
    valid: set[int] = field(default_factory=set)

    @property
    def valid_count(self) -> int:
        return len(self.valid)


class WriteAllocator:
    """Allocates physical pages and tracks block validity.

    One open block per die; page allocations rotate dies round-robin.

    ``gc_reserve_blocks`` free blocks are held back from host writes so
    garbage collection always has somewhere to relocate valid pages --
    without the reserve, a write burst can drain the free pool to zero and
    deadlock the cleaner (the classic FTL over-provisioning invariant).
    """

    def __init__(self, geometry: NandGeometry, gc_reserve_blocks: int = 2) -> None:
        if gc_reserve_blocks < 0:
            raise ValueError("gc_reserve_blocks must be non-negative")
        if gc_reserve_blocks >= geometry.total_blocks:
            raise ValueError("reserve cannot cover the whole array")
        self.geometry = geometry
        self.gc_reserve_blocks = gc_reserve_blocks
        # block_id enumerates (die, plane, block) in order, so ids are
        # contiguous per die: die d owns [d * bpd, (d + 1) * bpd).  Bulk
        # construction from ranges replaces the triple nested loop -- the
        # allocator is rebuilt for every experiment, which made __init__
        # itself a measurable slice of short benchmark runs.
        blocks_per_die = geometry.planes_per_die * geometry.blocks_per_plane
        self.blocks: list[BlockInfo] = [
            BlockInfo(block_id, block_id // blocks_per_die)
            for block_id in range(geometry.total_blocks)
        ]
        self._free_per_die: list[Deque[int]] = [
            deque(range(die * blocks_per_die, (die + 1) * blocks_per_die))
            for die in range(geometry.total_dies)
        ]
        self._open_per_die: list[Optional[int]] = [None] * geometry.total_dies
        self._rr_die = 0
        # Running total of free blocks across dies; kept in sync by
        # _open_block/erase so the GC pressure check (which runs on every
        # program) never rescans the per-die deques.
        self._free_total = geometry.total_blocks

    # -- derived queries ----------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return self._free_total

    def free_blocks_on_die(self, die_index: int) -> int:
        return len(self._free_per_die[die_index])

    def block_of_ppn(self, ppn: int) -> BlockInfo:
        return self.blocks[ppn // self.geometry.pages_per_block]

    def ppa_of_allocation(self, block: BlockInfo, page_offset: int) -> PhysicalPageAddress:
        ppn = block.block_id * self.geometry.pages_per_block + page_offset
        return self.geometry.ppa_from_index(ppn)

    # -- allocation -----------------------------------------------------------

    def allocate(
        self, die_index: Optional[int] = None, for_gc: bool = False
    ) -> tuple[int, PhysicalPageAddress]:
        """Allocate the next physical page.

        Returns ``(ppn, ppa)``.  Without ``die_index`` the allocator rotates
        round-robin across dies that still have space; with it, allocation
        is pinned.  ``for_gc`` allocations (relocations) may dig into the
        reserved block pool; host allocations may not.

        Raises:
            RuntimeError: If the chosen scope has no free space left --
                the device-level caller must run garbage collection first.
        """
        if die_index is None:
            for _ in range(self.geometry.total_dies):
                candidate = self._rr_die
                self._rr_die = (self._rr_die + 1) % self.geometry.total_dies
                if self._die_has_space(candidate, for_gc):
                    die_index = candidate
                    break
            if die_index is None:
                raise RuntimeError("flash array is out of free pages (GC needed)")
        elif not self._die_has_space(die_index, for_gc):
            raise RuntimeError(f"die {die_index} is out of free pages (GC needed)")

        block = self._open_block(die_index)
        page_offset = block.next_page
        block.next_page += 1
        block.valid.add(page_offset)
        if block.next_page >= self.geometry.pages_per_block:
            block.state = BlockState.FULL
            self._open_per_die[die_index] = None
        ppn = block.block_id * self.geometry.pages_per_block + page_offset
        return ppn, self.geometry.ppa_from_index(ppn)

    def _die_has_space(self, die_index: int, for_gc: bool = False) -> bool:
        if self._open_per_die[die_index] is not None:
            return True
        if not self._free_per_die[die_index]:
            return False
        return for_gc or self.free_blocks > self.gc_reserve_blocks

    def _open_block(self, die_index: int) -> BlockInfo:
        open_id = self._open_per_die[die_index]
        if open_id is not None:
            return self.blocks[open_id]
        if not self._free_per_die[die_index]:
            raise RuntimeError(f"die {die_index} has no free blocks")
        block_id = self._free_per_die[die_index].popleft()
        self._free_total -= 1
        block = self.blocks[block_id]
        if block.state is not BlockState.FREE:
            raise AssertionError(f"block {block_id} in free list but {block.state}")
        block.state = BlockState.OPEN
        block.next_page = 0
        block.valid.clear()
        self._open_per_die[die_index] = block_id
        return block

    # -- invalidation / erase ---------------------------------------------------

    def mark_invalid(self, ppn: int) -> None:
        """Mark a physical page stale (after an overwrite or TRIM)."""
        block = self.block_of_ppn(ppn)
        page_offset = ppn % self.geometry.pages_per_block
        block.valid.discard(page_offset)

    def erase(self, block_id: int) -> None:
        """Return a FULL block with no valid pages to the free pool."""
        block = self.blocks[block_id]
        if block.state is BlockState.OPEN:
            raise ValueError(f"cannot erase open block {block_id}")
        if block.valid:
            raise ValueError(
                f"block {block_id} still has {block.valid_count} valid pages"
            )
        block.state = BlockState.FREE
        block.next_page = 0
        self._free_per_die[block.die_index].append(block_id)
        self._free_total += 1

    def victim_candidates(self) -> list[BlockInfo]:
        """FULL blocks, cheapest victims (fewest valid pages) first."""
        fulls = [b for b in self.blocks if b.state is BlockState.FULL]
        fulls.sort(key=lambda b: b.valid_count)
        return fulls
