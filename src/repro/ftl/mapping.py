"""Logical-to-physical page mapping.

The map is page-granular: logical page number (LPN) to physical page index
(the linear index of :class:`~repro.nand.geometry.NandGeometry`).  A reverse
map is maintained so garbage collection can find the owning LPN of a valid
physical page in O(1).
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["PageMap"]


class PageMap:
    """Bidirectional LPN <-> physical-page-index map.

    Attributes:
        logical_pages: Size of the logical address space in pages.
    """

    def __init__(self, logical_pages: int) -> None:
        if logical_pages < 1:
            raise ValueError("logical_pages must be >= 1")
        self.logical_pages = logical_pages
        self._forward: dict[int, int] = {}
        self._reverse: dict[int, int] = {}

    def __len__(self) -> int:
        """Number of mapped logical pages."""
        return len(self._forward)

    def lookup(self, lpn: int) -> Optional[int]:
        """Physical page index for ``lpn``, or ``None`` if never written."""
        self._check_lpn(lpn)
        return self._forward.get(lpn)

    def lpn_of(self, ppn: int) -> Optional[int]:
        """Owning LPN of a physical page, or ``None`` if not currently valid."""
        return self._reverse.get(ppn)

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        """Map ``lpn`` to ``ppn``; returns the previous PPN (now stale).

        The caller (the allocator) is responsible for marking the returned
        stale physical page invalid in its block accounting.
        """
        self._check_lpn(lpn)
        if ppn in self._reverse:
            raise ValueError(f"physical page {ppn} is already mapped")
        previous = self._forward.get(lpn)
        if previous is not None:
            del self._reverse[previous]
        self._forward[lpn] = ppn
        self._reverse[ppn] = lpn
        return previous

    def unbind(self, lpn: int) -> Optional[int]:
        """Remove the mapping for ``lpn`` (TRIM); returns the freed PPN."""
        self._check_lpn(lpn)
        ppn = self._forward.pop(lpn, None)
        if ppn is not None:
            del self._reverse[ppn]
        return ppn

    def mapped_lpns(self) -> Iterator[int]:
        return iter(self._forward)

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"LPN {lpn} outside logical space of {self.logical_pages} pages"
            )
