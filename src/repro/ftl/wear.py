"""Wear accounting.

Tracks per-block erase counts and derives the usual endurance statistics.
The reproduction does not need wear *leveling* (experiments are short), but
write-amplification and erase accounting make GC behaviour observable and
testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WearStats", "WearTracker"]


@dataclass(frozen=True)
class WearStats:
    """Summary of array wear.

    Attributes:
        total_erases: Erase operations since construction.
        max_erases: Highest per-block erase count.
        mean_erases: Mean per-block erase count.
        skew: max/mean ratio (1.0 = perfectly even wear); 0 when unworn.
    """

    total_erases: int
    max_erases: int
    mean_erases: float
    skew: float


class WearTracker:
    """Per-block erase counters plus host/NAND write byte counters."""

    def __init__(self, total_blocks: int) -> None:
        if total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        self._erases = np.zeros(total_blocks, dtype=np.int64)
        self.host_bytes_written = 0
        self.nand_bytes_written = 0

    def record_erase(self, block_id: int) -> None:
        self._erases[block_id] += 1

    def record_host_write(self, nbytes: int) -> None:
        self.host_bytes_written += nbytes

    def record_nand_write(self, nbytes: int) -> None:
        self.nand_bytes_written += nbytes

    def erase_count(self, block_id: int) -> int:
        return int(self._erases[block_id])

    @property
    def write_amplification(self) -> float:
        """NAND bytes programmed per host byte written (>= 1 once writing)."""
        if self.host_bytes_written == 0:
            return 0.0
        return self.nand_bytes_written / self.host_bytes_written

    def stats(self) -> WearStats:
        total = int(self._erases.sum())
        max_e = int(self._erases.max())
        mean_e = float(self._erases.mean())
        return WearStats(
            total_erases=total,
            max_erases=max_e,
            mean_erases=mean_e,
            skew=(max_e / mean_e) if mean_e > 0 else 0.0,
        )
