"""Flash translation layer.

A page-level FTL sitting between the SSD's host-facing logical address space
and the :mod:`~repro.nand` array:

- :class:`~repro.ftl.mapping.PageMap` -- logical-to-physical page table with
  the reverse map needed by garbage collection.
- :class:`~repro.ftl.allocator.WriteAllocator` -- log-structured write
  allocation, striping consecutive pages round-robin across dies so that
  host bandwidth scales with die-level parallelism (the mechanism IO shaping
  modulates: small/shallow IO keeps most dies idle, saving power).
- :class:`~repro.ftl.gc.GarbageCollector` -- greedy victim selection,
  valid-page relocation and block erase.
- :class:`~repro.ftl.wear.WearTracker` -- erase-count accounting.
"""

from repro.ftl.allocator import BlockState, WriteAllocator
from repro.ftl.gc import GarbageCollector, GcConfig
from repro.ftl.mapping import PageMap
from repro.ftl.wear import WearTracker

__all__ = [
    "BlockState",
    "GarbageCollector",
    "GcConfig",
    "PageMap",
    "WearTracker",
]
