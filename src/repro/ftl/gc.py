"""Garbage collection.

A greedy collector: when the free-block pool drops below a low watermark it
picks the FULL block with the fewest valid pages, relocates those pages
(read + program through the real NAND array, drawing real power), erases the
block and returns it to the pool, continuing until a high watermark is
restored.

GC work shares the same power governor as host IO in the SSD device model,
so under a power cap GC competes with the host for the program budget --
a second-order effect the paper's sustained-write measurements include
implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.faults.injector import NULL_INJECTOR
from repro.ftl.allocator import WriteAllocator
from repro.ftl.mapping import PageMap
from repro.ftl.wear import WearTracker
from repro.obs.events import EventKind
from repro.sim.resources import Resource
from repro.nand.die import NandArray
from repro.nand.ops import OpKind

__all__ = ["GarbageCollector", "GcConfig"]


@dataclass(frozen=True)
class GcConfig:
    """Watermarks controlling when GC runs.

    Attributes:
        low_watermark: Start collecting when free blocks fall to this count.
        high_watermark: Stop once free blocks recover to this count.
    """

    low_watermark: int = 4
    high_watermark: int = 8

    def __post_init__(self) -> None:
        if self.low_watermark < 1:
            raise ValueError("low_watermark must be >= 1")
        if self.high_watermark <= self.low_watermark:
            raise ValueError("high_watermark must exceed low_watermark")


class GarbageCollector:
    """Greedy valid-page relocation and block erase.

    The collector is invoked synchronously by the device's write path when
    allocation pressure demands it (``maybe_collect``), keeping the model
    simple and deterministic while still charging the array for every
    relocation read/program and erase.
    """

    def __init__(
        self,
        array: NandArray,
        allocator: WriteAllocator,
        page_map: PageMap,
        config: GcConfig | None = None,
        wear: Optional[WearTracker] = None,
        admission: Optional[Callable[[OpKind], object]] = None,
        name: str = "gc",
        faults=None,
    ) -> None:
        self.array = array
        self.allocator = allocator
        self.page_map = page_map
        self.config = config or GcConfig()
        self.wear = wear
        self._admission = admission
        self.name = name
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.blocks_erased = 0
        self.pages_relocated = 0
        # Many flush processes may demand collection at once; victim
        # selection and relocation must not interleave (a second collector
        # could pick a block the first is about to erase).
        self._lock = Resource(array.engine, capacity=1, name="gc-lock")

    @property
    def pressure(self) -> bool:
        """Whether free space is low enough that GC must run."""
        return self.allocator.free_blocks <= self.config.low_watermark

    def maybe_collect(self):
        """Process generator: collect until the high watermark is restored.

        A no-op (still a valid generator) when there is no pressure.
        Serialized: concurrent callers queue on the collector's lock and
        re-check the watermark once they hold it.
        """
        yield self._lock.request()
        try:
            while self.allocator.free_blocks < self.config.high_watermark:
                victims = self.allocator.victim_candidates()
                if not victims:
                    return
                victim = victims[0]
                if victim.valid_count >= self.array.geometry.pages_per_block:
                    # Collecting a fully-valid block cannot free space.
                    return
                yield from self._collect_block(victim.block_id)
                if not self.pressure:
                    return
        finally:
            self._lock.release()

    def _collect_block(self, block_id: int):
        geometry = self.array.geometry
        engine = self.array.engine
        block = self.allocator.blocks[block_id]
        tracer = engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.GC_START,
                self.name,
                block=block_id,
                valid_pages=len(block.valid),
                free_blocks=self.allocator.free_blocks,
            )
        relocated_before = self.pages_relocated
        # Fan relocations out across the array: destinations are allocated
        # up front (round-robin over dies), then every valid page moves
        # concurrently -- real controllers parallelize cleaning exactly so
        # that GC throughput scales with die count.
        erased_before = self.blocks_erased
        try:
            relocators = []
            for page_offset in sorted(block.valid):
                src_ppn = block_id * geometry.pages_per_block + page_offset
                lpn = self.page_map.lpn_of(src_ppn)
                if lpn is None:
                    # Page became stale after victim selection; nothing to move.
                    self.allocator.mark_invalid(src_ppn)
                    continue
                dst_ppn, dst_ppa = self.allocator.allocate(for_gc=True)
                relocators.append(
                    engine.process(self._relocate(src_ppn, lpn, dst_ppn, dst_ppa))
                )
            if relocators:
                yield engine.all_of(relocators)
            if block.valid:
                # Defensive: a page re-validated under us; leave the block for
                # a later pass rather than erasing live data.
                return
            yield from self._admit_and_execute(
                geometry.ppa_from_index(block_id * geometry.pages_per_block),
                OpKind.ERASE,
            )
            self.allocator.erase(block_id)
            self.blocks_erased += 1
            if self.wear is not None:
                self.wear.record_erase(block_id)
        finally:
            if tracer.enabled:
                tracer.emit(
                    EventKind.GC_END,
                    self.name,
                    block=block_id,
                    relocated=self.pages_relocated - relocated_before,
                    erased=self.blocks_erased > erased_before,
                    free_blocks=self.allocator.free_blocks,
                )

    def _relocate(self, src_ppn: int, lpn: int, dst_ppn: int, dst_ppa):
        """Move one valid page; resolves races with concurrent host writes."""
        geometry = self.array.geometry
        src_ppa = geometry.ppa_from_index(src_ppn)
        if self.faults.enabled:
            # Relocation reads hit the same media as host IO: a transient
            # error here stalls cleaning and backs up the write path.
            yield from self.faults.io_delay(self.name, "relocate")
        yield from self._admit_and_execute(src_ppa, OpKind.READ)
        yield from self._admit_and_execute(dst_ppa, OpKind.PROGRAM)
        if self.wear is not None:
            self.wear.record_nand_write(geometry.page_size)
        if self.page_map.lookup(lpn) == src_ppn:
            stale = self.page_map.bind(lpn, dst_ppn)
            if stale is not None:
                self.allocator.mark_invalid(stale)
            self.pages_relocated += 1
        else:
            # The host overwrote the LPN mid-flight: the copy we just
            # programmed is already dead.
            self.allocator.mark_invalid(dst_ppn)

    def _admit_and_execute(self, ppa, kind: OpKind):
        """Run one op, passing through the device's power admission if set."""
        if self._admission is None:
            yield from self.array.execute(ppa, kind)
        else:
            yield from self._admission(ppa, kind)
