"""Calibrated device presets.

One factory per physical device in the study (paper Table 1 plus the
Samsung 860 EVO of Fig. 7 and the PM1743 discussed in section 2).  The
parameters are calibrated so that each simulated device reproduces its
datasheet/paper figures:

============  =========================  ==========================
label         model                      paper-measured power range
============  =========================  ==========================
``ssd1``      Samsung PM9A3 (NVMe)       3.5 - 13.5 W
``ssd2``      Intel D7-P5510 (NVMe)      5 - 15.1 W
``ssd3``      Intel D3-S4510 (SATA)      1 - 3.5 W
``hdd``       Seagate Exos 7E2000        1 - 5.3 W
``860evo``    Samsung 860 EVO (SATA)     0.17 W slumber / 0.35 W idle
``pm1743``    Samsung PM1743 (NVMe)      5 W idle / ~23 W active, 9 W cap
============  =========================  ==========================

Geometry note: NAND capacities are scaled to a few GiB (and the HDD cache
to 16 MiB) to keep pure-Python event simulation fast.  All reported
quantities -- power, throughput, latency -- are *rates* that depend on
array parallelism and per-op physics, not on total capacity, so the scaling
does not affect the reproduced trends.  Planes are folded into the page
size (a "page" here is one multi-plane program unit).
"""

from __future__ import annotations

from typing import Callable, Union

from repro._units import MiB
from repro.devices.hdd_drive import HddConfig, SimulatedHDD
from repro.devices.link import LinkPowerMode, LinkPowerTable
from repro.devices.power_states import NvmePowerState
from repro.devices.ssd import ControllerConfig, SimulatedSSD, SsdConfig
from repro.ftl.gc import GcConfig
from repro.hdd.geometry import HddGeometry
from repro.hdd.mechanics import SeekModel
from repro.hdd.spindle import SpindleConfig
from repro.nand.geometry import NandGeometry
from repro.nand.ops import NandPower, NandTimings
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

__all__ = [
    "DEVICE_PRESETS",
    "build_device",
    "hdd_exos_7e2000",
    "ssd_860evo",
    "ssd_d3s4510",
    "ssd_d7p5510",
    "ssd_pm1743",
    "ssd_pm9a3",
]


def _pcie_link_table(active_w: float = 0.18) -> LinkPowerTable:
    """PCIe PHY power: L0 active, L1 ~ partial, L1.2 ~ slumber analogue."""
    return LinkPowerTable(
        phy_power_w={
            LinkPowerMode.ACTIVE: active_w,
            LinkPowerMode.PARTIAL: active_w / 2,
            LinkPowerMode.SLUMBER: 0.01,
        },
        exit_latency_s={
            LinkPowerMode.ACTIVE: 0.0,
            LinkPowerMode.PARTIAL: 20e-6,
            LinkPowerMode.SLUMBER: 5e-3,
        },
    )


def ssd_pm9a3() -> SsdConfig:
    """SSD1: Samsung PM9A3 -- measured 3.5-13.5 W.

    Calibration anchors (paper section 3.3): 256 KiB / QD64 random write
    reaches ~3.3 GiB/s at ~8.19 W maximum average power; instantaneous
    samples peak near 13.5 W (Fig. 2a shows the spiky trace), reproduced by
    a strong program-current pulse.
    """
    return SsdConfig(
        name="ssd1",
        geometry=NandGeometry(
            channels=8,
            dies_per_channel=4,
            planes_per_die=1,
            blocks_per_plane=64,
            pages_per_block=64,
            page_size=32 * 1024,
        ),
        timings=NandTimings(t_read=60e-6, t_program=300e-6, t_erase=3e-3),
        nand_power=NandPower(p_read=0.030, p_program=0.080, p_erase=0.10),
        power_wave_w=5.5,
        power_wave_duty=0.15,
        power_wave_period_s=3e-3,
        channel_bandwidth=1.2e9,
        channel_transfer_power_w=0.25,
        link_bandwidth=3.6e9,
        link_transfer_power_w=0.70,
        link_power_table=_pcie_link_table(0.18),
        controller=ControllerConfig(
            cores=2,
            command_time_s=8.0e-6,
            core_active_power_w=0.55,
            idle_power_w=2.60,
            completion_time_s=3.0e-6,
        ),
        dram_power_w=0.72,
        write_buffer_bytes=8 * MiB,
        power_states=(
            NvmePowerState(0, 9.0, True, 0.0, 0.0, 3.5),
            NvmePowerState(1, 7.0, True, 50e-6, 50e-6, 3.5),
            NvmePowerState(2, 6.0, True, 50e-6, 50e-6, 3.5),
        ),
        governor_baseline_w=5.2,
        governor_headroom_w=0.25,
        maintenance_interval_s=0.1,
        maintenance_programs=100,
        maintenance_erases=1,
    )


def ssd_d7p5510() -> SsdConfig:
    """SSD2: Intel D7-P5510 -- measured 5-15.1 W.

    Calibration anchors (paper Figs. 3-6): power caps ps0 < 25 W,
    ps1 = 12 W, ps2 = 10 W; sequential write throughput under ps1/ps2 is
    ~74 %/~55 % of ps0; read throughput is essentially cap-insensitive;
    capped QD1 random-write p99 latency inflates several-fold.
    """
    return SsdConfig(
        name="ssd2",
        geometry=NandGeometry(
            channels=8,
            dies_per_channel=4,
            planes_per_die=1,
            blocks_per_plane=64,
            pages_per_block=64,
            page_size=32 * 1024,
        ),
        timings=NandTimings(t_read=65e-6, t_program=380e-6, t_erase=3e-3),
        nand_power=NandPower(p_read=0.045, p_program=0.257, p_erase=0.25),
        program_pulse_ratio=1.06,
        program_pulse_fraction=0.30,
        power_wave_w=0.55,
        power_wave_duty=0.2,
        channel_bandwidth=1.2e9,
        channel_transfer_power_w=0.22,
        link_bandwidth=3.2e9,
        link_transfer_power_w=0.90,
        link_power_table=_pcie_link_table(0.18),
        controller=ControllerConfig(
            cores=2,
            command_time_s=8.0e-6,
            core_active_power_w=0.60,
            idle_power_w=4.00,
            completion_time_s=3.0e-6,
        ),
        dram_power_w=0.82,
        write_buffer_bytes=8 * MiB,
        power_states=(
            NvmePowerState(0, 25.0, True, 0.0, 0.0, 5.0),
            NvmePowerState(1, 12.0, True, 50e-6, 50e-6, 5.0),
            NvmePowerState(2, 10.0, True, 50e-6, 50e-6, 5.0),
        ),
        governor_baseline_w=6.4,
        governor_headroom_w=0.35,
        maintenance_interval_s=0.1,
        maintenance_programs=140,
        maintenance_erases=1,
    )


def ssd_d3s4510() -> SsdConfig:
    """SSD3: Intel D3-S4510 (SATA) -- measured 1-3.5 W.

    SATA drives expose no NVMe power states; the host controls power via
    ALPM (and IO shaping).  Throughput is SATA-link-bound near 530 MB/s.
    """
    return SsdConfig(
        name="ssd3",
        geometry=NandGeometry(
            channels=4,
            dies_per_channel=2,
            planes_per_die=1,
            blocks_per_plane=64,
            pages_per_block=64,
            page_size=32 * 1024,
        ),
        timings=NandTimings(t_read=70e-6, t_program=420e-6, t_erase=3.5e-3),
        nand_power=NandPower(p_read=0.028, p_program=0.250, p_erase=0.25),
        channel_bandwidth=0.4e9,
        channel_transfer_power_w=0.15,
        link_bandwidth=530e6,
        link_transfer_power_w=0.35,
        controller=ControllerConfig(
            cores=1,
            command_time_s=15.0e-6,
            core_active_power_w=0.30,
            idle_power_w=0.55,
            completion_time_s=5.0e-6,
        ),
        dram_power_w=0.27,
        write_buffer_bytes=4 * MiB,
        power_states=(),
        governor_baseline_w=1.6,
        rail_voltage=5.0,
        maintenance_interval_s=0.05,
        maintenance_programs=3,
    )


def ssd_860evo() -> SsdConfig:
    """Samsung 860 EVO (desktop SATA) -- the Fig. 7 standby subject.

    Idle 0.35 W; ALPM SLUMBER cuts that to ~0.17 W with a sub-0.5 s
    transition (see :mod:`repro.sata.alpm` for the transition transient).
    """
    return SsdConfig(
        name="860evo",
        geometry=NandGeometry(
            channels=2,
            dies_per_channel=2,
            planes_per_die=1,
            blocks_per_plane=64,
            pages_per_block=64,
            page_size=16 * 1024,
        ),
        timings=NandTimings(t_read=80e-6, t_program=500e-6, t_erase=3.5e-3),
        nand_power=NandPower(p_read=0.025, p_program=0.45, p_erase=0.40),
        channel_bandwidth=0.4e9,
        channel_transfer_power_w=0.12,
        link_bandwidth=530e6,
        link_transfer_power_w=0.40,
        link_power_table=LinkPowerTable(
            phy_power_w={
                LinkPowerMode.ACTIVE: 0.19,
                LinkPowerMode.PARTIAL: 0.09,
                LinkPowerMode.SLUMBER: 0.01,
            },
            exit_latency_s={
                LinkPowerMode.ACTIVE: 0.0,
                LinkPowerMode.PARTIAL: 10e-6,
                LinkPowerMode.SLUMBER: 10e-3,
            },
        ),
        controller=ControllerConfig(
            cores=1,
            command_time_s=20.0e-6,
            core_active_power_w=0.35,
            idle_power_w=0.115,
            completion_time_s=5.0e-6,
        ),
        dram_power_w=0.045,
        write_buffer_bytes=2 * MiB,
        power_states=(),
        governor_baseline_w=0.8,
        rail_voltage=5.0,
    )


def ssd_pm1743() -> SsdConfig:
    """Samsung PM1743 (paper section 2's running example).

    Typical read power 23 W, write 21.1 W, idle 5 W; can be capped to 9 W
    (~40 % of uncapped maximum, 1.8x idle).  Includes non-operational idle
    states with millisecond exits, used by the power-adaptive fleet
    policies in :mod:`repro.core`.
    """
    return SsdConfig(
        name="pm1743",
        geometry=NandGeometry(
            channels=16,
            dies_per_channel=4,
            planes_per_die=1,
            blocks_per_plane=32,
            pages_per_block=64,
            page_size=32 * 1024,
        ),
        timings=NandTimings(t_read=55e-6, t_program=350e-6, t_erase=2.5e-3),
        nand_power=NandPower(p_read=0.055, p_program=0.210, p_erase=0.22),
        program_pulse_ratio=1.25,
        program_pulse_fraction=0.30,
        channel_bandwidth=2.4e9,
        channel_transfer_power_w=0.45,
        link_bandwidth=8.0e9,
        link_transfer_power_w=1.4,
        link_power_table=_pcie_link_table(0.25),
        controller=ControllerConfig(
            cores=4,
            command_time_s=5.0e-6,
            core_active_power_w=0.7,
            idle_power_w=3.85,
            completion_time_s=2.0e-6,
        ),
        dram_power_w=0.90,
        write_buffer_bytes=16 * MiB,
        power_states=(
            NvmePowerState(0, 25.0, True, 0.0, 0.0, 5.0),
            NvmePowerState(1, 14.0, True, 50e-6, 50e-6, 5.0),
            NvmePowerState(2, 9.0, True, 50e-6, 50e-6, 5.0),
            NvmePowerState(3, 25.0, False, 1e-3, 1e-3, 1.6),
            NvmePowerState(4, 25.0, False, 5e-3, 8e-3, 0.8),
        ),
        governor_baseline_w=7.0,
        governor_headroom_w=0.5,
        maintenance_interval_s=0.1,
        maintenance_programs=160,
    )


def hdd_exos_7e2000() -> HddConfig:
    """HDD: Seagate Exos 7E2000 -- measured 1-5.3 W.

    7200 rpm, ~4.16 ms average read seek, ~199 MB/s outer-zone streaming.
    Idle (spinning, quiescent) 3.76 W; standby (spun down) ~1 W; peak while
    seeking ~5.3 W.  Spin-up takes seconds (paper: up to 10 s observed).
    """
    return HddConfig(
        name="hdd",
        geometry=HddGeometry(
            capacity_bytes=2_000_000_000_000,
            rpm=7200,
            outer_bandwidth=199e6,
            inner_bandwidth=95e6,
        ),
        seek=SeekModel(
            settle_time=0.5e-3,
            average_seek_read=4.16e-3,
            write_settle_extra=0.4e-3,
        ),
        spindle=SpindleConfig(
            rotation_power_w=2.66,
            spinup_surge_w=2.4,
            spinup_time_s=8.0,
            spindown_time_s=1.0,
        ),
        electronics_power_w=0.92,
        seek_power_w=1.45,
        transfer_power_w=0.25,
        cache_bytes=16 * MiB,
        rpo_window=32,
    )


DeviceConfig = Union[SsdConfig, HddConfig]

#: Paper label -> preset factory.
DEVICE_PRESETS: dict[str, Callable[[], DeviceConfig]] = {
    "ssd1": ssd_pm9a3,
    "ssd2": ssd_d7p5510,
    "ssd3": ssd_d3s4510,
    "hdd": hdd_exos_7e2000,
    "860evo": ssd_860evo,
    "pm1743": ssd_pm1743,
}


def build_device(
    engine: Engine,
    preset: str | DeviceConfig,
    rng: RngStreams | None = None,
    faults=None,
):
    """Construct a simulated device from a preset name or explicit config.

    ``faults`` is an optional :class:`~repro.faults.injector.FaultInjector`
    threaded through to the device's fault sites (IO paths, power-state
    transitions, GC, spindle); call ``faults.install(device)`` afterwards
    to schedule its episode processes.

    >>> engine = Engine()
    >>> dev = build_device(engine, "ssd2")
    >>> dev.name
    'ssd2'
    """
    if isinstance(preset, str):
        try:
            config = DEVICE_PRESETS[preset]()
        except KeyError:
            raise ValueError(
                f"unknown device preset {preset!r}; "
                f"available: {sorted(DEVICE_PRESETS)}"
            ) from None
    else:
        config = preset
    if isinstance(config, HddConfig):
        return SimulatedHDD(engine, config, faults=faults)
    return SimulatedSSD(engine, config, rng=rng, faults=faults)
