"""Host interface link: bandwidth, PHY power, and low-power link states.

Models the PCIe or SATA connection between host and device.  Transfers
serialize on the link at its effective bandwidth and draw transfer power
while streaming.  The PHY also has a resident draw that depends on the link
power mode -- the SATA modes (ACTIVE / PARTIAL / SLUMBER) are what
Aggressive Link Power Management manipulates in the paper's standby
experiments (Fig. 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.power.rail import PowerRail
from repro.sim.engine import Engine
from repro.sim.resources import Resource

__all__ = ["HostLink", "LinkPowerMode", "LinkPowerTable"]


class LinkPowerMode(enum.Enum):
    """Interface power management states (SATA naming)."""

    ACTIVE = "active"
    PARTIAL = "partial"
    SLUMBER = "slumber"


@dataclass(frozen=True)
class LinkPowerTable:
    """PHY draw per link mode and exit latencies back to ACTIVE.

    Defaults are SATA-typical: PARTIAL exits in ~10 us, SLUMBER in ~10 ms.
    """

    phy_power_w: dict[LinkPowerMode, float] = field(
        default_factory=lambda: {
            LinkPowerMode.ACTIVE: 0.18,
            LinkPowerMode.PARTIAL: 0.09,
            LinkPowerMode.SLUMBER: 0.01,
        }
    )
    exit_latency_s: dict[LinkPowerMode, float] = field(
        default_factory=lambda: {
            LinkPowerMode.ACTIVE: 0.0,
            LinkPowerMode.PARTIAL: 10e-6,
            LinkPowerMode.SLUMBER: 10e-3,
        }
    )


class HostLink:
    """The device's host-facing data link.

    Attributes:
        bandwidth: Effective payload bandwidth (bytes/s) -- PCIe 3 x4 in the
            paper's testbed tops out near 3.2 GB/s, SATA 3 near 530 MB/s.
        transfer_power_w: Extra draw while a transfer streams.
    """

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        bandwidth: float,
        transfer_power_w: float,
        power_table: LinkPowerTable | None = None,
        name: str = "link",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if transfer_power_w < 0:
            raise ValueError("transfer power must be non-negative")
        self.engine = engine
        self.rail = rail
        self.bandwidth = bandwidth
        self.transfer_power_w = transfer_power_w
        self.power_table = power_table or LinkPowerTable()
        self.name = name
        self.mode = LinkPowerMode.ACTIVE
        self._bus = Resource(engine, capacity=1, name=f"{name}.bus")
        self._xfer_component = f"{name}.xfer"
        self._phy_component = f"{name}.phy"
        self.bytes_transferred = 0
        self._apply_phy_power()

    def _apply_phy_power(self) -> None:
        self.rail.set_draw(
            self._phy_component, self.power_table.phy_power_w[self.mode]
        )

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def transfer(self, nbytes: int):
        """Process generator: move ``nbytes`` across the link.

        Wakes the link out of a low-power mode first, paying its exit
        latency.
        """
        yield self._bus.request()
        try:
            if self.mode is not LinkPowerMode.ACTIVE:
                yield from self._wake()
            rail = self.rail
            component = self._xfer_component
            power = self.transfer_power_w
            rail.add_draw(component, power)
            try:
                yield self.engine.timeout(nbytes / self.bandwidth)
                self.bytes_transferred += nbytes
            finally:
                rail.add_draw(component, -power)
        finally:
            self._bus.release()

    def _wake(self):
        exit_latency = self.power_table.exit_latency_s[self.mode]
        self.mode = LinkPowerMode.ACTIVE
        self._apply_phy_power()
        if exit_latency > 0:
            yield self.engine.timeout(exit_latency)

    def set_mode(self, mode: LinkPowerMode) -> None:
        """Immediately place the PHY in ``mode`` (ALPM decision).

        Higher-level protocol (transition transients, device-side state)
        lives in :mod:`repro.sata.alpm`; this just switches the PHY draw.
        """
        self.mode = mode
        self._apply_phy_power()
